//! Hierarchical Navigable Small World graphs (Malkov & Yashunin, TPAMI'20).
//!
//! A from-scratch implementation of the index the paper uses through
//! faiss. Layers are sampled geometrically; construction runs a greedy
//! descent through upper layers followed by a beam search
//! (`ef_construction`) on each layer at or below the node's level, linking
//! bidirectionally and pruning to the per-layer degree bound.

use crate::{Metric, Neighbor, VectorIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

/// Similarity-evaluation work (`candidates × dim`) below which a batch
/// stays on the calling thread: a neighbour expansion at `M = 16` over
/// 32-dim vectors is ~1k mul-adds, far too small to ship to the pool,
/// while construction beams over wide embeddings clear this easily.
const PAR_MIN_SIM_WORK: usize = 1 << 14;

/// HNSW construction/search parameters.
#[derive(Debug, Clone)]
pub struct HnswConfig {
    /// Target out-degree per layer (`M` in the paper). Layer 0 allows `2M`.
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Beam width during search (must be ≥ k for good recall).
    pub ef_search: usize,
    /// Seed for level sampling (keeps builds deterministic).
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self { m: 16, ef_construction: 100, ef_search: 64, seed: 0x5eed }
    }
}

struct HnswNode {
    external_id: usize,
    vector: Vec<f32>,
    /// Neighbour lists, one per layer the node participates in.
    neighbors: Vec<Vec<usize>>,
}

/// Approximate nearest-neighbour index with logarithmic search.
///
/// Supports incremental maintenance: [`HnswIndex::remove`] tombstones a
/// node (it keeps navigating the graph but is filtered from results),
/// re-[`VectorIndex::add`]ing an existing id supersedes the old vector,
/// and [`HnswIndex::compact`] rebuilds the graph from the live set once
/// tombstones accumulate.
pub struct HnswIndex {
    cfg: HnswConfig,
    metric: Metric,
    nodes: Vec<HnswNode>,
    /// Tombstone flags, parallel to `nodes`. Tombstoned nodes stay in the
    /// graph as navigation waypoints but never appear in results.
    deleted: Vec<bool>,
    /// Live external id → node index (`BTreeMap` so compaction iterates
    /// in a deterministic order).
    by_id: BTreeMap<usize, usize>,
    deleted_count: usize,
    entry: Option<usize>,
    max_level: usize,
    rng: SmallRng,
    /// `1/ln(M)` — the level-sampling temperature.
    level_lambda: f64,
}

/// Max-heap entry ordered by similarity.
#[derive(PartialEq)]
struct Candidate {
    sim: f32,
    node: usize,
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sim
            .partial_cmp(&other.sim)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Min-heap entry (via reversed ordering) used for the result set.
struct Worst(Candidate);

impl PartialEq for Worst {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for Worst {}
impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Worst {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.cmp(&self.0)
    }
}

impl HnswIndex {
    /// Creates an empty index.
    pub fn new(metric: Metric, cfg: HnswConfig) -> Self {
        assert!(cfg.m >= 2, "HNSW requires M >= 2");
        let level_lambda = 1.0 / (cfg.m as f64).ln();
        Self {
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
            metric,
            nodes: Vec::new(),
            deleted: Vec::new(),
            by_id: BTreeMap::new(),
            deleted_count: 0,
            entry: None,
            max_level: 0,
            level_lambda,
        }
    }

    /// Creates an index with default parameters and cosine similarity,
    /// matching the paper's faiss usage.
    pub fn cosine_default() -> Self {
        Self::new(Metric::Cosine, HnswConfig::default())
    }

    fn sample_level(&mut self) -> usize {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        (-u.ln() * self.level_lambda).floor() as usize
    }

    fn sim(&self, a: usize, q: &[f32]) -> f32 {
        self.metric.similarity(&self.nodes[a].vector, q)
    }

    /// Evaluates `sim(node, query)` for a batch of nodes, splitting the
    /// batch over the global pool when the work (`candidates × dim`) is
    /// large enough to amortise dispatch. Each similarity is computed
    /// independently and results keep input order, so this is exactly
    /// equivalent to the serial map at every thread count.
    fn sims_batch(&self, nodes: &[usize], query: &[f32]) -> Vec<f32> {
        let work = nodes.len() * query.len().max(1);
        if work < PAR_MIN_SIM_WORK {
            return nodes.iter().map(|&n| self.sim(n, query)).collect();
        }
        let pool = explainti_pool::global();
        if pool.threads() == 1 {
            return nodes.iter().map(|&n| self.sim(n, query)).collect();
        }
        let chunk = nodes.len().div_ceil(pool.threads() * 4).max(8);
        let slices: Vec<&[usize]> = nodes.chunks(chunk).collect();
        pool.map(slices.len(), |i| {
            slices[i].iter().map(|&n| self.sim(n, query)).collect::<Vec<f32>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Beam search on one layer starting from `entries`.
    ///
    /// The visited set is a `HashSet` rather than a dense bitmap so the
    /// per-query cost stays proportional to the nodes actually visited,
    /// not to the index size.
    fn search_layer(
        &self,
        query: &[f32],
        entries: &[usize],
        ef: usize,
        layer: usize,
    ) -> Vec<Candidate> {
        let mut visited: std::collections::HashSet<usize> =
            std::collections::HashSet::with_capacity(ef * self.cfg.m);
        let mut frontier: BinaryHeap<Candidate> = BinaryHeap::new();
        let mut results: BinaryHeap<Worst> = BinaryHeap::new();

        for &e in entries {
            if !visited.insert(e) {
                continue;
            }
            let sim = self.sim(e, query);
            frontier.push(Candidate { sim, node: e });
            results.push(Worst(Candidate { sim, node: e }));
        }
        let mut visits = visited.len() as u64;
        while let Some(best) = frontier.pop() {
            let worst_sim = results.peek().map(|w| w.0.sim).unwrap_or(f32::NEG_INFINITY);
            if best.sim < worst_sim && results.len() >= ef {
                break;
            }
            if layer < self.nodes[best.node].neighbors.len() {
                // Collect the unvisited neighbours first (preserving the
                // scalar loop's visited-insertion order), batch their
                // similarity evaluations — possibly across the pool —
                // then replay the heap decisions sequentially in the same
                // order. The sims are heap-independent, so this is
                // behaviour-identical to the interleaved scalar loop.
                let fresh: Vec<usize> = self.nodes[best.node].neighbors[layer]
                    .iter()
                    .copied()
                    .filter(|&nb| visited.insert(nb))
                    .collect();
                visits += fresh.len() as u64;
                let sims = self.sims_batch(&fresh, query);
                for (&nb, &sim) in fresh.iter().zip(&sims) {
                    let worst_sim = results.peek().map(|w| w.0.sim).unwrap_or(f32::NEG_INFINITY);
                    if results.len() < ef || sim > worst_sim {
                        frontier.push(Candidate { sim, node: nb });
                        results.push(Worst(Candidate { sim, node: nb }));
                        if results.len() > ef {
                            results.pop();
                        }
                    }
                }
            }
        }
        explainti_obs::counter!("hnsw.nodes_visited", visits);
        let mut out: Vec<Candidate> = results.into_iter().map(|w| w.0).collect();
        out.sort_by(|a, b| b.cmp(a));
        out
    }

    fn max_degree(&self, layer: usize) -> usize {
        if layer == 0 {
            self.cfg.m * 2
        } else {
            self.cfg.m
        }
    }

    /// Tombstones the node holding `id`. The node keeps serving as a
    /// navigation waypoint (removing graph edges would degrade the small
    /// world's connectivity) but is filtered from every result set.
    /// Returns false when `id` is not live.
    pub fn remove(&mut self, id: usize) -> bool {
        match self.by_id.remove(&id) {
            Some(node) => {
                if !self.deleted[node] {
                    self.deleted[node] = true;
                    self.deleted_count += 1;
                    explainti_obs::counter!("hnsw.removed", 1);
                }
                true
            }
            None => false,
        }
    }

    /// Number of tombstoned nodes still occupying the graph.
    pub fn tombstones(&self) -> usize {
        self.deleted_count
    }

    /// True when the live external id is indexed.
    pub fn contains(&self, id: usize) -> bool {
        self.by_id.contains_key(&id)
    }

    /// Rebuilds the graph from the live nodes only, dropping every
    /// tombstone. Insertion order is ascending external id, so the result
    /// is deterministic regardless of the deletion history that led here.
    /// Returns the number of tombstones reclaimed.
    pub fn compact(&mut self) -> usize {
        let _span = explainti_obs::span!("hnsw.compact");
        let reclaimed = self.deleted_count;
        let mut fresh = HnswIndex::new(self.metric, self.cfg.clone());
        for (&id, &node) in &self.by_id {
            let vector = std::mem::take(&mut self.nodes[node].vector);
            fresh.add(id, &vector);
        }
        *self = fresh;
        reclaimed
    }

    /// Prunes a candidate list to the `limit` most similar nodes.
    /// Scoring goes through [`Self::sims_batch`] so large candidate sets
    /// (construction beams) fan out over the pool; the stable sort keeps
    /// tie order identical to the serial path.
    fn select_neighbors(&self, query: &[f32], candidates: &[usize], limit: usize) -> Vec<usize> {
        let sims = self.sims_batch(candidates, query);
        let mut scored: Vec<(f32, usize)> =
            sims.into_iter().zip(candidates.iter().copied()).collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(Ordering::Equal));
        scored.truncate(limit);
        scored.into_iter().map(|(_, c)| c).collect()
    }
}

impl VectorIndex for HnswIndex {
    fn add(&mut self, id: usize, vector: &[f32]) {
        let _span = explainti_obs::span!("hnsw.insert");
        // Chaos site: drop this insert on the floor, leaving an index
        // that silently covers only part of the corpus.
        if explainti_faults::triggered("ann.index.partial") {
            return;
        }
        // Re-inserting a live id supersedes it: tombstone the old node so
        // only the new vector can surface in results.
        if self.by_id.contains_key(&id) {
            self.remove(id);
        }
        let level = self.sample_level();
        let node_idx = self.nodes.len();
        self.nodes.push(HnswNode {
            external_id: id,
            vector: vector.to_vec(),
            neighbors: vec![Vec::new(); level + 1],
        });
        self.deleted.push(false);
        self.by_id.insert(id, node_idx);

        let Some(mut entry) = self.entry else {
            self.entry = Some(node_idx);
            self.max_level = level;
            return;
        };

        // Greedy descent through layers above the node's level.
        let mut layer = self.max_level;
        while layer > level {
            loop {
                let mut improved = false;
                let entry_sim = self.sim(entry, vector);
                if layer < self.nodes[entry].neighbors.len() {
                    let hood = self.nodes[entry].neighbors[layer].clone();
                    for nb in hood {
                        if self.sim(nb, vector) > entry_sim {
                            entry = nb;
                            improved = true;
                            break;
                        }
                    }
                }
                if !improved {
                    break;
                }
            }
            layer -= 1;
        }

        // Beam search + bidirectional linking on layers min(level, max).
        let mut entries = vec![entry];
        for l in (0..=level.min(self.max_level)).rev() {
            let found = self.search_layer(vector, &entries, self.cfg.ef_construction, l);
            let candidates: Vec<usize> = found.iter().map(|c| c.node).collect();
            let selected = self.select_neighbors(vector, &candidates, self.cfg.m);
            self.nodes[node_idx].neighbors[l] = selected.clone();
            for nb in selected {
                self.nodes[nb].neighbors[l].push(node_idx);
                let cap = self.max_degree(l);
                if self.nodes[nb].neighbors[l].len() > cap {
                    let nb_vec = self.nodes[nb].vector.clone();
                    let hood = self.nodes[nb].neighbors[l].clone();
                    self.nodes[nb].neighbors[l] = self.select_neighbors(&nb_vec, &hood, cap);
                }
            }
            entries = found.into_iter().map(|c| c.node).collect();
            if entries.is_empty() {
                entries = vec![entry];
            }
        }

        if level > self.max_level {
            self.max_level = level;
            self.entry = Some(node_idx);
        }
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        let _span = explainti_obs::span!("hnsw.search");
        // Chaos site: simulate a corrupt/unreadable index — the caller
        // sees an empty result set, which GE turns into `global: []`.
        if explainti_faults::triggered("ann.search.corrupt") {
            return Vec::new();
        }
        let Some(mut entry) = self.entry else {
            return Vec::new();
        };
        // Greedy descent to layer 1.
        for layer in (1..=self.max_level).rev() {
            loop {
                let mut improved = false;
                let entry_sim = self.sim(entry, query);
                if layer < self.nodes[entry].neighbors.len() {
                    let hood = &self.nodes[entry].neighbors[layer];
                    for &nb in hood {
                        if self.sim(nb, query) > entry_sim {
                            entry = nb;
                            improved = true;
                            break;
                        }
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        // Widen the beam by the tombstone count so filtered results can
        // still fill k slots; compaction keeps the widening bounded.
        let ef = self.cfg.ef_search.max(k).saturating_add(self.deleted_count);
        let found = self.search_layer(query, &[entry], ef, 0);
        found
            .into_iter()
            .filter(|c| !self.deleted[c.node])
            .take(k)
            .map(|c| Neighbor { id: self.nodes[c.node].external_id, similarity: c.sim })
            .collect()
    }

    fn len(&self) -> usize {
        self.nodes.len() - self.deleted_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{recall_at_k, BruteForceIndex};

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = HnswIndex::cosine_default();
        assert!(idx.search(&[1.0, 0.0], 3).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn single_vector_is_found() {
        let mut idx = HnswIndex::cosine_default();
        idx.add(42, &[0.5, 0.5]);
        let res = idx.search(&[0.5, 0.5], 1);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].id, 42);
        assert!((res[0].similarity - 1.0).abs() < 1e-5);
    }

    #[test]
    fn exact_match_ranks_first() {
        let vectors = random_vectors(200, 8, 3);
        let mut idx = HnswIndex::cosine_default();
        for (i, v) in vectors.iter().enumerate() {
            idx.add(i, v);
        }
        for probe in [0usize, 57, 123, 199] {
            let res = idx.search(&vectors[probe], 1);
            assert_eq!(res[0].id, probe, "self-query must return itself");
        }
    }

    #[test]
    fn recall_against_brute_force_is_high() {
        let vectors = random_vectors(500, 16, 7);
        let mut hnsw = HnswIndex::cosine_default();
        let mut exact = BruteForceIndex::new(Metric::Cosine);
        for (i, v) in vectors.iter().enumerate() {
            hnsw.add(i, v);
            exact.add(i, v);
        }
        let queries = random_vectors(50, 16, 11);
        let recall = recall_at_k(&hnsw, &exact, &queries, 10);
        assert!(recall >= 0.9, "HNSW recall@10 too low: {recall}");
    }

    #[test]
    fn euclidean_metric_works_too() {
        let vectors = random_vectors(200, 4, 5);
        let mut hnsw = HnswIndex::new(Metric::Euclidean, HnswConfig::default());
        let mut exact = BruteForceIndex::new(Metric::Euclidean);
        for (i, v) in vectors.iter().enumerate() {
            hnsw.add(i, v);
            exact.add(i, v);
        }
        let queries = random_vectors(20, 4, 6);
        let recall = recall_at_k(&hnsw, &exact, &queries, 5);
        assert!(recall >= 0.9, "Euclidean recall@5 too low: {recall}");
    }

    #[test]
    fn results_are_sorted_by_similarity() {
        let vectors = random_vectors(100, 8, 9);
        let mut idx = HnswIndex::cosine_default();
        for (i, v) in vectors.iter().enumerate() {
            idx.add(i, v);
        }
        let res = idx.search(&vectors[0], 10);
        for pair in res.windows(2) {
            assert!(pair[0].similarity >= pair[1].similarity);
        }
    }

    #[test]
    fn build_is_identical_across_pool_widths() {
        // Wide vectors + a large beam push sims_batch over its parallel
        // threshold; the built graph and search results must not depend
        // on the pool width.
        let vectors = random_vectors(300, 64, 33);
        let cfg = HnswConfig { ef_construction: 300, ..HnswConfig::default() };
        let build = || {
            let mut idx = HnswIndex::new(Metric::Cosine, cfg.clone());
            for (i, v) in vectors.iter().enumerate() {
                idx.add(i, v);
            }
            idx
        };
        explainti_pool::configure(1);
        let serial = build();
        explainti_pool::configure(4);
        let parallel = build();
        explainti_pool::configure(explainti_pool::Threads::resolve(None).get());
        for (a, b) in serial.nodes.iter().zip(&parallel.nodes) {
            assert_eq!(a.neighbors, b.neighbors, "graph layout diverged across widths");
        }
        for q in [0usize, 99, 250] {
            let ra: Vec<usize> = serial.search(&vectors[q], 8).into_iter().map(|n| n.id).collect();
            let rb: Vec<usize> =
                parallel.search(&vectors[q], 8).into_iter().map(|n| n.id).collect();
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn remove_filters_node_from_results() {
        let vectors = random_vectors(120, 8, 41);
        let mut idx = HnswIndex::cosine_default();
        for (i, v) in vectors.iter().enumerate() {
            idx.add(i, v);
        }
        assert_eq!(idx.search(&vectors[30], 1)[0].id, 30);
        assert!(idx.remove(30));
        assert!(!idx.remove(30), "double-remove must report not-live");
        assert_eq!(idx.tombstones(), 1);
        assert_eq!(idx.len(), 119);
        let res = idx.search(&vectors[30], 10);
        assert!(res.iter().all(|n| n.id != 30), "tombstoned id surfaced");
    }

    #[test]
    fn reinsert_supersedes_old_vector() {
        let vectors = random_vectors(60, 8, 43);
        let mut idx = HnswIndex::cosine_default();
        for (i, v) in vectors.iter().enumerate() {
            idx.add(i, v);
        }
        // Move id 7 onto id 20's position: a self-query for the new
        // vector must find id 7 there, and the old location must not win.
        let moved = vectors[20].clone();
        idx.add(7, &moved);
        assert_eq!(idx.len(), 60);
        assert_eq!(idx.tombstones(), 1);
        let res = idx.search(&moved, 2);
        assert!(res.iter().any(|n| n.id == 7), "superseding vector not found");
        let near_old = idx.search(&vectors[7], 1);
        assert!(
            near_old[0].id != 7 || (near_old[0].similarity - 1.0).abs() > 1e-5,
            "stale vector still answers for id 7"
        );
    }

    #[test]
    fn incremental_delete_recall_matches_rebuild_oracle() {
        // Insert, delete a third, re-insert some: recall against an exact
        // oracle over the *live* set must stay high, and compaction must
        // not change what is reachable.
        let vectors = random_vectors(300, 16, 47);
        let mut idx = HnswIndex::cosine_default();
        for (i, v) in vectors.iter().enumerate() {
            idx.add(i, v);
        }
        for i in (0..300).step_by(3) {
            idx.remove(i);
        }
        for i in (0..300).step_by(9) {
            idx.add(i, &vectors[i]);
        }
        let mut exact = BruteForceIndex::new(Metric::Cosine);
        for (i, v) in vectors.iter().enumerate().take(300) {
            let live = i % 3 != 0 || i % 9 == 0;
            if live {
                exact.add(i, v);
            }
        }
        let queries = random_vectors(40, 16, 53);
        let recall = recall_at_k(&idx, &exact, &queries, 10);
        assert!(recall >= 0.9, "incremental recall@10 too low: {recall}");
        assert_eq!(idx.len(), exact.len());

        let reclaimed = idx.compact();
        assert!(reclaimed > 0);
        assert_eq!(idx.tombstones(), 0);
        assert_eq!(idx.len(), exact.len());
        let recall = recall_at_k(&idx, &exact, &queries, 10);
        assert!(recall >= 0.9, "post-compaction recall@10 too low: {recall}");
    }

    #[test]
    fn compaction_is_deterministic() {
        let vectors = random_vectors(100, 8, 59);
        let build = |removals: &[usize]| {
            let mut idx = HnswIndex::cosine_default();
            for (i, v) in vectors.iter().enumerate() {
                idx.add(i, v);
            }
            for &r in removals {
                idx.remove(r);
            }
            idx.compact();
            idx
        };
        // Different deletion orders, same live set → identical graphs.
        let a = build(&[5, 50, 95]);
        let b = build(&[95, 5, 50]);
        for (na, nb) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(na.external_id, nb.external_id);
            assert_eq!(na.neighbors, nb.neighbors, "compacted graphs diverged");
        }
    }

    #[test]
    fn build_is_deterministic_for_same_seed() {
        let vectors = random_vectors(120, 8, 21);
        let build = || {
            let mut idx = HnswIndex::new(Metric::Cosine, HnswConfig::default());
            for (i, v) in vectors.iter().enumerate() {
                idx.add(i, v);
            }
            idx
        };
        let a = build();
        let b = build();
        let q = &vectors[17];
        let ra: Vec<usize> = a.search(q, 5).into_iter().map(|n| n.id).collect();
        let rb: Vec<usize> = b.search(q, 5).into_iter().map(|n| n.id).collect();
        assert_eq!(ra, rb);
    }
}
