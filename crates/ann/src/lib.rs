//! # explainti-ann
//!
//! Approximate nearest-neighbour search for the global-explanations module.
//!
//! The paper accelerates the top-K influential-sample retrieval of
//! Algorithm 2 with faiss's `IndexHNSW`; this crate provides a from-scratch
//! [HNSW](https://arxiv.org/abs/1603.09320) implementation
//! ([`HnswIndex`]) plus an exact [`BruteForceIndex`] used both as the
//! correctness oracle in tests and as the ablation baseline in the
//! `ge_retrieval` bench.
//!
//! Both indexes implement [`VectorIndex`], so the embedding store can swap
//! backends (DESIGN.md §6).

#![warn(missing_docs)]

mod hnsw;

pub use hnsw::{HnswConfig, HnswIndex};

/// Similarity metric for index queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Metric {
    /// Cosine similarity (the paper's influence score, Eq. 4).
    #[default]
    Cosine,
    /// Negative squared Euclidean distance.
    Euclidean,
}

impl Metric {
    /// Similarity between two vectors — larger is closer for both metrics.
    ///
    /// Cosine routes through the runtime-dispatched SIMD kernel
    /// ([`explainti_nn::simd::cosine`]); every dispatch arm is bitwise
    /// equal to the 8-lane scalar reference, so index contents and
    /// retrieval order stay byte-identical across hosts and tiers.
    pub fn similarity(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::Cosine => explainti_nn::simd::cosine(a, b),
            Metric::Euclidean => {
                let mut d = 0.0f32;
                for (&x, &y) in a.iter().zip(b) {
                    let diff = x - y;
                    d += diff * diff;
                }
                -d
            }
        }
    }
}

/// A retrieved neighbour: external id plus similarity (larger = closer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Caller-assigned identifier of the stored vector.
    pub id: usize,
    /// Similarity under the index metric.
    pub similarity: f32,
}

/// Common interface over exact and approximate indexes.
pub trait VectorIndex {
    /// Inserts a vector under an external id. Ids need not be dense but
    /// must be unique.
    fn add(&mut self, id: usize, vector: &[f32]);

    /// Returns up to `k` closest stored vectors, most similar first.
    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor>;

    /// Number of stored vectors.
    fn len(&self) -> usize;

    /// True when the index holds no vectors.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Exact linear-scan index: `O(N)` per query, used as the recall oracle.
#[derive(Debug, Clone, Default)]
pub struct BruteForceIndex {
    metric: Metric,
    entries: Vec<(usize, Vec<f32>)>,
}

impl BruteForceIndex {
    /// Creates an empty exact index under `metric`.
    pub fn new(metric: Metric) -> Self {
        Self { metric, entries: Vec::new() }
    }
}

impl VectorIndex for BruteForceIndex {
    fn add(&mut self, id: usize, vector: &[f32]) {
        self.entries.push((id, vector.to_vec()));
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        let mut scored: Vec<Neighbor> = self
            .entries
            .iter()
            .map(|(id, v)| Neighbor { id: *id, similarity: self.metric.similarity(query, v) })
            .collect();
        scored.sort_by(|a, b| {
            b.similarity
                .partial_cmp(&a.similarity)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        scored.truncate(k);
        scored
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Recall@k of an approximate index against the exact oracle over a query
/// set (used by tests and the `ge_retrieval` bench).
pub fn recall_at_k(
    approx: &dyn VectorIndex,
    exact: &dyn VectorIndex,
    queries: &[Vec<f32>],
    k: usize,
) -> f32 {
    if queries.is_empty() {
        return 1.0;
    }
    let mut hit = 0usize;
    let mut total = 0usize;
    for q in queries {
        let truth: Vec<usize> = exact.search(q, k).into_iter().map(|n| n.id).collect();
        let got: Vec<usize> = approx.search(q, k).into_iter().map(|n| n.id).collect();
        total += truth.len();
        hit += truth.iter().filter(|id| got.contains(id)).count();
    }
    hit as f32 / total.max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_similarity_orders_correctly() {
        let m = Metric::Cosine;
        let q = [1.0, 0.0];
        assert!(m.similarity(&q, &[1.0, 0.1]) > m.similarity(&q, &[0.0, 1.0]));
    }

    #[test]
    fn euclidean_similarity_is_negative_distance() {
        let m = Metric::Euclidean;
        assert_eq!(m.similarity(&[0.0], &[3.0]), -9.0);
    }

    #[test]
    fn brute_force_returns_top_k_sorted() {
        let mut idx = BruteForceIndex::new(Metric::Cosine);
        idx.add(0, &[1.0, 0.0]);
        idx.add(1, &[0.0, 1.0]);
        idx.add(2, &[0.9, 0.1]);
        let res = idx.search(&[1.0, 0.0], 2);
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].id, 0);
        assert_eq!(res[1].id, 2);
        assert!(res[0].similarity >= res[1].similarity);
    }

    #[test]
    fn brute_force_handles_k_larger_than_len() {
        let mut idx = BruteForceIndex::new(Metric::Cosine);
        idx.add(7, &[1.0]);
        let res = idx.search(&[1.0], 5);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].id, 7);
    }

    #[test]
    fn recall_of_oracle_against_itself_is_one() {
        let mut idx = BruteForceIndex::new(Metric::Cosine);
        for i in 0..10 {
            idx.add(i, &[i as f32, 1.0]);
        }
        let queries = vec![vec![3.0, 1.0], vec![9.0, 1.0]];
        assert_eq!(recall_at_k(&idx, &idx, &queries, 3), 1.0);
    }
}
