//! # explainti-faults
//!
//! A dependency-free, deterministic failpoint registry for chaos and
//! crash-safety testing.
//!
//! Production code declares named **sites** at interesting failure
//! boundaries (`persist.after_write.weights`, `serve.worker.panic`, …)
//! by calling [`triggered`]; what a trip *does* — return an error,
//! panic, sleep — is decided at the call site, so the registry stays a
//! pure trigger mechanism. Tests (or operators running chaos drills)
//! activate sites either through the API ([`configure`],
//! [`configure_from_spec`]) or the `EXPLAINTI_FAILPOINTS` environment
//! variable, read once on first use.
//!
//! ## Spec syntax
//!
//! `EXPLAINTI_FAILPOINTS` (and [`configure_from_spec`]) take a
//! `;`-separated list of `site=policy` entries:
//!
//! ```text
//! EXPLAINTI_FAILPOINTS='persist.after_write.weights=always;serve.worker.panic=times(1)'
//! ```
//!
//! Policies ([`Policy`]):
//!
//! | spec           | behaviour                                          |
//! |----------------|----------------------------------------------------|
//! | `never`        | never trips (site effectively disabled)            |
//! | `always`       | trips on every check                               |
//! | `after(N)`     | passes the first `N` checks, then trips forever    |
//! | `every(N)`     | trips on checks `N`, `2N`, `3N`, … (1-based)       |
//! | `times(N)`     | trips on the first `N` checks, then never again    |
//! | `prob(P)`      | trips with probability `P` (seed 0)                |
//! | `prob(P,SEED)` | seeded-probabilistic: deterministic per-site xorshift |
//!
//! ## Cost model
//!
//! With no sites configured, [`triggered`] is a single relaxed atomic
//! load — safe to leave in hot paths. With any site configured, every
//! check takes the registry lock (fault injection is a testing mode,
//! not a production steady state).
//!
//! ## Determinism & thread safety
//!
//! Per-site check counters live behind one mutex, so a policy like
//! `every(2)` trips on exactly every second check even under concurrent
//! callers; the probabilistic mode advances a per-site xorshift64* RNG
//! from its configured seed, so a given (seed, check-sequence) always
//! trips on the same checks.
//!
//! Trip counts are kept per site (surviving [`clear_all`], so a test or
//! a `/v1/metrics` scrape can read them after the drill) and an
//! optional [observer](set_observer) is invoked on every trip — the CLI
//! and server install one that mirrors trips into `explainti-obs`
//! counters, keeping this crate free of telemetry dependencies (its
//! only workspace dependency is the `explainti-sync` lock layer).

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use explainti_sync::{classes, OrderedMutex};

/// When a failpoint site trips, given the site's 1-based check count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Never trips.
    Never,
    /// Trips on every check.
    Always,
    /// Passes the first `n` checks, then trips on every later check.
    AfterN(u64),
    /// Trips on every `n`-th check (checks `n`, `2n`, `3n`, …).
    EveryN(u64),
    /// Trips on the first `n` checks, then never again.
    Times(u64),
    /// Trips with probability `p` per check, driven by a per-site
    /// xorshift64* generator seeded with `seed` — deterministic for a
    /// given (seed, check-sequence).
    Prob {
        /// Trip probability in `[0, 1]`.
        p: f64,
        /// Generator seed (0 is mapped to a fixed non-zero constant).
        seed: u64,
    },
}

struct Site {
    policy: Policy,
    /// Checks made against this site so far (1-based at evaluation).
    checks: u64,
    /// xorshift64* state for [`Policy::Prob`].
    rng: u64,
}

impl Site {
    fn new(policy: Policy) -> Self {
        let seed = match policy {
            Policy::Prob { seed, .. } => {
                if seed == 0 {
                    0x9e3779b97f4a7c15
                } else {
                    seed
                }
            }
            _ => 1,
        };
        Self { policy, checks: 0, rng: seed }
    }

    fn evaluate(&mut self) -> bool {
        self.checks += 1;
        match self.policy {
            Policy::Never => false,
            Policy::Always => true,
            Policy::AfterN(n) => self.checks > n,
            Policy::EveryN(n) => n > 0 && self.checks.is_multiple_of(n),
            Policy::Times(n) => self.checks <= n,
            Policy::Prob { p, .. } => {
                // xorshift64* — deterministic, dependency-free.
                let mut x = self.rng;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rng = x;
                let draw = x.wrapping_mul(0x2545F4914F6CDD1D);
                (draw as f64 / u64::MAX as f64) < p
            }
        }
    }
}

type Observer = Box<dyn Fn(&str) + Send + Sync>;

#[derive(Default)]
struct RegistryInner {
    sites: HashMap<String, Site>,
    /// Trips per site; survives [`clear_all`] so post-drill inspection
    /// (tests, `/v1/metrics`) still sees what happened.
    hits: BTreeMap<String, u64>,
    observer: Option<Observer>,
}

/// 0 = uninitialised (env not read yet), 1 = no active sites, 2 = active.
static STATE: AtomicU8 = AtomicU8::new(0);

fn registry() -> &'static OrderedMutex<RegistryInner> {
    static REG: OnceLock<OrderedMutex<RegistryInner>> = OnceLock::new();
    REG.get_or_init(|| OrderedMutex::new(&classes::FAULTS_REGISTRY, RegistryInner::default()))
}

fn refresh_state(inner: &RegistryInner) {
    let active = inner.sites.values().any(|s| s.policy != Policy::Never);
    // ORDERING: Release — pairs with the Acquire load in `enabled`: a
    // thread that observes 2 must also observe the site map written
    // before this store (it then takes the registry lock to read it).
    STATE.store(if active { 2 } else { 1 }, Ordering::Release);
}

/// Reads `EXPLAINTI_FAILPOINTS` exactly once; invalid entries are
/// reported on stderr and skipped (a chaos drill must not turn into a
/// silent no-op *and* must not abort the process).
fn ensure_init() {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        let mut inner = registry().lock();
        if let Ok(spec) = std::env::var("EXPLAINTI_FAILPOINTS") {
            for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
                match parse_entry(entry) {
                    Ok((site, policy)) => {
                        inner.sites.insert(site, Site::new(policy));
                    }
                    Err(e) => eprintln!("EXPLAINTI_FAILPOINTS: ignoring {entry:?}: {e}"),
                }
            }
        }
        refresh_state(&inner);
    });
}

/// Whether any failpoint site is currently active.
#[inline]
pub fn enabled() -> bool {
    // ORDERING: Acquire — pairs with `refresh_state`'s Release store so
    // an observed 2 implies the configured sites are visible.
    match STATE.load(Ordering::Acquire) {
        0 => {
            ensure_init();
            // ORDERING: Acquire — same pairing as the load above.
            STATE.load(Ordering::Acquire) == 2
        }
        1 => false,
        _ => true,
    }
}

/// Checks the named site, returning `true` when the fault should fire
/// now. The caller decides the effect (error return, panic, delay).
///
/// One relaxed-ish atomic load when no sites are configured.
#[inline]
pub fn triggered(site: &str) -> bool {
    if !enabled() {
        return false;
    }
    let mut inner = registry().lock();
    let Some(state) = inner.sites.get_mut(site) else {
        return false;
    };
    if !state.evaluate() {
        return false;
    }
    *inner.hits.entry(site.to_string()).or_insert(0) += 1;
    if let Some(observer) = &inner.observer {
        observer(site);
    }
    true
}

/// Checks the named site and panics when it trips.
///
/// For sites whose contracted effect *is* a panic (worker-recovery
/// drills like `serve.worker.panic` / `pool.task.panic`): keeping the
/// `panic!` here means panic-free production paths stay free of panic
/// machinery — the only way those paths can panic is through an armed
/// failpoint, which the analyzer's EA003 check keeps catalogued.
#[inline]
pub fn panic_if_triggered(site: &str) {
    if triggered(site) {
        panic!("injected failpoint panic: {site}");
    }
}

/// Activates (or replaces) a site with `policy`.
pub fn configure(site: &str, policy: Policy) {
    ensure_init();
    let mut inner = registry().lock();
    inner.sites.insert(site.to_string(), Site::new(policy));
    refresh_state(&inner);
}

/// Parses one `site=policy` entry.
fn parse_entry(entry: &str) -> Result<(String, Policy), String> {
    let (site, policy) = entry.split_once('=').ok_or_else(|| "expected site=policy".to_string())?;
    let site = site.trim();
    if site.is_empty() {
        return Err("empty site name".to_string());
    }
    Ok((site.to_string(), parse_policy(policy.trim())?))
}

/// Parses a policy spec (`always`, `after(3)`, `prob(0.5,42)`, …).
pub fn parse_policy(spec: &str) -> Result<Policy, String> {
    match spec {
        "never" => return Ok(Policy::Never),
        "always" => return Ok(Policy::Always),
        _ => {}
    }
    let (name, rest) = spec.split_once('(').ok_or_else(|| {
        format!(
            "unknown policy {spec:?} (try always/never/after(N)/every(N)/times(N)/prob(P[,SEED]))"
        )
    })?;
    let args = rest
        .strip_suffix(')')
        .ok_or_else(|| format!("policy {spec:?} is missing its closing parenthesis"))?;
    let int = |s: &str| {
        s.trim().parse::<u64>().map_err(|_| format!("policy {spec:?}: {s:?} is not an integer"))
    };
    match name {
        "after" => Ok(Policy::AfterN(int(args)?)),
        "every" => {
            let n = int(args)?;
            if n == 0 {
                return Err(format!("policy {spec:?}: every(0) is meaningless"));
            }
            Ok(Policy::EveryN(n))
        }
        "times" => Ok(Policy::Times(int(args)?)),
        "prob" => {
            let mut parts = args.splitn(2, ',');
            let p: f64 = parts
                .next()
                .unwrap_or("")
                .trim()
                .parse()
                .map_err(|_| format!("policy {spec:?}: bad probability"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("policy {spec:?}: probability must be in [0, 1]"));
            }
            let seed = match parts.next() {
                Some(s) => int(s)?,
                None => 0,
            };
            Ok(Policy::Prob { p, seed })
        }
        _ => Err(format!("unknown policy {name:?}")),
    }
}

/// Applies a full `site=policy;site=policy` spec (the
/// `EXPLAINTI_FAILPOINTS` / `--failpoints` syntax). Returns how many
/// sites were configured; fails on the first malformed entry.
pub fn configure_from_spec(spec: &str) -> Result<usize, String> {
    ensure_init();
    let mut parsed = Vec::new();
    for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
        parsed.push(parse_entry(entry)?);
    }
    let mut inner = registry().lock();
    let n = parsed.len();
    for (site, policy) in parsed {
        inner.sites.insert(site, Site::new(policy));
    }
    refresh_state(&inner);
    Ok(n)
}

/// Deactivates one site (check counters and hit counts are kept).
pub fn clear(site: &str) {
    ensure_init();
    let mut inner = registry().lock();
    inner.sites.remove(site);
    refresh_state(&inner);
}

/// Deactivates every site. Hit counts survive, so tests can still read
/// what tripped; [`reset_hits`] zeroes those too.
pub fn clear_all() {
    ensure_init();
    let mut inner = registry().lock();
    inner.sites.clear();
    refresh_state(&inner);
}

/// Zeroes the per-site trip counts.
pub fn reset_hits() {
    ensure_init();
    registry().lock().hits.clear();
}

/// How many times `site` has tripped so far.
pub fn hit_count(site: &str) -> u64 {
    ensure_init();
    registry().lock().hits.get(site).copied().unwrap_or(0)
}

/// Every site that has tripped, with its trip count, sorted by name.
pub fn hit_counts() -> Vec<(String, u64)> {
    ensure_init();
    registry().lock().hits.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// Installs a callback invoked (under the registry lock) on every trip
/// with the site name. The CLI and server use this to mirror trips into
/// `explainti-obs` counters without making this crate depend on it.
pub fn set_observer(f: impl Fn(&str) + Send + Sync + 'static) {
    ensure_init();
    registry().lock().observer = Some(Box::new(f));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    /// The registry is process-global; tests serialise on this.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn unconfigured_site_never_trips() {
        let _g = lock();
        clear_all();
        assert!(!triggered("nope.not.a.site"));
        assert_eq!(hit_count("nope.not.a.site"), 0);
    }

    #[test]
    fn policy_semantics() {
        let _g = lock();
        clear_all();
        reset_hits();

        configure("t.always", Policy::Always);
        assert!((0..5).all(|_| triggered("t.always")));

        configure("t.never", Policy::Never);
        assert!((0..5).all(|_| !triggered("t.never")));

        configure("t.after", Policy::AfterN(2));
        let seq: Vec<bool> = (0..5).map(|_| triggered("t.after")).collect();
        assert_eq!(seq, [false, false, true, true, true]);

        configure("t.every", Policy::EveryN(3));
        let seq: Vec<bool> = (0..7).map(|_| triggered("t.every")).collect();
        assert_eq!(seq, [false, false, true, false, false, true, false]);

        configure("t.times", Policy::Times(2));
        let seq: Vec<bool> = (0..5).map(|_| triggered("t.times")).collect();
        assert_eq!(seq, [true, true, false, false, false]);

        assert_eq!(hit_count("t.always"), 5);
        assert_eq!(hit_count("t.after"), 3);
        assert_eq!(hit_count("t.every"), 2);
        assert_eq!(hit_count("t.times"), 2);
        clear_all();
    }

    #[test]
    fn probabilistic_mode_is_seed_deterministic() {
        let _g = lock();
        clear_all();
        let run = |seed: u64| -> Vec<bool> {
            configure("t.prob", Policy::Prob { p: 0.5, seed });
            (0..64).map(|_| triggered("t.prob")).collect()
        };
        let a = run(42);
        let b = run(42);
        let c = run(7);
        assert_eq!(a, b, "same seed must reproduce the same trip sequence");
        assert_ne!(a, c, "different seeds should diverge");
        let trips = a.iter().filter(|&&t| t).count();
        assert!((8..=56).contains(&trips), "p=0.5 over 64 draws tripped {trips} times");
        clear_all();
    }

    #[test]
    fn prob_extremes() {
        let _g = lock();
        clear_all();
        configure("t.p0", Policy::Prob { p: 0.0, seed: 1 });
        assert!((0..32).all(|_| !triggered("t.p0")));
        configure("t.p1", Policy::Prob { p: 1.0, seed: 1 });
        assert!((0..32).all(|_| triggered("t.p1")));
        clear_all();
    }

    #[test]
    fn spec_parsing_round_trips() {
        assert_eq!(parse_policy("always"), Ok(Policy::Always));
        assert_eq!(parse_policy("never"), Ok(Policy::Never));
        assert_eq!(parse_policy("after(3)"), Ok(Policy::AfterN(3)));
        assert_eq!(parse_policy("every(2)"), Ok(Policy::EveryN(2)));
        assert_eq!(parse_policy("times(1)"), Ok(Policy::Times(1)));
        assert_eq!(parse_policy("prob(0.25)"), Ok(Policy::Prob { p: 0.25, seed: 0 }));
        assert_eq!(parse_policy("prob(0.25, 99)"), Ok(Policy::Prob { p: 0.25, seed: 99 }));
        assert!(parse_policy("bogus").is_err());
        assert!(parse_policy("after(x)").is_err());
        assert!(parse_policy("after(3").is_err());
        assert!(parse_policy("every(0)").is_err());
        assert!(parse_policy("prob(1.5)").is_err());
    }

    #[test]
    fn configure_from_spec_applies_every_entry() {
        let _g = lock();
        clear_all();
        let n = configure_from_spec("a.site=after(1); b.site=always ;c.site=times(2)").unwrap();
        assert_eq!(n, 3);
        assert!(!triggered("a.site"));
        assert!(triggered("a.site"));
        assert!(triggered("b.site"));
        assert!(triggered("c.site"));
        assert!(configure_from_spec("broken").is_err());
        assert!(configure_from_spec("x=nope(1)").is_err());
        assert_eq!(configure_from_spec("").unwrap(), 0);
        clear_all();
    }

    #[test]
    fn clear_disables_but_keeps_hits() {
        let _g = lock();
        clear_all();
        reset_hits();
        configure("t.clear", Policy::Always);
        assert!(triggered("t.clear"));
        clear("t.clear");
        assert!(!triggered("t.clear"));
        assert_eq!(hit_count("t.clear"), 1, "hits survive clearing");
        assert!(hit_counts().iter().any(|(s, n)| s == "t.clear" && *n == 1));
        reset_hits();
        assert_eq!(hit_count("t.clear"), 0);
    }

    #[test]
    fn every_n_is_exact_under_concurrency() {
        let _g = lock();
        clear_all();
        configure("t.conc", Policy::EveryN(2));
        let trips = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let trips = Arc::clone(&trips);
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        if triggered("t.conc") {
                            trips.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // 1000 checks at every(2) → exactly 500 trips, no lost or
        // double-counted checks.
        assert_eq!(trips.load(Ordering::Relaxed), 500);
        clear_all();
    }

    #[test]
    fn observer_sees_trips() {
        let _g = lock();
        clear_all();
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        set_observer(move |site| seen2.lock().unwrap().push(site.to_string()));
        configure("t.obs", Policy::Times(2));
        for _ in 0..4 {
            triggered("t.obs");
        }
        assert_eq!(seen.lock().unwrap().as_slice(), ["t.obs", "t.obs"]);
        // Detach so other tests don't keep pushing into this Vec.
        set_observer(|_| {});
        clear_all();
    }
}
