//! Column-graph construction (Algorithm 3) and neighbour sampling.
//!
//! Tables are linked through two kinds of implicit connections: columns
//! (column pairs) in tables with the *same title*, and columns (pairs) with
//! the *same header* (header pair) across tables. The paper treats
//! columns/pairs as whole nodes, which keeps the graph lightweight:
//! construction is `O(|T| · |T_cols|)`.
//!
//! Graph nodes are indexed by the *sample order* of
//! [`TableCollection::annotated_columns`] / [`annotated_pairs`], so node
//! `i` corresponds to dataset sample `i` — the alignment the structural-
//! explanations module relies on.

use crate::model::{ColRef, PairRef, TableCollection};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::HashMap;

/// Which task the graph serves (affects node identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// Nodes are annotated columns (`G_t`).
    ColumnType,
    /// Nodes are annotated column pairs (`G_r`).
    ColumnRelation,
}

/// The lightweight column (pair) graph of Algorithm 3.
#[derive(Debug, Clone)]
pub struct ColumnGraph {
    kind: GraphKind,
    /// Node index -> indices of nodes sharing its title.
    title_group_of: Vec<usize>,
    /// Node index -> indices of nodes sharing its header (pair).
    header_group_of: Vec<usize>,
    title_groups: Vec<Vec<usize>>,
    header_groups: Vec<Vec<usize>>,
}

fn group_key(
    groups: &mut HashMap<String, usize>,
    lists: &mut Vec<Vec<usize>>,
    key: &str,
    node: usize,
) -> usize {
    let gid = *groups.entry(key.to_string()).or_insert_with(|| {
        lists.push(Vec::new());
        lists.len() - 1
    });
    lists[gid].push(node);
    gid
}

impl ColumnGraph {
    /// Builds `G_t` over the annotated columns of `tables`, returning the
    /// graph and the column reference of each node.
    pub fn build_type(tables: &TableCollection) -> (Self, Vec<ColRef>) {
        let cols = tables.annotated_columns();
        let mut titles = HashMap::new();
        let mut headers = HashMap::new();
        let mut title_groups = Vec::new();
        let mut header_groups = Vec::new();
        let mut title_group_of = Vec::with_capacity(cols.len());
        let mut header_group_of = Vec::with_capacity(cols.len());
        for (node, (cref, _)) in cols.iter().enumerate() {
            let table = &tables.tables[cref.table];
            title_group_of.push(group_key(&mut titles, &mut title_groups, &table.title, node));
            let header = &table.columns[cref.col].header;
            header_group_of.push(group_key(&mut headers, &mut header_groups, header, node));
        }
        (
            Self {
                kind: GraphKind::ColumnType,
                title_group_of,
                header_group_of,
                title_groups,
                header_groups,
            },
            cols.into_iter().map(|(r, _)| r).collect(),
        )
    }

    /// Builds `G_r` over the annotated column pairs of `tables`, returning
    /// the graph and the pair reference of each node.
    pub fn build_relation(tables: &TableCollection) -> (Self, Vec<PairRef>) {
        let pairs = tables.annotated_pairs();
        let mut titles = HashMap::new();
        let mut headers = HashMap::new();
        let mut title_groups = Vec::new();
        let mut header_groups = Vec::new();
        let mut title_group_of = Vec::with_capacity(pairs.len());
        let mut header_group_of = Vec::with_capacity(pairs.len());
        for (node, (pref, _)) in pairs.iter().enumerate() {
            let table = &tables.tables[pref.table];
            title_group_of.push(group_key(&mut titles, &mut title_groups, &table.title, node));
            let key = format!(
                "{}\u{1}{}",
                table.columns[pref.subject].header, table.columns[pref.object].header
            );
            header_group_of.push(group_key(&mut headers, &mut header_groups, &key, node));
        }
        (
            Self {
                kind: GraphKind::ColumnRelation,
                title_group_of,
                header_group_of,
                title_groups,
                header_groups,
            },
            pairs.into_iter().map(|(r, _)| r).collect(),
        )
    }

    /// The task this graph was built for.
    pub fn kind(&self) -> GraphKind {
        self.kind
    }

    /// Number of column (pair) nodes.
    pub fn num_nodes(&self) -> usize {
        self.title_group_of.len()
    }

    /// Number of title + header bridge nodes.
    pub fn num_bridges(&self) -> usize {
        self.title_groups.len() + self.header_groups.len()
    }

    /// Number of edges (each node links to exactly one title and one
    /// header bridge).
    pub fn num_edges(&self) -> usize {
        self.num_nodes() * 2
    }

    /// Distinct 2-hop neighbours of `node` (columns sharing its title or
    /// header), excluding the node itself.
    pub fn neighbors(&self, node: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for &n in &self.title_groups[self.title_group_of[node]] {
            if n != node {
                out.push(n);
            }
        }
        for &n in &self.header_groups[self.header_group_of[node]] {
            if n != node && !out.contains(&n) {
                out.push(n);
            }
        }
        out
    }

    /// Uniformly samples exactly `r` 2-hop neighbours of `node` from
    /// `candidates ∩ neighbors(node)`, with replacement when fewer than `r`
    /// are available (the paper's sampling rule). `candidates` restricts to
    /// nodes whose embeddings exist in the store (training nodes); pass
    /// `None` to sample from all neighbours. Returns an empty vector when
    /// the node is isolated under the restriction.
    pub fn sample_neighbors(
        &self,
        node: usize,
        r: usize,
        candidates: Option<&dyn Fn(usize) -> bool>,
        rng: &mut SmallRng,
    ) -> Vec<usize> {
        let pool: Vec<usize> = match candidates {
            Some(pred) => self.neighbors(node).into_iter().filter(|&n| pred(n)).collect(),
            None => self.neighbors(node),
        };
        if pool.is_empty() || r == 0 {
            return Vec::new();
        }
        (0..r).map(|_| pool[rng.gen_range(0..pool.len())]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Column, RelationAnnotation, Table};
    use rand::SeedableRng;

    fn collection() -> TableCollection {
        // Two tables sharing a title, a third sharing a header with t0.
        let t0 = Table {
            title: "shared title".into(),
            columns: vec![
                Column::new("player", vec!["a".into()], Some(0)),
                Column::new("team", vec!["b".into()], Some(1)),
            ],
            relations: vec![RelationAnnotation { subject: 0, object: 1, label: 0 }],
        };
        let t1 = Table {
            title: "shared title".into(),
            columns: vec![Column::new("coach", vec!["c".into()], Some(0))],
            relations: vec![],
        };
        let t2 = Table {
            title: "other title".into(),
            columns: vec![Column::new("player", vec!["d".into()], Some(0))],
            relations: vec![],
        };
        TableCollection {
            tables: vec![t0, t1, t2],
            type_labels: vec!["a".into(), "b".into()],
            relation_labels: vec!["r".into()],
        }
    }

    #[test]
    fn node_order_matches_sample_order() {
        let c = collection();
        let (_, refs) = ColumnGraph::build_type(&c);
        assert_eq!(refs.len(), 4);
        assert_eq!(refs[0], ColRef { table: 0, col: 0 });
        assert_eq!(refs[3], ColRef { table: 2, col: 0 });
    }

    #[test]
    fn title_and_header_bridges_connect() {
        let c = collection();
        let (g, _) = ColumnGraph::build_type(&c);
        // Node 0 = t0.player: shares title with nodes 1, 2; header with 3.
        let mut n0 = g.neighbors(0);
        n0.sort();
        assert_eq!(n0, vec![1, 2, 3]);
        // Node 3 = t2.player: only shares the header with node 0.
        assert_eq!(g.neighbors(3), vec![0]);
    }

    #[test]
    fn isolated_node_has_no_neighbors() {
        let mut c = collection();
        c.tables.push(Table::new(
            "unique title",
            vec![Column::new("unique header", vec!["x".into()], Some(0))],
        ));
        let (g, refs) = ColumnGraph::build_type(&c);
        let last = refs.len() - 1;
        assert!(g.neighbors(last).is_empty());
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(g.sample_neighbors(last, 4, None, &mut rng).is_empty());
    }

    #[test]
    fn sampling_with_replacement_fills_r() {
        let c = collection();
        let (g, _) = ColumnGraph::build_type(&c);
        let mut rng = SmallRng::seed_from_u64(2);
        // Node 3 has exactly one neighbour; sampling 5 must repeat it.
        let s = g.sample_neighbors(3, 5, None, &mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.iter().all(|&n| n == 0));
    }

    #[test]
    fn candidate_filter_restricts_pool() {
        let c = collection();
        let (g, _) = ColumnGraph::build_type(&c);
        let mut rng = SmallRng::seed_from_u64(3);
        let only_node_2 = |n: usize| n == 2;
        let s = g.sample_neighbors(0, 8, Some(&only_node_2), &mut rng);
        assert_eq!(s.len(), 8);
        assert!(s.iter().all(|&n| n == 2));
    }

    #[test]
    fn relation_graph_uses_header_pairs() {
        let mut c = collection();
        // Add a second table with the same header pair but different title.
        c.tables.push(Table {
            title: "yet another".into(),
            columns: vec![
                Column::new("player", vec!["e".into()], None),
                Column::new("team", vec!["f".into()], None),
            ],
            relations: vec![RelationAnnotation { subject: 0, object: 1, label: 0 }],
        });
        let (g, refs) = ColumnGraph::build_relation(&c);
        assert_eq!(refs.len(), 2);
        assert_eq!(g.kind(), GraphKind::ColumnRelation);
        // The two pairs share the header-pair bridge.
        assert_eq!(g.neighbors(0), vec![1]);
        assert_eq!(g.neighbors(1), vec![0]);
    }

    #[test]
    fn edge_and_bridge_counts() {
        let c = collection();
        let (g, _) = ColumnGraph::build_type(&c);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 8);
        // Titles: shared, other; headers: player, team, coach.
        assert_eq!(g.num_bridges(), 5);
    }
}
