//! Minimal CSV ingestion so real tables can be interpreted, not just the
//! synthetic corpora.
//!
//! Implements the subset of RFC 4180 that table corpora actually use:
//! comma separation, double-quote quoting with `""` escapes, CR/LF line
//! endings. The first row is treated as the header row (GitTables-style
//! CSV exports); the file name (sans extension) becomes the table title
//! unless an explicit title is given.

use crate::model::{Column, Table};

/// A CSV parsing failure with row context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A quoted field was never closed.
    UnterminatedQuote {
        /// 0-based row where the open quote started.
        row: usize,
    },
    /// The input contained no rows at all.
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::UnterminatedQuote { row } => {
                write!(f, "unterminated quoted field starting at row {row}")
            }
            CsvError::Empty => write!(f, "empty CSV input"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses CSV text into rows of fields.
pub fn parse_csv(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut quote_row = 0usize;
    let mut chars = text.chars().peekable();

    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
            continue;
        }
        match ch {
            '"' => {
                in_quotes = true;
                quote_row = rows.len();
            }
            ',' => row.push(std::mem::take(&mut field)),
            '\r' => {} // swallowed; `\n` terminates the row
            '\n' => {
                row.push(std::mem::take(&mut field));
                rows.push(std::mem::take(&mut row));
            }
            other => field.push(other),
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote { row: quote_row });
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    // Drop fully-empty trailing rows (files ending in a blank line).
    while rows.last().is_some_and(|r| r.iter().all(String::is_empty)) {
        rows.pop();
    }
    if rows.is_empty() {
        return Err(CsvError::Empty);
    }
    Ok(rows)
}

/// Converts CSV text into a [`Table`]: first row = headers, remaining
/// rows = cells (column-major). Ragged rows are padded with empty cells.
/// Columns get no type annotation — that is what the model predicts.
pub fn table_from_csv(title: &str, text: &str) -> Result<Table, CsvError> {
    let rows = parse_csv(text)?;
    let headers = &rows[0];
    let n_cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut columns: Vec<Column> = (0..n_cols)
        .map(|c| {
            Column::new(
                headers.get(c).cloned().unwrap_or_default(),
                Vec::with_capacity(rows.len().saturating_sub(1)),
                None,
            )
        })
        .collect();
    for row in &rows[1..] {
        for (c, col) in columns.iter_mut().enumerate() {
            col.cells.push(row.get(c).cloned().unwrap_or_default());
        }
    }
    Ok(Table::new(title, columns))
}

/// Reads a CSV file from disk; the file stem becomes the title.
pub fn table_from_csv_file(path: &std::path::Path) -> std::io::Result<Result<Table, CsvError>> {
    let text = std::fs::read_to_string(path)?;
    let title =
        path.file_stem().map(|s| s.to_string_lossy().replace(['_', '-'], " ")).unwrap_or_default();
    Ok(table_from_csv(&title, &text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_rows_parse() {
        let rows = parse_csv("a,b,c\n1,2,3\n").unwrap();
        assert_eq!(rows, vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]);
    }

    #[test]
    fn quoted_fields_keep_commas_and_newlines() {
        let rows = parse_csv("name,notes\n\"Smith, J.\",\"line1\nline2\"\n").unwrap();
        assert_eq!(rows[1][0], "Smith, J.");
        assert_eq!(rows[1][1], "line1\nline2");
    }

    #[test]
    fn escaped_quotes_unescape() {
        let rows = parse_csv("q\n\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(rows[1][0], "he said \"hi\"");
    }

    #[test]
    fn crlf_line_endings_work() {
        let rows = parse_csv("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "2"]);
    }

    #[test]
    fn missing_trailing_newline_keeps_last_row() {
        let rows = parse_csv("a\n1").unwrap();
        assert_eq!(rows, vec![vec!["a"], vec!["1"]]);
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        assert!(matches!(parse_csv("a\n\"oops"), Err(CsvError::UnterminatedQuote { .. })));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(parse_csv(""), Err(CsvError::Empty));
        assert_eq!(parse_csv("\n\n"), Err(CsvError::Empty));
    }

    #[test]
    fn table_from_csv_builds_columns() {
        let t = table_from_csv("players", "player,team\nles jepsen,warriors\nbo kimble,clippers\n")
            .unwrap();
        assert_eq!(t.title, "players");
        assert_eq!(t.num_cols(), 2);
        assert_eq!(t.columns[0].header, "player");
        assert_eq!(t.columns[0].cells, vec!["les jepsen", "bo kimble"]);
        assert!(t.columns.iter().all(|c| c.type_label.is_none()));
    }

    #[test]
    fn ragged_rows_are_padded() {
        let t = table_from_csv("x", "a,b,c\n1,2\n1,2,3,4\n").unwrap();
        assert_eq!(t.num_cols(), 4);
        assert_eq!(t.columns[2].cells, vec!["", "3"]);
        assert_eq!(t.columns[3].header, "");
    }

    // ---- Hostile-input robustness: error or parse, never panic -------

    #[test]
    fn embedded_nuls_and_control_chars_parse() {
        let t = table_from_csv("x", "na\0me,b\n a\0b,\u{1}\n").unwrap();
        assert_eq!(t.columns[0].header, "na\0me");
        assert_eq!(t.columns[0].cells, vec![" a\0b"]);
    }

    #[test]
    fn replacement_chars_from_lossy_utf8_parse() {
        // `table_from_csv_file` goes through `read_to_string`, which
        // rejects invalid UTF-8 upstream; text that arrives here can
        // still carry U+FFFD from lossy conversions.
        let text = String::from_utf8_lossy(b"a,\xff\xfe\nx,y\n").into_owned();
        let t = table_from_csv("x", &text).unwrap();
        assert_eq!(t.num_cols(), 2);
        assert!(t.columns[1].header.contains('\u{fffd}'));
    }

    #[test]
    fn ten_thousand_column_row_parses_without_panic() {
        let header: Vec<String> = (0..10_000).map(|i| format!("c{i}")).collect();
        let cells = vec!["v"; 10_000];
        let text = format!("{}\n{}\n", header.join(","), cells.join(","));
        let t = table_from_csv("wide", &text).unwrap();
        assert_eq!(t.num_cols(), 10_000);
        assert_eq!(t.columns[9_999].header, "c9999");
    }

    #[test]
    fn whitespace_only_and_quote_only_inputs_error_cleanly() {
        assert!(matches!(parse_csv("\r\n\r\n"), Err(CsvError::Empty)));
        assert!(matches!(parse_csv("\""), Err(CsvError::UnterminatedQuote { .. })));
        assert!(matches!(parse_csv("\"\n\"\n\""), Err(CsvError::UnterminatedQuote { .. })));
    }

    #[test]
    fn header_only_table_builds_empty_columns() {
        let t = table_from_csv("x", "a,b,c\n").unwrap();
        assert_eq!(t.num_cols(), 3);
        assert!(t.columns.iter().all(|c| c.cells.is_empty()));
    }
}
