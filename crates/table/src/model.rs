//! Relational-table data model shared by the corpus generators, the
//! ExplainTI core, and every baseline.

use serde::{Deserialize, Serialize};

/// Identifies one column inside a table collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColRef {
    /// Index of the table in the collection.
    pub table: usize,
    /// Index of the column inside the table.
    pub col: usize,
}

/// Identifies one annotated column pair inside a table collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PairRef {
    /// Index of the table in the collection.
    pub table: usize,
    /// Subject column index.
    pub subject: usize,
    /// Object column index.
    pub object: usize,
}

/// One table column: header, cell values, and an optional type annotation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column header (may be empty for headerless DB tables).
    pub header: String,
    /// Cell values, top to bottom.
    pub cells: Vec<String>,
    /// Ground-truth semantic type (index into the label set), if annotated.
    pub type_label: Option<usize>,
}

impl Column {
    /// Creates an annotated column.
    pub fn new(header: impl Into<String>, cells: Vec<String>, type_label: Option<usize>) -> Self {
        Self { header: header.into(), cells, type_label }
    }

    /// The PP (pre-processing) step of Table III: unduplicated cell values
    /// in first-seen order.
    pub fn unique_cells(&self) -> Vec<&str> {
        let mut seen = std::collections::HashSet::new();
        self.cells.iter().filter(|c| seen.insert(c.as_str())).map(String::as_str).collect()
    }

    /// Borrowed cell slices (the common serialisation input).
    pub fn cell_refs(&self) -> Vec<&str> {
        self.cells.iter().map(String::as_str).collect()
    }
}

/// A relation annotation between two columns of the same table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationAnnotation {
    /// Subject column index.
    pub subject: usize,
    /// Object column index.
    pub object: usize,
    /// Ground-truth relation label (index into the relation label set).
    pub label: usize,
}

/// A titled relational table with annotated columns and column pairs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. a Wikipedia page caption).
    pub title: String,
    /// Columns, left to right.
    pub columns: Vec<Column>,
    /// Annotated subject/object relations.
    pub relations: Vec<RelationAnnotation>,
}

impl Table {
    /// Creates a table without relation annotations.
    pub fn new(title: impl Into<String>, columns: Vec<Column>) -> Self {
        Self { title: title.into(), columns, relations: Vec::new() }
    }

    /// Number of rows (length of the longest column).
    pub fn num_rows(&self) -> usize {
        self.columns.iter().map(|c| c.cells.len()).max().unwrap_or(0)
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.columns.len()
    }
}

/// A collection of tables plus its label vocabularies.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TableCollection {
    /// The tables.
    pub tables: Vec<Table>,
    /// Column-type label names (`C_type`).
    pub type_labels: Vec<String>,
    /// Relation label names (`C_rel`).
    pub relation_labels: Vec<String>,
}

impl TableCollection {
    /// Resolves a column reference.
    pub fn column(&self, r: ColRef) -> &Column {
        &self.tables[r.table].columns[r.col]
    }

    /// Resolves a pair reference to its two columns.
    pub fn pair(&self, r: PairRef) -> (&Column, &Column) {
        let t = &self.tables[r.table];
        (&t.columns[r.subject], &t.columns[r.object])
    }

    /// Every annotated column, in table order.
    pub fn annotated_columns(&self) -> Vec<(ColRef, usize)> {
        let mut out = Vec::new();
        for (ti, t) in self.tables.iter().enumerate() {
            for (ci, c) in t.columns.iter().enumerate() {
                if let Some(label) = c.type_label {
                    out.push((ColRef { table: ti, col: ci }, label));
                }
            }
        }
        out
    }

    /// Every annotated column pair, in table order.
    pub fn annotated_pairs(&self) -> Vec<(PairRef, usize)> {
        let mut out = Vec::new();
        for (ti, t) in self.tables.iter().enumerate() {
            for rel in &t.relations {
                out.push((
                    PairRef { table: ti, subject: rel.subject, object: rel.object },
                    rel.label,
                ));
            }
        }
        out
    }

    /// Average number of rows per table (Table II statistic).
    pub fn avg_rows(&self) -> f64 {
        if self.tables.is_empty() {
            return 0.0;
        }
        self.tables.iter().map(|t| t.num_rows() as f64).sum::<f64>() / self.tables.len() as f64
    }

    /// Average number of annotated columns per table (Table II statistic).
    pub fn avg_annotated_cols(&self) -> f64 {
        if self.tables.is_empty() {
            return 0.0;
        }
        let annotated: usize = self
            .tables
            .iter()
            .map(|t| t.columns.iter().filter(|c| c.type_label.is_some()).count())
            .sum();
        annotated as f64 / self.tables.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableCollection {
        TableCollection {
            tables: vec![Table {
                title: "1990 nba draft".into(),
                columns: vec![
                    Column::new("player", vec!["Les Jepsen".into(), "Bo Kimble".into()], Some(0)),
                    Column::new("nba team", vec!["Warriors".into(), "Clippers".into()], Some(1)),
                    Column::new("notes", vec!["".into(), "".into()], None),
                ],
                relations: vec![RelationAnnotation { subject: 0, object: 1, label: 3 }],
            }],
            type_labels: vec!["person".into(), "team".into()],
            relation_labels: (0..4).map(|i| format!("rel{i}")).collect(),
        }
    }

    #[test]
    fn annotated_columns_skip_unlabelled() {
        let c = sample();
        let cols = c.annotated_columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].1, 0);
        assert_eq!(cols[1].1, 1);
    }

    #[test]
    fn annotated_pairs_resolve() {
        let c = sample();
        let pairs = c.annotated_pairs();
        assert_eq!(pairs.len(), 1);
        let (s, o) = c.pair(pairs[0].0);
        assert_eq!(s.header, "player");
        assert_eq!(o.header, "nba team");
    }

    #[test]
    fn unique_cells_dedups_in_order() {
        let col = Column::new("h", vec!["a".into(), "b".into(), "a".into()], None);
        assert_eq!(col.unique_cells(), vec!["a", "b"]);
    }

    #[test]
    fn table_shape_statistics() {
        let c = sample();
        assert_eq!(c.tables[0].num_rows(), 2);
        assert_eq!(c.tables[0].num_cols(), 3);
        assert!((c.avg_annotated_cols() - 2.0).abs() < 1e-9);
        assert!((c.avg_rows() - 2.0).abs() < 1e-9);
    }
}
