//! # explainti-table
//!
//! Relational-table data model, the `S(c)` / `S(c_i, c_j)` serialisations
//! of Section II-B (via `explainti-tokenizer`), and the lightweight column
//! graph of Algorithm 3 with 2-hop neighbour sampling.

#![warn(missing_docs)]

pub mod csv;
pub mod graph;
pub mod model;

pub use csv::{parse_csv, table_from_csv, table_from_csv_file, CsvError};
pub use graph::{ColumnGraph, GraphKind};
pub use model::{ColRef, Column, PairRef, RelationAnnotation, Table, TableCollection};
