//! Simulated human judges for plausibility and trustability (Fig 5).
//!
//! The paper's Fig 5 aggregates 50 graduate-student judgements of
//! (i) *adequate justification*, (ii) *understandability*, and (iii) a
//! 1-5 *trust* score. Humans are unavailable to a reproduction, so judges
//! are simulated against the corpus's **signal provenance**: the
//! generator knows exactly which cells carry the label signal, and a
//! plausible explanation is one that surfaces that signal (for local
//! views) or label-consistent evidence (for global/structural views).
//! Calibrated noise makes individual judges imperfect, mirroring
//! inter-annotator disagreement. See DESIGN.md §2 for the substitution
//! rationale.

use explainti_corpus::ColProvenance;
use explainti_table::Column;
use explainti_tokenizer::normalize;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::HashSet;

/// Everything a judge sees about one sample.
#[derive(Debug, Clone)]
pub struct JudgeContext {
    /// Words from the cells the generator marked as label-carrying.
    pub signal_words: HashSet<String>,
    /// The model's predicted label.
    pub predicted: usize,
    /// The gold label.
    pub gold: usize,
}

impl JudgeContext {
    /// Builds the context from a column and its provenance. Signal words
    /// are the generator-marked core cells plus the column header — a
    /// human accepts "the header says country" as justification exactly
    /// like a signal cell — plus, for non-weak tables, the title words
    /// ("the title says nba draft" justifies a player prediction). Weak
    /// tables carry deliberately generic titles, which justify nothing.
    pub fn from_column(
        title: &str,
        col: &Column,
        prov: &ColProvenance,
        predicted: usize,
        gold: usize,
    ) -> Self {
        let mut signal_words = HashSet::new();
        for &row in &prov.signal_rows {
            if let Some(cell) = col.cells.get(row) {
                for w in normalize(cell) {
                    signal_words.insert(w);
                }
            }
        }
        for w in normalize(&col.header) {
            signal_words.insert(w);
        }
        if !prov.weak {
            for w in normalize(title) {
                signal_words.insert(w);
            }
        }
        Self { signal_words, predicted, gold }
    }
}

/// The explanation as shown to a judge.
#[derive(Debug, Clone, Default)]
pub struct JudgedExplanation {
    /// Texts of the top local spans (or salient tokens).
    pub span_texts: Vec<String>,
    /// Labels of the top retrieved samples / neighbours.
    pub supporting_labels: Vec<usize>,
}

/// One judge's verdict on one explanation.
#[derive(Debug, Clone, Copy)]
pub struct Verdict {
    /// "Does the explanation adequately justify the model prediction?"
    pub adequate: bool,
    /// "Can you understand the explanation?"
    pub understandable: bool,
    /// Trust score in 1–5.
    pub trust: f32,
}

/// Fraction of span words that are signal words.
fn signal_overlap(ctx: &JudgeContext, spans: &[String]) -> f32 {
    let mut words = 0usize;
    let mut hits = 0usize;
    for span in spans {
        for w in normalize(span) {
            words += 1;
            if ctx.signal_words.contains(&w) {
                hits += 1;
            }
        }
    }
    if words == 0 {
        0.0
    } else {
        hits as f32 / words as f32
    }
}

/// Fraction of supporting labels that agree with the prediction.
fn label_agreement(ctx: &JudgeContext, labels: &[usize]) -> f32 {
    if labels.is_empty() {
        return 0.0;
    }
    labels.iter().filter(|&&l| l == ctx.predicted).count() as f32 / labels.len() as f32
}

/// One simulated judge's verdict. The noise parameter reproduces
/// inter-annotator variance; the paper's setup corresponds to
/// `noise ≈ 0.15`.
pub fn judge(
    ctx: &JudgeContext,
    expl: &JudgedExplanation,
    noise: f32,
    rng: &mut SmallRng,
) -> Verdict {
    let overlap = signal_overlap(ctx, &expl.span_texts);
    let agreement = label_agreement(ctx, &expl.supporting_labels);
    // Evidence quality: a judge weighs the shown spans (do they surface
    // the signal cells?) together with the precedents (do they carry the
    // predicted label?). Bad spans dilute good precedents — a judge who
    // is shown irrelevant phrases does not forgive them just because a
    // similar sample is also listed. Label-only evidence (no spans) is a
    // weaker justification.
    let evidence =
        if expl.span_texts.is_empty() { 0.6 * agreement } else { 0.6 * overlap + 0.4 * agreement };

    // Understandability: concise whole-word spans (2–6 words) read best;
    // single tokens are too fragmented and long dumps (SelfExplain's
    // whole-field segments, saliency's 10-token lists) take effort.
    let has_spans = !expl.span_texts.is_empty();
    let has_support = !expl.supporting_labels.is_empty();
    let readability = if has_spans {
        let avg_words = expl.span_texts.iter().map(|s| normalize(s).len() as f32).sum::<f32>()
            / expl.span_texts.len() as f32;
        if avg_words <= 6.0 {
            (avg_words / 3.0).min(1.0)
        } else {
            (1.0 - (avg_words - 6.0) / 8.0).max(0.1)
        }
    } else {
        0.0
    };
    let understand_score =
        0.5 * readability + 0.3 * f32::from(has_support) + 0.2 * f32::from(has_spans);

    let jitter = |rng: &mut SmallRng| {
        if noise > 0.0 {
            rng.gen_range(-noise..noise)
        } else {
            0.0
        }
    };
    // An explanation justifies the prediction when *most* of the shown
    // evidence is signal (precision matters, not just any overlap).
    let adequate = evidence + jitter(rng) > 0.55;
    let understandable = understand_score + jitter(rng) > 0.4;
    let trust = (1.0 + 2.5 * evidence + 1.5 * understand_score + jitter(rng)).clamp(1.0, 5.0);
    Verdict { adequate, understandable, trust }
}

/// Aggregated Fig-5 statistics over many judgements.
#[derive(Debug, Clone, Copy, Default)]
pub struct JudgeAggregate {
    /// Fraction judged adequately justified.
    pub adequacy: f64,
    /// Fraction judged understandable.
    pub understandability: f64,
    /// Mean trust score (1–5).
    pub mean_trust: f64,
    /// Number of judgements.
    pub n: usize,
}

impl JudgeAggregate {
    /// Accumulates one verdict.
    pub fn push(&mut self, v: Verdict) {
        let n = self.n as f64;
        self.adequacy = (self.adequacy * n + f64::from(u8::from(v.adequate))) / (n + 1.0);
        self.understandability =
            (self.understandability * n + f64::from(u8::from(v.understandable))) / (n + 1.0);
        self.mean_trust = (self.mean_trust * n + v.trust as f64) / (n + 1.0);
        self.n += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx() -> JudgeContext {
        let mut signal_words = HashSet::new();
        for w in ["costa", "rica", "kenya"] {
            signal_words.insert(w.to_string());
        }
        JudgeContext { signal_words, predicted: 4, gold: 4 }
    }

    #[test]
    fn signal_spans_are_judged_adequate() {
        let mut rng = SmallRng::seed_from_u64(1);
        let good = JudgedExplanation {
            span_texts: vec!["costa rica kenya".into()],
            supporting_labels: vec![4],
        };
        let bad = JudgedExplanation {
            span_texts: vec!["jordan taylor".into()],
            supporting_labels: vec![9],
        };
        let mut good_votes = 0;
        let mut bad_votes = 0;
        for _ in 0..200 {
            if judge(&ctx(), &good, 0.15, &mut rng).adequate {
                good_votes += 1;
            }
            if judge(&ctx(), &bad, 0.15, &mut rng).adequate {
                bad_votes += 1;
            }
        }
        assert!(good_votes > 180, "good explanation adequacy {good_votes}/200");
        assert!(bad_votes < 40, "bad explanation adequacy {bad_votes}/200");
    }

    #[test]
    fn trust_orders_with_evidence() {
        let mut rng = SmallRng::seed_from_u64(2);
        let strong = JudgedExplanation {
            span_texts: vec!["costa rica kenya".into()],
            supporting_labels: vec![4, 4, 4],
        };
        let weak = JudgedExplanation { span_texts: vec!["of".into()], supporting_labels: vec![] };
        let mut ts = 0.0;
        let mut tw = 0.0;
        for _ in 0..100 {
            ts += judge(&ctx(), &strong, 0.15, &mut rng).trust;
            tw += judge(&ctx(), &weak, 0.15, &mut rng).trust;
        }
        assert!(ts / 100.0 > tw / 100.0 + 1.0, "strong {} weak {}", ts / 100.0, tw / 100.0);
    }

    #[test]
    fn aggregate_averages_votes() {
        let mut agg = JudgeAggregate::default();
        agg.push(Verdict { adequate: true, understandable: true, trust: 5.0 });
        agg.push(Verdict { adequate: false, understandable: true, trust: 1.0 });
        assert_eq!(agg.n, 2);
        assert!((agg.adequacy - 0.5).abs() < 1e-9);
        assert!((agg.understandability - 1.0).abs() < 1e-9);
        assert!((agg.mean_trust - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_explanation_scores_low() {
        let mut rng = SmallRng::seed_from_u64(3);
        let empty = JudgedExplanation::default();
        let v = judge(&ctx(), &empty, 0.0, &mut rng);
        assert!(!v.adequate);
        assert!(!v.understandable);
        assert!(v.trust <= 1.5);
    }
}
