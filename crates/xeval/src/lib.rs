//! # explainti-xeval
//!
//! Explainability evaluation for the ExplainTI reproduction:
//!
//! * **Sufficiency** (Table IV, Fig 3): the FRESH protocol — train a fresh
//!   classifier on extracted explanations only ([`sufficiency_f1`]) over
//!   per-method extractors ([`sufficiency`] module).
//! * **Plausibility & trustability** (Fig 5): simulated judges scoring
//!   explanations against the corpus's signal provenance ([`judges`]).
//! * **Online simulation** (Section IV-C): a verification-time cost model
//!   reproducing the ≈19% expert time saving ([`online`]).

#![warn(missing_docs)]

pub mod judges;
pub mod online;
pub mod sufficiency;
pub mod textclf;

pub use judges::{judge, JudgeAggregate, JudgeContext, JudgedExplanation, Verdict};
pub use online::{simulate, CostModel, OnlineResult, VerificationItem};
pub use sufficiency::{
    extract_explainti_views, extract_influence, extract_saliency, ExplainTiViews,
};
pub use textclf::{sufficiency_f1, TextInstance};
