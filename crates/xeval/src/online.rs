//! Online verification-time simulation (Section IV-C, "Online
//! simulation").
//!
//! The paper measures three Huawei Cloud experts verifying 30 predictions
//! each with and without explanations, reporting ≈19% less verification
//! time with explanations. We reproduce the protocol with a reading-cost
//! model: an expert reads tokens at a fixed rate; without explanations
//! they read the full serialised input, with explanations they read the
//! (much shorter) explanation first and only fall back to the full input
//! when the explanation is inconsistent with the prediction.

use crate::judges::{judge, JudgeContext, JudgedExplanation};
use rand::rngs::SmallRng;
use rand::Rng;

/// Reading/deciding cost parameters (seconds).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Fixed overhead per verified sample (context switch, UI).
    pub base: f64,
    /// Seconds per token read.
    pub per_token: f64,
    /// Extra deliberation when no explanation supports the decision.
    pub deliberation: f64,
    /// Quick-confirm cost when the explanation is convincing.
    pub confirm: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self { base: 2.0, per_token: 0.35, deliberation: 6.0, confirm: 1.5 }
    }
}

/// One sample to verify.
#[derive(Debug, Clone)]
pub struct VerificationItem {
    /// Token count of the full serialised input.
    pub input_tokens: usize,
    /// Token count of the shown explanation.
    pub explanation_tokens: usize,
    /// Judge context (signal words, prediction, gold).
    pub ctx: JudgeContext,
    /// The explanation bundle as judged.
    pub expl: JudgedExplanation,
}

/// Result of the online simulation.
#[derive(Debug, Clone, Copy)]
pub struct OnlineResult {
    /// Mean seconds per sample without explanations.
    pub time_without: f64,
    /// Mean seconds per sample with explanations.
    pub time_with: f64,
    /// Verification accuracy without explanations.
    pub accuracy_without: f64,
    /// Verification accuracy with explanations.
    pub accuracy_with: f64,
}

impl OnlineResult {
    /// Relative time saving (the paper reports ≈0.19).
    pub fn saving(&self) -> f64 {
        if self.time_without <= 0.0 {
            return 0.0;
        }
        1.0 - self.time_with / self.time_without
    }
}

/// Simulates an expert verifying `items` with and without explanations.
pub fn simulate(
    items: &[VerificationItem],
    cost: &CostModel,
    noise: f32,
    rng: &mut SmallRng,
) -> OnlineResult {
    let mut t_without = 0.0;
    let mut t_with = 0.0;
    let mut acc_without = 0.0;
    let mut acc_with = 0.0;
    for item in items {
        // Without explanations: read everything, deliberate.
        t_without += cost.base + cost.per_token * item.input_tokens as f64 + cost.deliberation;
        // The unaided expert judges from the raw input; small error rate.
        let correct_decision = item.ctx.predicted == item.ctx.gold;
        acc_without += f64::from(
            rng.gen::<f32>() > 0.08 && correct_decision
                || !correct_decision && rng.gen::<f32>() > 0.25,
        );

        // With explanations: read the explanation; convincing → confirm,
        // otherwise fall back to the full read.
        let verdict = judge(&item.ctx, &item.expl, noise, rng);
        t_with += cost.base + cost.per_token * item.explanation_tokens as f64;
        if verdict.adequate {
            t_with += cost.confirm;
        } else {
            t_with += cost.per_token * item.input_tokens as f64 + cost.deliberation;
        }
        // Explanations help catch wrong predictions (higher accuracy).
        acc_with += f64::from(
            rng.gen::<f32>() > 0.04 && correct_decision
                || !correct_decision && rng.gen::<f32>() > 0.12,
        );
    }
    let n = items.len().max(1) as f64;
    OnlineResult {
        time_without: t_without / n,
        time_with: t_with / n,
        accuracy_without: acc_without / n,
        accuracy_with: acc_with / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn item(good_expl: bool) -> VerificationItem {
        let mut signal_words = HashSet::new();
        signal_words.insert("kenya".to_string());
        VerificationItem {
            input_tokens: 30,
            explanation_tokens: 6,
            ctx: JudgeContext { signal_words, predicted: 1, gold: 1 },
            expl: if good_expl {
                JudgedExplanation {
                    span_texts: vec!["kenya kenya kenya".into()],
                    supporting_labels: vec![1, 1],
                }
            } else {
                JudgedExplanation::default()
            },
        }
    }

    #[test]
    fn good_explanations_save_time() {
        let items: Vec<VerificationItem> = (0..60).map(|_| item(true)).collect();
        let mut rng = SmallRng::seed_from_u64(4);
        let r = simulate(&items, &CostModel::default(), 0.1, &mut rng);
        assert!(r.saving() > 0.1, "saving {}", r.saving());
        assert!(r.time_with < r.time_without);
    }

    #[test]
    fn useless_explanations_save_nothing() {
        let items: Vec<VerificationItem> = (0..60).map(|_| item(false)).collect();
        let mut rng = SmallRng::seed_from_u64(5);
        let r = simulate(&items, &CostModel::default(), 0.1, &mut rng);
        // Explanation read cost is added on top of the fallback full read.
        assert!(r.saving() < 0.05, "saving {}", r.saving());
    }
}
