//! Explanation extraction for the sufficiency analysis (Table IV, Fig 3).
//!
//! For every train/test sample of a task, the extractors reduce a model's
//! explanation bundle to plain text — exactly what a human would be shown
//! — and [`sufficiency_f1`](crate::textclf::sufficiency_f1) then measures
//! how predictive that text alone is.

use crate::textclf::TextInstance;
use explainti_baselines::{InfluenceExplainer, SeqClassifier};
use explainti_core::{ExplainTi, TaskKind};
use explainti_corpus::Split;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Explanation texts per view extracted from one ExplainTI model.
pub struct ExplainTiViews {
    /// Top-k local windows, joined.
    pub local: Vec<TextInstance>,
    /// Content of the top-k influential training samples.
    pub global: Vec<TextInstance>,
    /// Content of the top-k structural neighbours.
    pub structural: Vec<TextInstance>,
    /// Random windows of the same shape as `local` (Fig 3's control).
    pub random: Vec<TextInstance>,
}

fn sample_text(model: &ExplainTi, task: usize, idx: usize) -> String {
    let enc = &model.tasks()[task].data.samples[idx].encoded;
    model.tokenizer.decode(&enc.ids[1..enc.len.saturating_sub(1)])
}

/// Extracts all three ExplainTI views (plus the random-window control)
/// with a single prediction pass per sample. `k = (local, global,
/// structural)` caps per view; Table IV uses (3, 1, 1).
pub fn extract_explainti_views(
    model: &mut ExplainTi,
    kind: TaskKind,
    k: (usize, usize, usize),
    seed: u64,
) -> ExplainTiViews {
    let task = model.task_index(kind).expect("task not registered");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut views = ExplainTiViews {
        local: Vec::new(),
        global: Vec::new(),
        structural: Vec::new(),
        random: Vec::new(),
    };
    let n = model.tasks()[task].data.samples.len();
    for idx in 0..n {
        let (label, split) = {
            let s = &model.tasks()[task].data.samples[idx];
            (s.label, s.split)
        };
        if split == Split::Valid {
            continue;
        }
        let pred = model.predict(kind, idx);

        let local_text = pred
            .explanation
            .top_local_diverse(k.0)
            .into_iter()
            .map(|s| s.text.clone())
            .collect::<Vec<_>>()
            .join(" ; ");
        views.local.push(TextInstance { text: local_text, label, split });

        let global_text = pred
            .explanation
            .top_global(k.1)
            .iter()
            .map(|gi| sample_text(model, task, gi.sample))
            .collect::<Vec<_>>()
            .join(" ; ");
        views.global.push(TextInstance { text: global_text, label, split });

        let structural_text = pred
            .explanation
            .top_structural(k.2)
            .iter()
            .map(|sn| sample_text(model, task, sn.node))
            .collect::<Vec<_>>()
            .join(" ; ");
        views.structural.push(TextInstance { text: structural_text, label, split });

        // Random windows of the same count and width as the local view.
        let enc = &model.tasks()[task].data.samples[idx].encoded;
        let w = model.cfg.window;
        let mut rand_text = Vec::new();
        for _ in 0..k.0 {
            if enc.len > w + 1 {
                let start = rng.gen_range(1..enc.len - w);
                rand_text.push(model.tokenizer.decode(&enc.ids[start..start + w]));
            }
        }
        views.random.push(TextInstance { text: rand_text.join(" ; "), label, split });
    }
    views
}

/// Saliency-map explanations: the `top` highest-|grad×input| tokens
/// (Table IV uses K=10 "because its explanations are short").
pub fn extract_saliency(
    model: &mut SeqClassifier,
    kind: TaskKind,
    top: usize,
) -> Vec<TextInstance> {
    let n = model.samples(kind).len();
    let mut out = Vec::new();
    for idx in 0..n {
        let (enc, label, split) = model.samples(kind)[idx].clone();
        if split == Split::Valid {
            continue;
        }
        let sal = model.saliency(kind, idx);
        let mut positions: Vec<usize> = sal.iter().take(top).map(|t| t.position).collect();
        positions.sort_unstable();
        let words: Vec<String> = positions
            .iter()
            .filter(|&&p| enc.ids[p] >= 8)
            .map(|&p| model.tokenizer().token(enc.ids[p]).to_string())
            .collect();
        out.push(TextInstance { text: words.join(" "), label, split });
    }
    out
}

/// Influence-function explanations: content of the top-`k` most
/// influential training samples.
pub fn extract_influence(model: &mut SeqClassifier, kind: TaskKind, k: usize) -> Vec<TextInstance> {
    let explainer = InfluenceExplainer::new(model, kind);
    let n = model.samples(kind).len();
    let mut out = Vec::new();
    for idx in 0..n {
        let (label, split) = {
            let s = &model.samples(kind)[idx];
            (s.1, s.2)
        };
        if split == Split::Valid {
            continue;
        }
        let top = explainer.top_k(model, idx, k);
        let text = top
            .iter()
            .map(|&(i, _)| {
                let enc = &model.samples(kind)[i].0;
                model.tokenizer().decode(&enc.ids[1..enc.len.saturating_sub(1)])
            })
            .collect::<Vec<_>>()
            .join(" ; ");
        out.push(TextInstance { text, label, split });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use explainti_core::ExplainTiConfig;
    use explainti_corpus::{generate_wiki, WikiConfig};

    #[test]
    fn views_cover_train_and_test_but_not_valid() {
        let d = generate_wiki(&WikiConfig { num_tables: 40, seed: 81, ..Default::default() });
        let mut cfg = ExplainTiConfig::bert_like(2048, 24);
        cfg.top_k = 3;
        cfg.sample_r = 4;
        let mut m = ExplainTi::new(&d, cfg);
        m.refresh_store(0);
        let views = extract_explainti_views(&mut m, TaskKind::Type, (3, 1, 1), 7);
        let total = m.tasks()[0].data.samples.len();
        let valid = m.tasks()[0].data.valid_idx.len();
        assert_eq!(views.local.len(), total - valid);
        assert_eq!(views.global.len(), views.local.len());
        assert_eq!(views.random.len(), views.local.len());
        assert!(views.local.iter().all(|i| i.split != Split::Valid));
        // Local texts decode to non-empty strings for most samples.
        let nonempty = views.local.iter().filter(|i| !i.text.is_empty()).count();
        assert!(nonempty as f64 > 0.9 * views.local.len() as f64);
    }
}
