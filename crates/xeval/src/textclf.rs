//! A fresh text classifier for the FRESH sufficiency protocol.
//!
//! FRESH (Jain et al., ACL'21) evaluates explanation *sufficiency* by
//! training a new model that sees **only the extracted explanations** and
//! measuring how well it recovers the labels. This module provides that
//! fresh classifier: its own tokenizer (built from training explanations
//! only), its own small transformer encoder, and a plain CE fine-tune.

use explainti_corpus::Split;
use explainti_encoder::{EncoderConfig, TransformerEncoder};
use explainti_metrics::{f1_scores, F1Scores};
use explainti_nn::{AdamW, Graph, Linear, LinearSchedule, ParamStore};
use explainti_tokenizer::{Encoded, Tokenizer, CLS, PAD, SEP};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One explanation-only instance for the sufficiency classifier.
#[derive(Debug, Clone)]
pub struct TextInstance {
    /// The extracted explanation text (empty when a method produced no
    /// explanation for the sample — still a legitimate instance).
    pub text: String,
    /// Gold label of the original sample.
    pub label: usize,
    /// Original sample's split.
    pub split: Split,
}

/// Encodes raw explanation text as `[CLS] tokens… [SEP]` padded to
/// `max_len`.
fn encode_text(tok: &Tokenizer, text: &str, max_len: usize) -> Encoded {
    let mut ids = vec![CLS];
    ids.extend(tok.tokenize(text));
    ids.truncate(max_len - 1);
    ids.push(SEP);
    let len = ids.len();
    ids.resize(max_len, PAD);
    Encoded { ids, len, second_start: None }
}

/// Trains a fresh classifier on explanation texts and returns test F1.
///
/// This is the measurement behind every row of Table IV and every bar of
/// Figure 3.
pub fn sufficiency_f1(instances: &[TextInstance], num_classes: usize, seed: u64) -> F1Scores {
    let max_len = 24;
    let train_texts: Vec<&str> =
        instances.iter().filter(|i| i.split == Split::Train).map(|i| i.text.as_str()).collect();
    let tok = Tokenizer::train(train_texts.iter().copied(), 2048);

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    // RoBERTa-like, per the paper's Table IV setup.
    let cfg = EncoderConfig::roberta_like(tok.vocab_size(), max_len);
    let encoder = TransformerEncoder::new(&mut store, cfg, &mut rng);
    let head = Linear::new(&mut store, "fresh.head", encoder.d_model(), num_classes, &mut rng);

    let encoded: Vec<Encoded> =
        instances.iter().map(|i| encode_text(&tok, &i.text, max_len)).collect();
    let train_idx: Vec<usize> =
        (0..instances.len()).filter(|&i| instances[i].split == Split::Train).collect();

    let epochs = 4;
    let batch = 16;
    let total_steps = (train_idx.len() / batch + 1) * epochs;
    let mut opt = AdamW::new(LinearSchedule::new(2e-3, total_steps / 20 + 1, total_steps));
    let mut order = train_idx;
    for _ in 0..epochs {
        order.shuffle(&mut rng);
        for chunk in order.chunks(batch) {
            for &i in chunk {
                let mut g = Graph::new();
                let emb = encoder.forward(&mut g, &store, &encoded[i], true, &mut rng);
                let cls = encoder.cls(&mut g, emb);
                let logits = head.forward(&mut g, &store, cls);
                let loss = g.cross_entropy(logits, &[instances[i].label]);
                g.backward(loss);
                g.flush_grads(&mut store);
            }
            opt.step(&mut store);
        }
    }

    let mut preds = Vec::new();
    let mut labels = Vec::new();
    for (i, inst) in instances.iter().enumerate() {
        if inst.split != Split::Test {
            continue;
        }
        let mut g = Graph::new();
        let emb = encoder.forward(&mut g, &store, &encoded[i], false, &mut rng);
        let cls = encoder.cls(&mut g, emb);
        let logits = head.forward(&mut g, &store, cls);
        preds.push(g.value(logits).argmax_row(0));
        labels.push(inst.label);
    }
    f1_scores(&preds, &labels, num_classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// When the explanation text *is* the label signal, the fresh
    /// classifier must recover it; when it is noise, it must not.
    #[test]
    fn informative_explanations_beat_noise() {
        let words = ["alpha", "bravo", "charlie", "delta"];
        let mut informative = Vec::new();
        let mut noise = Vec::new();
        for rep in 0..40 {
            for (label, w) in words.iter().enumerate() {
                let split = if rep % 10 == 9 { Split::Test } else { Split::Train };
                informative.push(TextInstance { text: format!("{w} {w} extra"), label, split });
                noise.push(TextInstance { text: format!("filler {}", rep % 3), label, split });
            }
        }
        let good = sufficiency_f1(&informative, 4, 1);
        let bad = sufficiency_f1(&noise, 4, 1);
        assert!(good.micro > 0.9, "informative micro {}", good.micro);
        assert!(bad.micro < 0.6, "noise micro {}", bad.micro);
    }

    #[test]
    fn empty_texts_are_handled() {
        let instances: Vec<TextInstance> = (0..20)
            .map(|i| TextInstance {
                text: String::new(),
                label: i % 2,
                split: if i < 16 { Split::Train } else { Split::Test },
            })
            .collect();
        let f1 = sufficiency_f1(&instances, 2, 2);
        assert!(f1.micro.is_finite());
    }
}
