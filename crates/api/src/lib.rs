//! # explainti-api
//!
//! The stable typed surface between ExplainTI's interpretation engine
//! and everything that talks to it: the `interpret` CLI command
//! (`--json`), the `explainti serve` HTTP server, and any external
//! client. One set of serde DTOs in, one set out — the CLI and the
//! server produce byte-identical JSON for the same model and input.
//!
//! Request side: [`PredictRequest`] (a single ad-hoc column) and
//! [`InterpretTableRequest`] (a whole table). Response side:
//! [`PredictResponse`] (prediction + top-k multi-view explanations,
//! reusing the core explanation types) and [`InterpretTableResponse`].
//! Failures are a typed [`ApiError`] with an [`ErrorCode`] that maps
//! onto HTTP status codes.

#![warn(missing_docs)]

use explainti_core::{GlobalInfluence, LocalSpan, Prediction, StructuralNeighbor};
use explainti_table::Table;
use serde::{Deserialize, Serialize};

/// Default number of explanations per view in a [`PredictResponse`].
pub const DEFAULT_TOP_K: usize = 3;

// ---- Requests ---------------------------------------------------------

/// One ad-hoc column to interpret.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictRequest {
    /// Table title (page/file context, `p` in the serialisation).
    pub title: String,
    /// Column header (`h`).
    pub header: String,
    /// Cell values, top to bottom (`v…`).
    pub cells: Vec<String>,
}

/// One column of an [`InterpretTableRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnData {
    /// Column header.
    pub header: String,
    /// Cell values, top to bottom.
    pub cells: Vec<String>,
}

/// A whole table to interpret column by column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterpretTableRequest {
    /// Table title.
    pub title: String,
    /// The columns, in table order.
    pub columns: Vec<ColumnData>,
}

impl InterpretTableRequest {
    /// Builds a request from an in-memory [`Table`] (e.g. parsed CSV).
    pub fn from_table(table: &Table) -> Self {
        Self {
            title: table.title.clone(),
            columns: table
                .columns
                .iter()
                .map(|c| ColumnData { header: c.header.clone(), cells: c.cells.clone() })
                .collect(),
        }
    }

    /// The column at `idx` as a single-column [`PredictRequest`].
    pub fn column_request(&self, idx: usize) -> PredictRequest {
        let col = &self.columns[idx];
        PredictRequest {
            title: self.title.clone(),
            header: col.header.clone(),
            cells: col.cells.clone(),
        }
    }
}

// ---- Responses --------------------------------------------------------

/// A prediction with its top-k multi-view explanations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictResponse {
    /// Predicted label name (from the model's label set).
    pub label: String,
    /// Predicted label index into the model's label set.
    pub label_id: usize,
    /// Softmax confidence of the predicted label.
    pub confidence: f32,
    /// Top-k local explanations (non-overlapping windows, best first).
    pub local: Vec<LocalSpan>,
    /// Top-k global explanations (influential training samples).
    pub global: Vec<GlobalInfluence>,
    /// Top-k structural explanations (attended graph neighbours).
    pub structural: Vec<StructuralNeighbor>,
}

impl PredictResponse {
    /// Projects a core [`Prediction`] onto the wire format: label index
    /// resolved against `labels`, each explanation view truncated to its
    /// top `top_k` entries (the local view via the non-overlapping
    /// diverse selection the verification UI uses).
    pub fn from_prediction(p: &Prediction, labels: &[String], top_k: usize) -> Self {
        let label = labels.get(p.label).cloned().unwrap_or_else(|| format!("label#{}", p.label));
        Self {
            label,
            label_id: p.label,
            confidence: p.confidence,
            local: p.explanation.top_local_diverse(top_k).into_iter().cloned().collect(),
            global: p.explanation.top_global(top_k).to_vec(),
            structural: p.explanation.top_structural(top_k).to_vec(),
        }
    }
}

/// One column's prediction inside an [`InterpretTableResponse`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnPrediction {
    /// The column's header, echoed for alignment.
    pub header: String,
    /// The column's prediction and explanations.
    pub prediction: PredictResponse,
}

/// Per-column predictions for a whole table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterpretTableResponse {
    /// The table title, echoed from the request.
    pub title: String,
    /// One entry per request column, in request order.
    pub columns: Vec<ColumnPrediction>,
}

// ---- Errors -----------------------------------------------------------

/// Machine-readable failure category; maps onto an HTTP status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// Malformed request (bad JSON, missing fields, empty input).
    BadRequest,
    /// Unknown endpoint.
    NotFound,
    /// Endpoint exists but not for this HTTP method.
    MethodNotAllowed,
    /// Request body exceeds the configured limit.
    PayloadTooLarge,
    /// The bounded request queue is full — retry with backoff.
    QueueFull,
    /// The per-request deadline elapsed before a worker answered.
    DeadlineExceeded,
    /// The server is draining for shutdown and takes no new work.
    ShuttingDown,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    /// The HTTP status code this error category maps to.
    pub fn status(self) -> u16 {
        match self {
            ErrorCode::BadRequest => 400,
            ErrorCode::NotFound => 404,
            ErrorCode::MethodNotAllowed => 405,
            ErrorCode::PayloadTooLarge => 413,
            ErrorCode::QueueFull | ErrorCode::ShuttingDown => 503,
            ErrorCode::DeadlineExceeded => 504,
            ErrorCode::Internal => 500,
        }
    }
}

/// A typed API failure, serialised as the error response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApiError {
    /// Failure category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// A new error with the given category and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self { code, message: message.into() }
    }

    /// A `BadRequest` error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::BadRequest, message)
    }

    /// The HTTP status of this error.
    pub fn status(&self) -> u16 {
        self.code.status()
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_json() {
        let req = InterpretTableRequest {
            title: "1990 nba draft".into(),
            columns: vec![
                ColumnData { header: "player".into(), cells: vec!["Les Jepsen".into()] },
                ColumnData { header: "round".into(), cells: vec!["1".into(), "2".into()] },
            ],
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: InterpretTableRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.column_request(1).header, "round");
        assert_eq!(back.column_request(1).title, "1990 nba draft");
    }

    #[test]
    fn response_round_trips_through_json() {
        let resp = PredictResponse {
            label: "country".into(),
            label_id: 4,
            confidence: 0.87,
            local: vec![LocalSpan {
                start: 3,
                window: 4,
                pair_start: None,
                text: "costa rica".into(),
                relevance: 0.61,
            }],
            global: vec![GlobalInfluence { sample: 12, influence: 0.5, label: 4 }],
            structural: vec![StructuralNeighbor { node: 7, attention: 0.9, label: 4 }],
        };
        let json = serde_json::to_string(&InterpretTableResponse {
            title: "t".into(),
            columns: vec![ColumnPrediction { header: "h".into(), prediction: resp }],
        })
        .unwrap();
        let back: InterpretTableResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.columns.len(), 1);
        assert_eq!(back.columns[0].prediction.label, "country");
        assert_eq!(back.columns[0].prediction.label_id, 4);
        assert_eq!(back.columns[0].prediction.local[0].text, "costa rica");
    }

    #[test]
    fn from_prediction_truncates_to_top_k() {
        let span = |start: usize, relevance: f32| LocalSpan {
            start,
            window: 2,
            pair_start: None,
            text: String::new(),
            relevance,
        };
        let p = Prediction {
            label: 1,
            confidence: 0.8,
            probs: vec![0.2, 0.8],
            explanation: explainti_core::Explanation {
                // Windows at 0, 10, 20, 30 are non-overlapping.
                local: vec![span(0, 0.4), span(10, 0.3), span(20, 0.2), span(30, 0.1)],
                global: (0..5)
                    .map(|i| GlobalInfluence { sample: i, influence: 0.2, label: 0 })
                    .collect(),
                structural: vec![],
            },
        };
        let labels = vec!["city".to_string(), "country".to_string()];
        let resp = PredictResponse::from_prediction(&p, &labels, 2);
        assert_eq!(resp.label, "country");
        assert_eq!(resp.local.len(), 2);
        assert_eq!(resp.global.len(), 2);
        assert!(resp.structural.is_empty());
    }

    #[test]
    fn error_codes_map_to_http_statuses() {
        assert_eq!(ApiError::bad_request("nope").status(), 400);
        assert_eq!(ApiError::new(ErrorCode::QueueFull, "busy").status(), 503);
        assert_eq!(ApiError::new(ErrorCode::DeadlineExceeded, "late").status(), 504);
        let json = serde_json::to_string(&ApiError::new(ErrorCode::QueueFull, "busy")).unwrap();
        let back: ApiError = serde_json::from_str(&json).unwrap();
        assert_eq!(back.code, ErrorCode::QueueFull);
    }
}
