//! # explainti-api
//!
//! The stable typed surface between ExplainTI's interpretation engine
//! and everything that talks to it: the `interpret` CLI command
//! (`--json`), the `explainti serve` HTTP server, and any external
//! client. One set of serde DTOs in, one set out — the CLI and the
//! server produce byte-identical JSON for the same model and input.
//!
//! Request side: [`PredictRequest`] (a single ad-hoc column) and
//! [`InterpretTableRequest`] (a whole table). Response side:
//! [`PredictResponse`] (prediction + top-k multi-view explanations)
//! and [`InterpretTableResponse`]. Failures are a typed [`ApiError`]
//! with an [`ErrorCode`] that maps onto HTTP status codes.
//!
//! ## Wire ownership and versioning
//!
//! The explanation payloads are **wire-owned** DTOs
//! ([`LocalExplanation`], [`GlobalExplanation`],
//! [`StructuralExplanation`]) rather than re-exports of
//! `explainti_core`'s in-memory types: the engine's internals can now
//! evolve (new fields, different numerics) without silently changing
//! the public JSON, and the golden-JSON test in this crate pins the
//! exact bytes. `From<core>` impls keep the projection one-liners.
//! Every top-level response carries [`SCHEMA_VERSION`] in a
//! `schema_version` field; the field names are byte-compatible with the
//! pre-versioned wire format, so existing clients only see one added
//! key.

#![warn(missing_docs)]

use explainti_core::{GlobalInfluence, LocalSpan, Prediction, StructuralNeighbor};
use explainti_table::Table;
use serde::{Deserialize, Serialize};

/// Default number of explanations per view in a [`PredictResponse`].
pub const DEFAULT_TOP_K: usize = 3;

/// Version of the response wire format. Bumped when a field changes
/// meaning or disappears; additive fields keep the version.
///
/// **v2** (event-driven serving front-end): [`ApiError`] gained a typed
/// `retry_after_s` field, [`ErrorCode`] the `TooManyConnections` (429)
/// and `RequestTimeout` (408) variants, and [`ConfigResponse`] the
/// connection-layer knobs (`max_conns`, `dispatchers`,
/// `read_timeout_ms`, `idle_timeout_ms`). All additive, but the error
/// body shape changed (every error now carries `retry_after_s`), so the
/// version bumped.
///
/// **v3** (sharded store + hot swap): the admin surface became typed —
/// [`SwapRequest`]/[`SwapResponse`] behind `POST /v1/admin/swap`,
/// [`StoreStatusResponse`] behind `GET /v1/admin/store`, [`ErrorCode`]
/// gained `SwapInProgress` (409) and `ShardUnavailable` (503),
/// [`ModelInfo`] now carries the live `generation`, and
/// [`ConfigResponse`] the store layout (`shards`, `replicas`,
/// `swap_verify`). Shutdown moved to `POST /v1/admin/shutdown` (the old
/// path answers with a `Deprecation` header).
///
/// **v4** (int8 quantized inference): [`ConfigResponse`] gained
/// `quantized`, reporting whether the server runs the encoder forward
/// and GE similarity on the int8 symmetric-quantized path
/// (`serve --quantized`). Additive, but the `/v1/config` body shape
/// changed, so the version bumped.
pub const SCHEMA_VERSION: u32 = 4;

// ---- Requests ---------------------------------------------------------

/// One ad-hoc column to interpret.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictRequest {
    /// Table title (page/file context, `p` in the serialisation).
    pub title: String,
    /// Column header (`h`).
    pub header: String,
    /// Cell values, top to bottom (`v…`).
    pub cells: Vec<String>,
}

/// One column of an [`InterpretTableRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnData {
    /// Column header.
    pub header: String,
    /// Cell values, top to bottom.
    pub cells: Vec<String>,
}

/// A whole table to interpret column by column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterpretTableRequest {
    /// Table title.
    pub title: String,
    /// The columns, in table order.
    pub columns: Vec<ColumnData>,
}

impl InterpretTableRequest {
    /// Builds a request from an in-memory [`Table`] (e.g. parsed CSV).
    pub fn from_table(table: &Table) -> Self {
        Self {
            title: table.title.clone(),
            columns: table
                .columns
                .iter()
                .map(|c| ColumnData { header: c.header.clone(), cells: c.cells.clone() })
                .collect(),
        }
    }

    /// The column at `idx` as a single-column [`PredictRequest`].
    pub fn column_request(&self, idx: usize) -> PredictRequest {
        let col = &self.columns[idx];
        PredictRequest {
            title: self.title.clone(),
            header: col.header.clone(),
            cells: col.cells.clone(),
        }
    }
}

// ---- Wire-owned explanation DTOs --------------------------------------

/// One local (attention-rollout token window) explanation on the wire.
///
/// Field names are byte-compatible with the serialisation of core's
/// `LocalSpan`, which this crate used to expose directly; the type is
/// owned here so the wire format is pinned independently of the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalExplanation {
    /// Start token offset of the window within the serialised column.
    pub start: usize,
    /// Window length in tokens.
    pub window: usize,
    /// Paired window start for cross-column (CPA) explanations.
    pub pair_start: Option<usize>,
    /// The window's surface text.
    pub text: String,
    /// Relevance mass attributed to the window.
    pub relevance: f32,
}

impl From<&LocalSpan> for LocalExplanation {
    fn from(s: &LocalSpan) -> Self {
        Self {
            start: s.start,
            window: s.window,
            pair_start: s.pair_start,
            text: s.text.clone(),
            relevance: s.relevance,
        }
    }
}

/// One global (influential training sample) explanation on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalExplanation {
    /// Index of the influential training sample.
    pub sample: usize,
    /// Influence weight (similarity-scaled vote).
    pub influence: f32,
    /// The influential sample's label.
    pub label: usize,
}

impl From<&GlobalInfluence> for GlobalExplanation {
    fn from(g: &GlobalInfluence) -> Self {
        Self { sample: g.sample, influence: g.influence, label: g.label }
    }
}

/// One structural (attended graph neighbour) explanation on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructuralExplanation {
    /// Graph node id of the attended neighbour.
    pub node: usize,
    /// Attention mass on the neighbour.
    pub attention: f32,
    /// The neighbour's label (`usize::MAX` when unlabelled).
    pub label: usize,
}

impl From<&StructuralNeighbor> for StructuralExplanation {
    fn from(n: &StructuralNeighbor) -> Self {
        Self { node: n.node, attention: n.attention, label: n.label }
    }
}

// ---- Responses --------------------------------------------------------

/// A prediction with its top-k multi-view explanations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictResponse {
    /// Wire-format version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Predicted label name (from the model's label set).
    pub label: String,
    /// Predicted label index into the model's label set.
    pub label_id: usize,
    /// Softmax confidence of the predicted label.
    pub confidence: f32,
    /// Top-k local explanations (non-overlapping windows, best first).
    pub local: Vec<LocalExplanation>,
    /// Top-k global explanations (influential training samples).
    pub global: Vec<GlobalExplanation>,
    /// Top-k structural explanations (attended graph neighbours).
    pub structural: Vec<StructuralExplanation>,
}

impl PredictResponse {
    /// Projects a core [`Prediction`] onto the wire format: label index
    /// resolved against `labels`, each explanation view truncated to its
    /// top `top_k` entries (the local view via the non-overlapping
    /// diverse selection the verification UI uses).
    pub fn from_prediction(p: &Prediction, labels: &[String], top_k: usize) -> Self {
        let label = labels.get(p.label).cloned().unwrap_or_else(|| format!("label#{}", p.label));
        Self {
            schema_version: SCHEMA_VERSION,
            label,
            label_id: p.label,
            confidence: p.confidence,
            local: p.explanation.top_local_diverse(top_k).into_iter().map(Into::into).collect(),
            global: p.explanation.top_global(top_k).iter().map(Into::into).collect(),
            structural: p.explanation.top_structural(top_k).iter().map(Into::into).collect(),
        }
    }
}

/// One column's prediction inside an [`InterpretTableResponse`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnPrediction {
    /// The column's header, echoed for alignment.
    pub header: String,
    /// The column's prediction and explanations.
    pub prediction: PredictResponse,
}

/// Per-column predictions for a whole table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterpretTableResponse {
    /// Wire-format version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The table title, echoed from the request.
    pub title: String,
    /// One entry per request column, in request order.
    pub columns: Vec<ColumnPrediction>,
}

// ---- Introspection ----------------------------------------------------

/// Static facts about the served model, reported by `GET /v1/config`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelInfo {
    /// Encoder hidden width (`d_model`).
    pub d_model: usize,
    /// Number of transformer layers.
    pub layers: usize,
    /// Maximum serialised sequence length.
    pub max_seq: usize,
    /// Tokenizer vocabulary size.
    pub vocab_size: usize,
    /// Number of output labels (column types).
    pub num_labels: usize,
    /// Total trainable scalar weights.
    pub num_weights: usize,
    /// Monotonic id of the model generation answering the request; bumps
    /// on every committed `POST /v1/admin/swap`.
    pub generation: u64,
}

/// Effective serving knobs, reported by `GET /v1/config` so operators
/// can see what a running instance actually resolved (flags, env,
/// defaults) without re-deriving it from the launch command line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigResponse {
    /// Wire-format version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Request-handling worker threads (HTTP concurrency).
    pub workers: usize,
    /// Kernel compute threads (the shared pool's width).
    pub threads: usize,
    /// Bounded request-queue capacity.
    pub queue_cap: usize,
    /// Micro-batch size cap for the batching collector.
    pub max_batch: usize,
    /// Prediction cache capacity (entries).
    pub cache_cap: usize,
    /// Per-request deadline in milliseconds.
    pub deadline_ms: u64,
    /// Explanations per view in responses.
    pub top_k: usize,
    /// Hard cap on simultaneously open connections; beyond it new
    /// connections answer a typed 429 with `Retry-After`.
    pub max_conns: usize,
    /// Dispatcher threads turning parsed requests into responses.
    pub dispatchers: usize,
    /// Slow-loris read deadline: a partially received request older
    /// than this answers a typed 408 and the connection closes.
    pub read_timeout_ms: u64,
    /// Idle keep-alive connections are closed after this long.
    pub idle_timeout_ms: u64,
    /// Number of embedding-store shards (consistent-hash partitions).
    pub shards: usize,
    /// Store replication factor (each sample on this many shards).
    pub replicas: usize,
    /// Whether a swap runs a smoke prediction on the candidate
    /// generation before committing it.
    pub swap_verify: bool,
    /// Whether inference runs on the int8 symmetric-quantized path
    /// (encoder forward + GE similarity); training output is always f32.
    pub quantized: bool,
    /// Facts about the loaded model.
    pub model: ModelInfo,
}

// ---- Admin ------------------------------------------------------------

/// `POST /v1/admin/swap` request: hot-swap the serving model to the
/// snapshot in `model_dir` (a directory written by `train`/`save`, with
/// a crash-safe MANIFEST). The new generation loads in the background;
/// in-flight requests finish on the old one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwapRequest {
    /// Model directory to load the next generation from.
    pub model_dir: String,
}

/// `POST /v1/admin/swap` success response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwapResponse {
    /// Wire-format version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Id of the generation now serving.
    pub generation: u64,
    /// Id of the generation that was serving before the swap.
    pub previous_generation: u64,
    /// Whether the candidate passed the pre-commit smoke verification
    /// (false when the server runs with verification disabled).
    pub verified: bool,
}

/// Per-shard occupancy inside a [`StoreStatusResponse`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardStatus {
    /// Shard index (consistent-hash bucket).
    pub shard: usize,
    /// Live embeddings stored on the shard (replicas included).
    pub stored: usize,
    /// Tombstoned entries awaiting compaction in the shard's index.
    pub tombstones: usize,
}

/// `GET /v1/admin/store` response: the live generation's explanation
/// store, shard by shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreStatusResponse {
    /// Wire-format version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Id of the generation whose store is being reported.
    pub generation: u64,
    /// Per-shard sizes, shard order.
    pub shards: Vec<ShardStatus>,
    /// Distinct stored embeddings (replicas counted once).
    pub stored: usize,
    /// Total tombstones across shards.
    pub tombstones: usize,
    /// True while a swap is loading/verifying in the background.
    pub swap_in_progress: bool,
}

// ---- Errors -----------------------------------------------------------

/// Machine-readable failure category; maps onto an HTTP status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// Malformed request (bad JSON, missing fields, empty input).
    BadRequest,
    /// Unknown endpoint.
    NotFound,
    /// Endpoint exists but not for this HTTP method.
    MethodNotAllowed,
    /// Request body exceeds the configured limit.
    PayloadTooLarge,
    /// The bounded request queue is full — retry with backoff.
    QueueFull,
    /// The per-request deadline elapsed before a worker answered.
    DeadlineExceeded,
    /// The server is draining for shutdown and takes no new work.
    ShuttingDown,
    /// Unexpected server-side failure.
    Internal,
    /// The server is at its hard connection limit — retry after the
    /// body's `retry_after_s` (also sent as a `Retry-After` header).
    TooManyConnections,
    /// The client did not deliver a complete request within the
    /// connection's read deadline (slow-loris defence).
    RequestTimeout,
    /// A model swap is already loading or verifying — retry after the
    /// body's `retry_after_s`.
    SwapInProgress,
    /// An explanation-store shard did not answer and replication could
    /// not cover for it — retry after the body's `retry_after_s`.
    ShardUnavailable,
}

impl ErrorCode {
    /// The HTTP status code this error category maps to.
    pub fn status(self) -> u16 {
        match self {
            ErrorCode::BadRequest => 400,
            ErrorCode::NotFound => 404,
            ErrorCode::MethodNotAllowed => 405,
            ErrorCode::PayloadTooLarge => 413,
            ErrorCode::QueueFull | ErrorCode::ShuttingDown | ErrorCode::ShardUnavailable => 503,
            ErrorCode::DeadlineExceeded => 504,
            ErrorCode::Internal => 500,
            ErrorCode::TooManyConnections => 429,
            ErrorCode::RequestTimeout => 408,
            ErrorCode::SwapInProgress => 409,
        }
    }
}

/// A typed API failure, serialised as the error response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApiError {
    /// Failure category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// When set, the client should wait this many seconds before
    /// retrying; the server mirrors it as a `Retry-After` header. Sent
    /// with `TooManyConnections` and `RequestTimeout`, `null` otherwise.
    pub retry_after_s: Option<u64>,
}

impl ApiError {
    /// A new error with the given category and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self { code, message: message.into(), retry_after_s: None }
    }

    /// Attaches a typed retry hint (mirrored as `Retry-After`).
    pub fn with_retry_after(mut self, seconds: u64) -> Self {
        self.retry_after_s = Some(seconds);
        self
    }

    /// A `BadRequest` error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::BadRequest, message)
    }

    /// An `Internal` error (HTTP 500) — unexpected server-side failure,
    /// e.g. a prediction worker panicking past its retry budget.
    pub fn internal(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Internal, message)
    }

    /// A `TooManyConnections` error (HTTP 429) with its retry hint.
    pub fn too_many_connections(message: impl Into<String>, retry_after_s: u64) -> Self {
        Self::new(ErrorCode::TooManyConnections, message).with_retry_after(retry_after_s)
    }

    /// A `RequestTimeout` error (HTTP 408) with its retry hint.
    pub fn request_timeout(message: impl Into<String>, retry_after_s: u64) -> Self {
        Self::new(ErrorCode::RequestTimeout, message).with_retry_after(retry_after_s)
    }

    /// A `SwapInProgress` error (HTTP 409) with its retry hint.
    pub fn swap_in_progress(message: impl Into<String>, retry_after_s: u64) -> Self {
        Self::new(ErrorCode::SwapInProgress, message).with_retry_after(retry_after_s)
    }

    /// A `ShardUnavailable` error (HTTP 503) with its retry hint.
    pub fn shard_unavailable(message: impl Into<String>, retry_after_s: u64) -> Self {
        Self::new(ErrorCode::ShardUnavailable, message).with_retry_after(retry_after_s)
    }

    /// The HTTP status of this error.
    pub fn status(&self) -> u16 {
        self.code.status()
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_json() {
        let req = InterpretTableRequest {
            title: "1990 nba draft".into(),
            columns: vec![
                ColumnData { header: "player".into(), cells: vec!["Les Jepsen".into()] },
                ColumnData { header: "round".into(), cells: vec!["1".into(), "2".into()] },
            ],
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: InterpretTableRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.column_request(1).header, "round");
        assert_eq!(back.column_request(1).title, "1990 nba draft");
    }

    #[test]
    fn response_round_trips_through_json() {
        let resp = PredictResponse {
            schema_version: SCHEMA_VERSION,
            label: "country".into(),
            label_id: 4,
            confidence: 0.87,
            local: vec![LocalExplanation {
                start: 3,
                window: 4,
                pair_start: None,
                text: "costa rica".into(),
                relevance: 0.61,
            }],
            global: vec![GlobalExplanation { sample: 12, influence: 0.5, label: 4 }],
            structural: vec![StructuralExplanation { node: 7, attention: 0.9, label: 4 }],
        };
        let json = serde_json::to_string(&InterpretTableResponse {
            schema_version: SCHEMA_VERSION,
            title: "t".into(),
            columns: vec![ColumnPrediction { header: "h".into(), prediction: resp }],
        })
        .unwrap();
        let back: InterpretTableResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.columns.len(), 1);
        assert_eq!(back.columns[0].prediction.label, "country");
        assert_eq!(back.columns[0].prediction.label_id, 4);
        assert_eq!(back.columns[0].prediction.local[0].text, "costa rica");
    }

    /// Pins the exact response bytes: the pre-versioned (PR 2) wire
    /// format — alphabetically ordered keys, core field names — plus the
    /// single added `schema_version` key. Every float is exactly
    /// representable so formatting is platform-independent. If this test
    /// breaks, the wire format changed and `SCHEMA_VERSION` must bump.
    #[test]
    fn golden_json_matches_frozen_wire_format() {
        let resp = PredictResponse {
            schema_version: SCHEMA_VERSION,
            label: "country".into(),
            label_id: 4,
            confidence: 0.5,
            local: vec![
                LocalExplanation {
                    start: 3,
                    window: 4,
                    pair_start: None,
                    text: "costa rica".into(),
                    relevance: 0.25,
                },
                LocalExplanation {
                    start: 9,
                    window: 2,
                    pair_start: Some(1),
                    text: "norway".into(),
                    relevance: 0.125,
                },
            ],
            global: vec![GlobalExplanation { sample: 12, influence: 0.75, label: 4 }],
            structural: vec![StructuralExplanation { node: 7, attention: 0.5, label: 4 }],
        };
        let golden = concat!(
            "{",
            "\"confidence\":0.5,",
            "\"global\":[{\"influence\":0.75,\"label\":4,\"sample\":12}],",
            "\"label\":\"country\",",
            "\"label_id\":4,",
            "\"local\":[",
            "{\"pair_start\":null,\"relevance\":0.25,\"start\":3,\"text\":\"costa rica\",\"window\":4},",
            "{\"pair_start\":1,\"relevance\":0.125,\"start\":9,\"text\":\"norway\",\"window\":2}",
            "],",
            "\"schema_version\":4,",
            "\"structural\":[{\"attention\":0.5,\"label\":4,\"node\":7}]",
            "}",
        );
        assert_eq!(serde_json::to_string(&resp).unwrap(), golden);
    }

    /// Pins the v3 admin DTO bytes: swap and store-status payloads are
    /// part of the frozen wire surface from the moment they ship.
    #[test]
    fn golden_json_freezes_v3_admin_dtos() {
        let swap = SwapResponse {
            schema_version: SCHEMA_VERSION,
            generation: 2,
            previous_generation: 1,
            verified: true,
        };
        assert_eq!(
            serde_json::to_string(&swap).unwrap(),
            concat!(
                "{\"generation\":2,",
                "\"previous_generation\":1,",
                "\"schema_version\":4,",
                "\"verified\":true}",
            ),
        );
        let status = StoreStatusResponse {
            schema_version: SCHEMA_VERSION,
            generation: 2,
            shards: vec![
                ShardStatus { shard: 0, stored: 40, tombstones: 3 },
                ShardStatus { shard: 1, stored: 41, tombstones: 0 },
            ],
            stored: 81,
            tombstones: 3,
            swap_in_progress: false,
        };
        assert_eq!(
            serde_json::to_string(&status).unwrap(),
            concat!(
                "{\"generation\":2,",
                "\"schema_version\":4,",
                "\"shards\":[",
                "{\"shard\":0,\"stored\":40,\"tombstones\":3},",
                "{\"shard\":1,\"stored\":41,\"tombstones\":0}",
                "],",
                "\"stored\":81,",
                "\"swap_in_progress\":false,",
                "\"tombstones\":3}",
            ),
        );
        let req: SwapRequest = serde_json::from_str("{\"model_dir\":\"/models/next\"}").unwrap();
        assert_eq!(req.model_dir, "/models/next");
    }

    /// Freezes the v3 error bodies for the two new admin codes, retry
    /// hints included.
    #[test]
    fn golden_json_freezes_v3_error_bodies() {
        let swap = ApiError::swap_in_progress("swap already loading", 2);
        assert_eq!(
            serde_json::to_string(&swap).unwrap(),
            concat!(
                "{\"code\":\"SwapInProgress\",",
                "\"message\":\"swap already loading\",",
                "\"retry_after_s\":2}",
            ),
        );
        assert_eq!(swap.status(), 409);
        let shard = ApiError::shard_unavailable("shard 2 unavailable", 1);
        assert_eq!(
            serde_json::to_string(&shard).unwrap(),
            concat!(
                "{\"code\":\"ShardUnavailable\",",
                "\"message\":\"shard 2 unavailable\",",
                "\"retry_after_s\":1}",
            ),
        );
        assert_eq!(shard.status(), 503);
    }

    /// Freezes the v2 error bodies: every error carries `retry_after_s`
    /// (`null` unless the server attached a retry hint), and the two
    /// connection-layer codes serialise with their hints. If these
    /// bytes change, the wire format changed and `SCHEMA_VERSION` must
    /// bump again.
    #[test]
    fn golden_json_freezes_v2_error_bodies() {
        let tmc = ApiError::too_many_connections("connection limit (2) reached", 1);
        assert_eq!(
            serde_json::to_string(&tmc).unwrap(),
            concat!(
                "{\"code\":\"TooManyConnections\",",
                "\"message\":\"connection limit (2) reached\",",
                "\"retry_after_s\":1}",
            ),
        );
        assert_eq!(tmc.status(), 429);
        let rt = ApiError::request_timeout("request not received within 10000 ms", 1);
        assert_eq!(
            serde_json::to_string(&rt).unwrap(),
            concat!(
                "{\"code\":\"RequestTimeout\",",
                "\"message\":\"request not received within 10000 ms\",",
                "\"retry_after_s\":1}",
            ),
        );
        assert_eq!(rt.status(), 408);
        // Errors without a hint carry an explicit null, so the body
        // shape is uniform across every ErrorCode.
        assert_eq!(
            serde_json::to_string(&ApiError::bad_request("nope")).unwrap(),
            "{\"code\":\"BadRequest\",\"message\":\"nope\",\"retry_after_s\":null}",
        );
    }

    /// The wire DTOs must serialise byte-identically to the core types
    /// they replaced (minus the response-level `schema_version`), so PR 2
    /// clients keep parsing unchanged.
    #[test]
    fn wire_dtos_serialize_identically_to_core_types() {
        let core_span = LocalSpan {
            start: 3,
            window: 4,
            pair_start: Some(7),
            text: "costa rica".into(),
            relevance: 0.25,
        };
        assert_eq!(
            serde_json::to_string(&LocalExplanation::from(&core_span)).unwrap(),
            serde_json::to_string(&core_span).unwrap(),
        );
        let core_global = GlobalInfluence { sample: 12, influence: 0.75, label: 4 };
        assert_eq!(
            serde_json::to_string(&GlobalExplanation::from(&core_global)).unwrap(),
            serde_json::to_string(&core_global).unwrap(),
        );
        let core_structural = StructuralNeighbor { node: 7, attention: 0.5, label: 4 };
        assert_eq!(
            serde_json::to_string(&StructuralExplanation::from(&core_structural)).unwrap(),
            serde_json::to_string(&core_structural).unwrap(),
        );
    }

    #[test]
    fn config_response_round_trips() {
        let cfg = ConfigResponse {
            schema_version: SCHEMA_VERSION,
            workers: 4,
            threads: 8,
            queue_cap: 64,
            max_batch: 8,
            cache_cap: 1024,
            deadline_ms: 5000,
            top_k: 3,
            max_conns: 1024,
            dispatchers: 8,
            read_timeout_ms: 10_000,
            idle_timeout_ms: 60_000,
            shards: 4,
            replicas: 2,
            swap_verify: true,
            quantized: true,
            model: ModelInfo {
                d_model: 32,
                layers: 2,
                max_seq: 64,
                vocab_size: 5000,
                num_labels: 11,
                num_weights: 123456,
                generation: 1,
            },
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ConfigResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
        assert!(json.contains("\"threads\":8"));
        assert!(json.contains("\"max_conns\":1024"));
        assert!(json.contains("\"shards\":4"));
        assert!(json.contains("\"replicas\":2"));
        assert!(json.contains("\"swap_verify\":true"));
        assert!(json.contains("\"quantized\":true"));
        assert!(json.contains("\"generation\":1"));
        assert!(json.contains("\"schema_version\":4"));
    }

    #[test]
    fn from_prediction_truncates_to_top_k() {
        let span = |start: usize, relevance: f32| LocalSpan {
            start,
            window: 2,
            pair_start: None,
            text: String::new(),
            relevance,
        };
        let p = Prediction {
            label: 1,
            confidence: 0.8,
            probs: vec![0.2, 0.8],
            explanation: explainti_core::Explanation {
                // Windows at 0, 10, 20, 30 are non-overlapping.
                local: vec![span(0, 0.4), span(10, 0.3), span(20, 0.2), span(30, 0.1)],
                global: (0..5)
                    .map(|i| GlobalInfluence { sample: i, influence: 0.2, label: 0 })
                    .collect(),
                structural: vec![],
            },
        };
        let labels = vec!["city".to_string(), "country".to_string()];
        let resp = PredictResponse::from_prediction(&p, &labels, 2);
        assert_eq!(resp.label, "country");
        assert_eq!(resp.local.len(), 2);
        assert_eq!(resp.global.len(), 2);
        assert!(resp.structural.is_empty());
    }

    #[test]
    fn error_codes_map_to_http_statuses() {
        assert_eq!(ApiError::bad_request("nope").status(), 400);
        assert_eq!(ApiError::new(ErrorCode::QueueFull, "busy").status(), 503);
        assert_eq!(ApiError::new(ErrorCode::DeadlineExceeded, "late").status(), 504);
        assert_eq!(ApiError::new(ErrorCode::TooManyConnections, "full").status(), 429);
        assert_eq!(ApiError::new(ErrorCode::RequestTimeout, "slow").status(), 408);
        assert_eq!(ApiError::bad_request("nope").retry_after_s, None);
        assert_eq!(ApiError::too_many_connections("full", 2).retry_after_s, Some(2));
        let json = serde_json::to_string(&ApiError::new(ErrorCode::QueueFull, "busy")).unwrap();
        let back: ApiError = serde_json::from_str(&json).unwrap();
        assert_eq!(back.code, ErrorCode::QueueFull);
    }
}
