//! # explainti-sync
//!
//! The workspace's ordered shadow-lock layer: every long-lived mutex or
//! rwlock in the serving stack is wrapped in an [`OrderedMutex`] /
//! [`OrderedRwLock`] tagged with a [`LockClass`] whose **rank** comes
//! from the committed `LOCKS.registry` next to this crate. Two things
//! fall out of that single registration:
//!
//! 1. **Static**: the analyzer's EA007 pass maps every acquisition site
//!    to its class and proves (over an intra-crate call graph) that
//!    classes are only ever acquired in strictly increasing rank order —
//!    a global partial order that makes deadlock by lock-order inversion
//!    impossible.
//! 2. **Dynamic**: when the verifier is armed (debug builds, or
//!    `EXPLAINTI_SHADOW_LOCKS=1` in release), each thread keeps a
//!    shadow stack of held classes and **panics at the acquisition
//!    site** of any rank inversion, naming both classes and both
//!    acquisition locations (`#[track_caller]`). The static pass cannot
//!    see across crate boundaries; the armed verifier can, so the two
//!    cover each other's blind spots.
//!
//! The guards are also **poison-recovering** (`lock().unwrap_or_else(|p|
//! p.into_inner())` internally): every critical section in this
//! workspace leaves its data consistent under panic by construction
//! (plain field updates), and the serving path must not panic on a
//! poisoned mutex (EA006). This replaces the idiom previously copy-pasted
//! across serve/conn, serve/queue, the event-loop waker, and the obs
//! crate, giving EA007 one canonical acquisition-site shape to match.
//!
//! Cost model: disarmed (release default), each acquisition adds one
//! relaxed atomic load over a bare `std::sync` lock. Armed, it adds a
//! thread-local vector push/pop and an O(held) rank scan — held stacks
//! are 1–2 deep in practice.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::panic::Location;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

// ---- Lock classes -----------------------------------------------------

/// A named lock class with a declared rank. Acquiring class B while
/// holding class A requires `rank(A) < rank(B)`; the total acquisition
/// order is therefore acyclic and deadlock by inversion is impossible.
///
/// Classes are declared as statics in [`classes`] and mirrored row-for-row
/// by `crates/sync/LOCKS.registry`, which the analyzer (EA007) and a unit
/// test here both reconcile against.
#[derive(Debug)]
pub struct LockClass {
    /// Dotted registry name, e.g. `serve.queue.batch`.
    pub name: &'static str,
    /// Position in the global acquisition order (strictly increasing).
    pub rank: u16,
}

impl LockClass {
    /// A class with the given registry name and rank.
    pub const fn new(name: &'static str, rank: u16) -> Self {
        Self { name, rank }
    }
}

/// Every lock class in the workspace, ranks mirroring `LOCKS.registry`.
///
/// Rank bands: serve front-end 10–40, core 45, pool 50–58, bench 70–74,
/// faults 80, obs 90–95 (obs is innermost: it is called from inside
/// nearly every other critical section, never the reverse).
pub mod classes {
    use super::LockClass;

    /// Event-loop dirty set, written by dispatcher-side wakers.
    pub static SERVE_WAKER_DIRTY: LockClass = LockClass::new("serve.waker.dirty", 10);
    /// Per-connection outbound byte queue (`ConnIo`).
    pub static SERVE_CONN_OUT: LockClass = LockClass::new("serve.conn.out", 20);
    /// Bounded micro-batch queues (prediction + dispatch).
    pub static SERVE_QUEUE_BATCH: LockClass = LockClass::new("serve.queue.batch", 30);
    /// Server-wide LRU response cache.
    pub static SERVE_CACHE: LockClass = LockClass::new("serve.cache", 40);
    /// Live model generation pointer (hot-swap `RwLock`).
    pub static CORE_GENERATION: LockClass = LockClass::new("core.generation", 45);
    /// Thread-pool job queue state.
    pub static POOL_STATE: LockClass = LockClass::new("pool.state", 50);
    /// First captured panic payload of a pool job.
    pub static POOL_JOB_PANIC: LockClass = LockClass::new("pool.job.panic", 52);
    /// Pool job completion flag (condvar-paired).
    pub static POOL_JOB_DONE: LockClass = LockClass::new("pool.job.done", 54);
    /// Per-task result slot of `ThreadPool::map`.
    pub static POOL_MAP_SLOT: LockClass = LockClass::new("pool.map.slot", 56);
    /// Process-global pool handle (`configure` swaps it).
    pub static POOL_GLOBAL: LockClass = LockClass::new("pool.global", 58);
    /// Load-generator latency samples.
    pub static BENCH_LOADGEN_LATENCIES: LockClass = LockClass::new("bench.loadgen.latencies", 70);
    /// Load-generator captured error traces.
    pub static BENCH_LOADGEN_ERRORS: LockClass = LockClass::new("bench.loadgen.errors", 71);
    /// Load-generator queue-depth curve samples (one lock, reached
    /// both as the owning binding and as the sampler's `out` parameter).
    pub static BENCH_LOADGEN_QUEUE_CURVE: LockClass =
        LockClass::new("bench.loadgen.queue_curve", 73);
    /// Swap-drill per-generation tallies.
    pub static BENCH_SWAP_TALLIES: LockClass = LockClass::new("bench.swap.tallies", 74);
    /// Failpoint site registry (observer runs under it).
    pub static FAULTS_REGISTRY: LockClass = LockClass::new("faults.registry", 80);
    /// Span-capture stage sums (fed from `SpanGuard::drop`).
    pub static OBS_TRACE_SUMS: LockClass = LockClass::new("obs.trace.sums", 90);
    /// Sliding SLO window slot ring.
    pub static OBS_SLO_WINDOW: LockClass = LockClass::new("obs.slo.window", 91);
    /// Metrics registry: counter map.
    pub static OBS_COUNTERS: LockClass = LockClass::new("obs.counters", 92);
    /// Metrics registry: gauge map.
    pub static OBS_GAUGES: LockClass = LockClass::new("obs.gauges", 93);
    /// Metrics registry: histogram map.
    pub static OBS_HISTOGRAMS: LockClass = LockClass::new("obs.histograms", 94);
    /// JSONL trace sink writer.
    pub static OBS_SINK: LockClass = LockClass::new("obs.sink", 95);
}

// ---- Verifier arming --------------------------------------------------

/// 0 = undecided, 1 = disarmed, 2 = armed.
static ARMED: AtomicU8 = AtomicU8::new(0);

/// Whether the runtime shadow-lock verifier is active. Defaults to on in
/// debug builds, off in release; `EXPLAINTI_SHADOW_LOCKS=1|0` overrides
/// either way (the tsan CI arm sets it on release test binaries).
#[inline]
pub fn armed() -> bool {
    // ORDERING: Relaxed — a boolean mode flag with no associated data;
    // threads may briefly disagree right after init, which only delays
    // (never corrupts) verification.
    match ARMED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => init_armed(),
    }
}

#[cold]
fn init_armed() -> bool {
    let on = match std::env::var("EXPLAINTI_SHADOW_LOCKS").as_deref() {
        Ok("1") | Ok("true") | Ok("on") => true,
        Ok("0") | Ok("false") | Ok("off") => false,
        _ => cfg!(debug_assertions),
    };
    // ORDERING: Relaxed — see `armed`; the flag guards no other memory.
    ARMED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Forces the verifier on or off, overriding env and build profile.
/// Tests use this so inversion assertions hold under `--release`.
pub fn force_arm(on: bool) {
    // ORDERING: Relaxed — see `armed`.
    ARMED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

// ---- Shadow stack -----------------------------------------------------

struct Held {
    class: &'static LockClass,
    at: &'static Location<'static>,
}

thread_local! {
    /// Lock classes this thread currently holds, in acquisition order.
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
}

/// Records an acquisition on the shadow stack, panicking on any rank
/// inversion. Returns whether an entry was pushed (so the guard knows
/// whether to pop — arming may flip mid-process in tests).
#[track_caller]
fn note_acquire(class: &'static LockClass) -> bool {
    if !armed() {
        return false;
    }
    let here = Location::caller();
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(worst) = held.iter().rev().find(|h| h.class.rank >= class.rank) {
            let kind = if std::ptr::eq(worst.class, class) {
                "reentrant acquisition of lock class"
            } else {
                "lock-order inversion: acquiring lock class"
            };
            panic!(
                "{kind} `{}` (rank {}) at {}:{}:{} while holding `{}` (rank {}) acquired at \
                 {}:{}:{} — LOCKS.registry requires strictly increasing ranks",
                class.name,
                class.rank,
                here.file(),
                here.line(),
                here.column(),
                worst.class.name,
                worst.class.rank,
                worst.at.file(),
                worst.at.line(),
                worst.at.column(),
            );
        }
        held.push(Held { class, at: here });
        true
    })
}

/// Pops the most recent shadow entry for `class` (guards may release out
/// of acquisition order; a missing entry — arming flipped — is ignored).
fn note_release(class: &'static LockClass) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|h| std::ptr::eq(h.class, class)) {
            held.remove(pos);
        }
    });
}

/// How many lock classes the current thread's shadow stack holds
/// (diagnostics and tests).
pub fn held_depth() -> usize {
    HELD.with(|held| held.borrow().len())
}

// ---- OrderedMutex -----------------------------------------------------

/// A [`Mutex`] tagged with a [`LockClass`]: acquisition order is checked
/// against the shadow stack when armed, and the guard recovers from
/// poisoning instead of panicking.
pub struct OrderedMutex<T> {
    class: &'static LockClass,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// A mutex of the given class around `value`.
    pub const fn new(class: &'static LockClass, value: T) -> Self {
        Self { class, inner: Mutex::new(value) }
    }

    /// This lock's class.
    pub fn class(&self) -> &'static LockClass {
        self.class
    }

    /// Acquires the lock, recovering from poison. Panics (when armed) if
    /// the calling thread already holds a class of equal or higher rank.
    #[track_caller]
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        let tracked = note_acquire(self.class);
        let guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        OrderedMutexGuard { guard: Some(guard), class: self.class, tracked }
    }

    /// Consumes the mutex, returning its value (poison-recovering).
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

/// Guard for [`OrderedMutex::lock`]; pops its shadow entry on drop.
pub struct OrderedMutexGuard<'a, T> {
    /// `None` only transiently inside [`Self::wait`] / [`Self::wait_timeout`].
    guard: Option<MutexGuard<'a, T>>,
    class: &'static LockClass,
    tracked: bool,
}

impl<'a, T> OrderedMutexGuard<'a, T> {
    /// Blocks on `cv` (releasing the mutex) until notified, then
    /// reacquires and returns the guard. The shadow entry persists
    /// across the wait: the class is conceptually still held by this
    /// thread's critical section, and the thread is blocked anyway.
    pub fn wait(mut self, cv: &Condvar) -> Self {
        let inner = self.guard.take().expect("guard present outside wait");
        let inner = cv.wait(inner).unwrap_or_else(|p| p.into_inner());
        self.guard = Some(inner);
        self
    }

    /// Like [`Self::wait`] with a timeout; the flag reports expiry.
    pub fn wait_timeout(mut self, cv: &Condvar, dur: Duration) -> (Self, bool) {
        let inner = self.guard.take().expect("guard present outside wait");
        let (inner, res) = cv.wait_timeout(inner, dur).unwrap_or_else(|p| p.into_inner());
        self.guard = Some(inner);
        (self, res.timed_out())
    }
}

impl<T> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

impl<T> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.tracked {
            note_release(self.class);
        }
    }
}

// ---- OrderedRwLock ----------------------------------------------------

/// An [`RwLock`] tagged with a [`LockClass`]; read and write acquisitions
/// both participate in the rank order (read-read reentrancy within one
/// thread is flagged too — it deadlocks once a writer queues between).
pub struct OrderedRwLock<T> {
    class: &'static LockClass,
    inner: RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// An rwlock of the given class around `value`.
    pub const fn new(class: &'static LockClass, value: T) -> Self {
        Self { class, inner: RwLock::new(value) }
    }

    /// This lock's class.
    pub fn class(&self) -> &'static LockClass {
        self.class
    }

    /// Acquires a shared read guard (poison-recovering, rank-checked).
    #[track_caller]
    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        let tracked = note_acquire(self.class);
        let guard = self.inner.read().unwrap_or_else(|p| p.into_inner());
        OrderedReadGuard { guard, class: self.class, tracked }
    }

    /// Acquires the exclusive write guard (poison-recovering, rank-checked).
    #[track_caller]
    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        let tracked = note_acquire(self.class);
        let guard = self.inner.write().unwrap_or_else(|p| p.into_inner());
        OrderedWriteGuard { guard, class: self.class, tracked }
    }
}

/// Shared guard for [`OrderedRwLock::read`].
pub struct OrderedReadGuard<'a, T> {
    guard: RwLockReadGuard<'a, T>,
    class: &'static LockClass,
    tracked: bool,
}

impl<T> std::ops::Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> Drop for OrderedReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.tracked {
            note_release(self.class);
        }
    }
}

/// Exclusive guard for [`OrderedRwLock::write`].
pub struct OrderedWriteGuard<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    class: &'static LockClass,
    tracked: bool,
}

impl<T> std::ops::Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for OrderedWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.tracked {
            note_release(self.class);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    static LOW: LockClass = LockClass::new("test.low", 1);
    static HIGH: LockClass = LockClass::new("test.high", 2);

    /// Runs `f` on a fresh thread with the verifier force-armed, so the
    /// spawning test's shadow stack and arming state are untouched.
    fn armed_thread<R: Send + 'static>(f: impl FnOnce() -> R + Send + 'static) -> R {
        std::thread::spawn(move || {
            force_arm(true);
            f()
        })
        .join()
        .expect("armed thread")
    }

    #[test]
    fn increasing_rank_order_is_allowed() {
        armed_thread(|| {
            let a = OrderedMutex::new(&LOW, 1);
            let b = OrderedMutex::new(&HIGH, 2);
            let ga = a.lock();
            let gb = b.lock();
            assert_eq!(*ga + *gb, 3);
            assert_eq!(held_depth(), 2);
            drop(gb);
            drop(ga);
            assert_eq!(held_depth(), 0);
        });
    }

    #[test]
    fn inversion_panics_naming_both_sites() {
        let msg = armed_thread(|| {
            let a = OrderedMutex::new(&LOW, ());
            let b = OrderedMutex::new(&HIGH, ());
            let _gb = b.lock();
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _ga = a.lock();
            }))
            .expect_err("inversion must panic");
            *err.downcast::<String>().expect("string payload")
        });
        assert!(msg.contains("lock-order inversion"), "{msg}");
        assert!(msg.contains("test.low") && msg.contains("test.high"), "{msg}");
        // Both acquisition sites are named (this file, twice).
        assert_eq!(msg.matches("lib.rs").count(), 2, "{msg}");
    }

    #[test]
    fn reentrant_same_class_panics() {
        let msg = armed_thread(|| {
            let a = OrderedMutex::new(&LOW, ());
            let other = OrderedMutex::new(&LOW, ());
            let _ga = a.lock();
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _gb = other.lock();
            }))
            .expect_err("same-class nesting must panic");
            *err.downcast::<String>().expect("string payload")
        });
        assert!(msg.contains("reentrant acquisition"), "{msg}");
    }

    #[test]
    fn rwlock_participates_in_the_order() {
        armed_thread(|| {
            let rw = OrderedRwLock::new(&LOW, 7);
            assert_eq!(*rw.read(), 7);
            *rw.write() = 8;
            assert_eq!(*rw.read(), 8);
            let hi = OrderedMutex::new(&HIGH, ());
            let _r = rw.read();
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _g = hi.lock();
                let _again = rw.read(); // rank 1 under rank 2 → inversion
            }));
            assert!(err.is_err());
        });
    }

    #[test]
    fn poisoned_lock_recovers() {
        let val = armed_thread(|| {
            let m = std::sync::Arc::new(OrderedMutex::new(&LOW, 5));
            let m2 = std::sync::Arc::clone(&m);
            let _ = std::thread::spawn(move || {
                force_arm(true);
                let _g = m2.lock();
                panic!("poison the mutex");
            })
            .join();
            let val = *m.lock();
            val
        });
        assert_eq!(val, 5);
    }

    #[test]
    fn condvar_wait_keeps_the_class_held() {
        armed_thread(|| {
            let m = std::sync::Arc::new(OrderedMutex::new(&LOW, false));
            let cv = std::sync::Arc::new(Condvar::new());
            let (m2, cv2) = (std::sync::Arc::clone(&m), std::sync::Arc::clone(&cv));
            let t = std::thread::spawn(move || {
                force_arm(true);
                let mut g = m2.lock();
                while !*g {
                    g = g.wait(&cv2);
                }
                assert_eq!(held_depth(), 1);
            });
            loop {
                let mut g = m.lock();
                *g = true;
                drop(g);
                cv.notify_all();
                if t.is_finished() {
                    break;
                }
                std::thread::yield_now();
            }
            t.join().expect("waiter");
            // Timed wait round-trips too.
            let g = m.lock();
            let (g, timed_out) = g.wait_timeout(&cv, Duration::from_millis(1));
            assert!(timed_out);
            assert!(*g);
        });
    }

    #[test]
    fn disarmed_skips_tracking() {
        std::thread::spawn(|| {
            force_arm(false);
            let a = OrderedMutex::new(&HIGH, ());
            let b = OrderedMutex::new(&LOW, ());
            let _ga = a.lock();
            let _gb = b.lock(); // inversion, but the verifier is off
            assert_eq!(held_depth(), 0);
        })
        .join()
        .expect("disarmed thread");
    }

    /// Every class declared in [`classes`] must appear in LOCKS.registry
    /// with the same rank, and vice versa — the runtime layer and the
    /// analyzer reason about the same order.
    #[test]
    fn classes_mirror_locks_registry() {
        let all: &[&LockClass] = &[
            &classes::SERVE_WAKER_DIRTY,
            &classes::SERVE_CONN_OUT,
            &classes::SERVE_QUEUE_BATCH,
            &classes::SERVE_CACHE,
            &classes::CORE_GENERATION,
            &classes::POOL_STATE,
            &classes::POOL_JOB_PANIC,
            &classes::POOL_JOB_DONE,
            &classes::POOL_MAP_SLOT,
            &classes::POOL_GLOBAL,
            &classes::BENCH_LOADGEN_LATENCIES,
            &classes::BENCH_LOADGEN_ERRORS,
            &classes::BENCH_LOADGEN_QUEUE_CURVE,
            &classes::BENCH_SWAP_TALLIES,
            &classes::FAULTS_REGISTRY,
            &classes::OBS_TRACE_SUMS,
            &classes::OBS_SLO_WINDOW,
            &classes::OBS_COUNTERS,
            &classes::OBS_GAUGES,
            &classes::OBS_HISTOGRAMS,
            &classes::OBS_SINK,
        ];
        let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/LOCKS.registry"))
            .expect("LOCKS.registry next to crates/sync");
        let mut registry: std::collections::BTreeMap<&str, u16> = std::collections::BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut cols = line.split_whitespace();
            let name = cols.next().expect("class column");
            let rank: u16 = cols.next().expect("rank column").parse().expect("numeric rank");
            if let Some(prev) = registry.insert(name, rank) {
                assert_eq!(prev, rank, "class {name} declared with two ranks");
            }
        }
        for class in all {
            assert_eq!(
                registry.get(class.name).copied(),
                Some(class.rank),
                "class {} missing from LOCKS.registry or rank differs",
                class.name
            );
        }
        assert_eq!(registry.len(), all.len(), "LOCKS.registry declares classes with no static");
        // Ranks are unique, so "strictly increasing" is a total order.
        let mut ranks: Vec<u16> = all.iter().map(|c| c.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        assert_eq!(ranks.len(), all.len(), "duplicate ranks in classes");
    }
}
