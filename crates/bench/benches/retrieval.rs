//! Criterion bench: GE retrieval — HNSW vs brute-force top-K search over
//! the embedding store (the component Table V attributes GE's cost to,
//! and the HNSW-vs-exact ablation of DESIGN.md §5).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use explainti_ann::{BruteForceIndex, HnswConfig, HnswIndex, Metric, VectorIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
}

fn bench_retrieval(c: &mut Criterion) {
    let dim = 32;
    let n = 2000;
    let vectors = random_vectors(n, dim, 1);
    let queries = random_vectors(64, dim, 2);

    let mut hnsw = HnswIndex::new(Metric::Cosine, HnswConfig::default());
    let mut exact = BruteForceIndex::new(Metric::Cosine);
    for (i, v) in vectors.iter().enumerate() {
        hnsw.add(i, v);
        exact.add(i, v);
    }

    let mut group = c.benchmark_group("ge_retrieval");
    group.sample_size(20);
    group.bench_function("hnsw_top10", |b| {
        let mut qi = 0;
        b.iter(|| {
            let q = &queries[qi % queries.len()];
            qi += 1;
            black_box(hnsw.search(q, 10))
        })
    });
    group.bench_function("brute_force_top10", |b| {
        let mut qi = 0;
        b.iter(|| {
            let q = &queries[qi % queries.len()];
            qi += 1;
            black_box(exact.search(q, 10))
        })
    });
    group.bench_function("hnsw_build_500", |b| {
        let small = random_vectors(500, dim, 3);
        b.iter_batched(
            || small.clone(),
            |vs| {
                let mut idx = HnswIndex::new(Metric::Cosine, HnswConfig::default());
                for (i, v) in vs.iter().enumerate() {
                    idx.add(i, v);
                }
                black_box(idx.len())
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_retrieval);
criterion_main!(benches);
