//! Criterion bench: per-sample inference cost of each explainable module
//! (the test-time half of Table V) — Base, +LE, +GE, +SE and full
//! ExplainTI prediction on a small Wiki corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use explainti_core::{ExplainTi, ExplainTiConfig, TaskKind};
use explainti_corpus::{generate_wiki, WikiConfig};
use std::hint::black_box;

fn build(le: bool, ge: bool, se: bool) -> ExplainTi {
    let d = generate_wiki(&WikiConfig { num_tables: 80, seed: 91, ..Default::default() });
    let mut cfg = ExplainTiConfig::bert_like(2048, 32);
    cfg.use_le = le;
    cfg.use_ge = ge;
    cfg.use_se = se;
    let mut m = ExplainTi::new(&d, cfg);
    if ge || se {
        m.refresh_store(0);
    }
    m
}

fn bench_modules(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict_modules");
    group.sample_size(20);
    for (name, le, ge, se) in [
        ("base", false, false, false),
        ("base_le", true, false, false),
        ("base_ge", false, true, false),
        ("base_se", false, false, true),
        ("full", true, true, true),
    ] {
        let m = build(le, ge, se);
        let mut idx = 0usize;
        let n = m.tasks()[0].data.samples.len();
        group.bench_function(name, |b| {
            b.iter(|| {
                idx = (idx + 1) % n;
                black_box(m.predict(TaskKind::Type, idx).label)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modules);
criterion_main!(benches);
