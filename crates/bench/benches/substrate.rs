//! Criterion bench: substrate kernels — encoder forward pass, column
//! graph construction (Algorithm 3), neighbour sampling, tokenizer
//! encode, and the LE relevance kernel's building blocks (KL + softmax).

use criterion::{criterion_group, criterion_main, Criterion};
use explainti_corpus::{generate_wiki, WikiConfig};
use explainti_encoder::{EncoderConfig, TransformerEncoder};
use explainti_nn::{kl_divergence, softmax, Graph, ParamStore};
use explainti_table::ColumnGraph;
use explainti_tokenizer::{encode_column, Tokenizer};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_substrate(c: &mut Criterion) {
    let tok = Tokenizer::train(["costa rica kenya portugal norway country nation city stats"], 512);
    let enc = encode_column(
        &tok,
        "geography of europe",
        "country",
        &["costa rica", "kenya", "portugal", "norway"],
        32,
    );

    let mut rng = SmallRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let encoder = TransformerEncoder::new(
        &mut store,
        EncoderConfig::bert_like(tok.vocab_size(), 32),
        &mut rng,
    );

    let mut group = c.benchmark_group("substrate");
    group.sample_size(30);

    group.bench_function("encoder_forward", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let e = encoder.forward(&mut g, &store, &enc, false, &mut rng);
            black_box(g.value(e).get(0, 0))
        })
    });

    group.bench_function("encoder_forward_backward", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let e = encoder.forward(&mut g, &store, &enc, false, &mut rng);
            let cls = g.rows_range(e, 0, 1);
            let loss = g.cross_entropy(cls, &[0]);
            g.backward(loss);
            black_box(g.value(loss).get(0, 0))
        })
    });

    group.bench_function("tokenizer_encode", |b| {
        b.iter(|| {
            black_box(encode_column(
                &tok,
                "geography of europe",
                "country",
                &["costa rica", "kenya", "portugal", "norway"],
                32,
            ))
        })
    });

    let dataset = generate_wiki(&WikiConfig { num_tables: 300, seed: 17, ..Default::default() });
    group.bench_function("column_graph_build", |b| {
        b.iter(|| black_box(ColumnGraph::build_type(&dataset.collection).0.num_nodes()))
    });

    let (graph, _) = ColumnGraph::build_type(&dataset.collection);
    group.bench_function("neighbor_sampling_r16", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % graph.num_nodes();
            black_box(graph.sample_neighbors(i, 16, None, &mut rng).len())
        })
    });

    let p = softmax(&(0..24).map(|i| (i as f32) * 0.1).collect::<Vec<_>>());
    let q = softmax(&(0..24).map(|i| ((24 - i) as f32) * 0.1).collect::<Vec<_>>());
    group.bench_function("le_kl_kernel", |b| b.iter(|| black_box(kl_divergence(&p, &q))));

    group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
