//! # explainti-bench
//!
//! The reproduction harness: one binary per table/figure of the paper
//! (`table2`–`table5`, `fig3`, `fig5`, `fig6`, `fig7`, `online_sim`) plus
//! Criterion micro-benches for the efficiency-critical kernels.
//!
//! Every binary reads `EXPLAINTI_SCALE` (default 1.0) to grow or shrink
//! the corpora and training budget consistently; results print in the
//! paper's table layout and are also written as JSON under
//! `bench-results/`.

#![warn(missing_docs)]

use explainti_core::{build_tokenizer, ExplainTiConfig, TaskData};
use explainti_corpus::{generate_git, generate_wiki, scaled, Dataset, GitConfig, WikiConfig};
use explainti_encoder::mlm::{pretrain_mlm, PretrainConfig};
use explainti_encoder::{EncoderConfig, TransformerEncoder, Variant};
use explainti_nn::ParamStore;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Maximum sequence length used by every model in the harness.
pub const MAX_SEQ: usize = 32;
/// Tokenizer vocabulary cap.
pub const VOCAB_CAP: usize = 2048;

/// Reads the experiment scale from `EXPLAINTI_SCALE`.
pub fn scale() -> f64 {
    explainti_corpus::scale_from_env()
}

/// The Wiki-like benchmark at a given scale (≈900 tables at scale 1).
pub fn wiki_dataset(scale: f64) -> Dataset {
    generate_wiki(&WikiConfig {
        num_tables: scaled(900, scale),
        titles_per_topic: scaled(18, scale.sqrt()),
        ..Default::default()
    })
}

/// The Git-like benchmark at a given scale (≈320 tables at scale 1).
pub fn git_dataset(scale: f64) -> Dataset {
    generate_git(&GitConfig { num_tables: scaled(320, scale), ..Default::default() })
}

/// Paper-default ExplainTI configuration for a dataset at a scale.
pub fn explainti_config(variant: Variant, scale: f64) -> ExplainTiConfig {
    let mut cfg = match variant {
        Variant::BertLike => ExplainTiConfig::bert_like(VOCAB_CAP, MAX_SEQ),
        Variant::RobertaLike => ExplainTiConfig::roberta_like(VOCAB_CAP, MAX_SEQ),
    };
    cfg.epochs = scaled(8, scale.min(1.25)).max(2);
    cfg
}

/// Pre-trains one encoder checkpoint for a dataset/variant pair. The
/// checkpoint is shared by every transformer model of that variant in a
/// run — the analogue of all baselines starting from the same published
/// BERT/RoBERTa weights.
pub fn pretrained_checkpoint(dataset: &Dataset, variant: Variant) -> Vec<f32> {
    let tokenizer = build_tokenizer(dataset, VOCAB_CAP);
    let mut cfg = match variant {
        Variant::BertLike => EncoderConfig::bert_like(tokenizer.vocab_size(), MAX_SEQ),
        Variant::RobertaLike => EncoderConfig::roberta_like(tokenizer.vocab_size(), MAX_SEQ),
    };
    cfg.vocab_size = tokenizer.vocab_size();
    let mut rng = SmallRng::seed_from_u64(0x9e7a);
    let mut store = ParamStore::new();
    let encoder = TransformerEncoder::new(&mut store, cfg, &mut rng);

    let mut seqs = Vec::new();
    let type_data = TaskData::prepare_type(dataset, &tokenizer, MAX_SEQ, false);
    for &i in &type_data.train_idx {
        seqs.push(type_data.samples[i].encoded.clone());
    }
    if !dataset.collection.annotated_pairs().is_empty() {
        let rel_data = TaskData::prepare_relation(dataset, &tokenizer, MAX_SEQ, false);
        for &i in &rel_data.train_idx {
            seqs.push(rel_data.samples[i].encoded.clone());
        }
    }
    pretrain_mlm(&encoder, &mut store, &seqs, &PretrainConfig::default(), &mut rng);
    encoder.export_weights(&store)
}

/// Writes a JSON report next to the printed table.
pub fn write_json(name: &str, value: &serde_json::Value) {
    let dir = std::path::Path::new("bench-results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if let Ok(s) = serde_json::to_string_pretty(value) {
            let _ = std::fs::write(&path, s);
            eprintln!("[saved {path:?}]");
        }
    }
}

/// Formats an F1 triple as three table cells.
pub fn f1_cells(f1: explainti_metrics::F1Scores) -> [String; 3] {
    [format!("{:.3}", f1.micro), format!("{:.3}", f1.macro_), format!("{:.3}", f1.weighted)]
}

/// Dash cells for unsupported tasks.
pub fn dash_cells() -> [String; 3] {
    ["-".into(), "-".into(), "-".into()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_datasets_shrink() {
        let small = wiki_dataset(0.05);
        assert!(small.collection.tables.len() < 60);
        let git = git_dataset(0.05);
        assert!(git.collection.tables.len() < 30);
    }

    #[test]
    fn checkpoint_is_reusable_across_models() {
        let d = wiki_dataset(0.03);
        let ckpt = pretrained_checkpoint(&d, Variant::BertLike);
        assert!(!ckpt.is_empty());
        // Importing into an ExplainTI model must succeed (layout match).
        let mut m = explainti_core::ExplainTi::new(&d, explainti_config(Variant::BertLike, 0.03));
        m.load_encoder(&ckpt);
    }
}
