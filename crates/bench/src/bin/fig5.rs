//! Reproduces **Figure 5** — plausibility (adequate justification,
//! understandability) and trustability (mean 1–5 trust score) of the
//! explanations, judged by 50 simulated annotators on Wiki column-type
//! test samples (the paper uses 50 human judges on 960 WikiTable
//! samples; DESIGN.md §2 documents the simulated-judge substitution).
//!
//! Expected shape: ExplainTI > SelfExplain > Influence Functions ≈
//! Saliency Map on all three measures.

use explainti_baselines::{build_selfexplain, ContextStrategy, InfluenceExplainer, SeqClassifier};
use explainti_bench::{
    explainti_config, pretrained_checkpoint, scale, wiki_dataset, write_json, MAX_SEQ, VOCAB_CAP,
};
use explainti_core::{build_tokenizer, ExplainTi, TaskKind};
use explainti_corpus::{Dataset, Split};
use explainti_encoder::{EncoderConfig, Variant};
use explainti_metrics::report::TextTable;
use explainti_xeval::{judge, JudgeAggregate, JudgeContext, JudgedExplanation};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

const NUM_JUDGES: usize = 50;
const NOISE: f32 = 0.15;

fn context_for(dataset: &Dataset, sample_idx: usize, predicted: usize) -> JudgeContext {
    let (cref, gold) = dataset.collection.annotated_columns()[sample_idx];
    let col = dataset.collection.column(cref);
    JudgeContext::from_column(
        &dataset.collection.tables[cref.table].title,
        col,
        &dataset.col_provenance[sample_idx],
        predicted,
        gold,
    )
}

fn judge_all(
    dataset: &Dataset,
    items: &[(usize, usize, JudgedExplanation)],
    rng: &mut SmallRng,
) -> JudgeAggregate {
    let mut agg = JudgeAggregate::default();
    for &(sample_idx, predicted, ref expl) in items {
        let ctx = context_for(dataset, sample_idx, predicted);
        for _ in 0..NUM_JUDGES {
            agg.push(judge(&ctx, expl, NOISE, rng));
        }
    }
    agg
}

fn explainti_items(
    model: &mut ExplainTi,
    test_idx: &[usize],
) -> Vec<(usize, usize, JudgedExplanation)> {
    test_idx
        .iter()
        .map(|&idx| {
            let p = model.predict(TaskKind::Type, idx);
            let mut supporting = Vec::new();
            supporting.extend(p.explanation.top_global(1).iter().map(|g| g.label));
            supporting.extend(p.explanation.top_structural(1).iter().map(|s| s.label));
            let expl = JudgedExplanation {
                span_texts: p
                    .explanation
                    .top_local_diverse(3)
                    .into_iter()
                    .map(|s| s.text.clone())
                    .collect(),
                supporting_labels: supporting,
            };
            (idx, p.label, expl)
        })
        .collect()
}

fn main() {
    let s = scale();
    println!("Figure 5 — plausibility and trustability (simulated judges)  [scale {s}]");
    let wiki = wiki_dataset(s);
    let test_idx: Vec<usize> = {
        let cols = wiki.collection.annotated_columns();
        (0..cols.len())
            .filter(|&i| wiki.table_split[cols[i].0.table] == Split::Test)
            .take(48)
            .collect()
    };
    let mut rng = SmallRng::seed_from_u64(50);
    let mut results: BTreeMap<&str, JudgeAggregate> = BTreeMap::new();

    eprintln!("[fig5] ExplainTI");
    {
        let cfg = explainti_config(Variant::RobertaLike, s);
        let ckpt = pretrained_checkpoint(&wiki, Variant::RobertaLike);
        let mut m = ExplainTi::new(&wiki, cfg);
        m.load_encoder(&ckpt);
        m.train();
        let items = explainti_items(&mut m, &test_idx);
        results.insert("ExplainTI", judge_all(&wiki, &items, &mut rng));
    }

    eprintln!("[fig5] SelfExplain");
    {
        let cfg = explainti_config(Variant::RobertaLike, s);
        let mut m = build_selfexplain(&wiki, cfg);
        m.train();
        let items = explainti_items(&mut m, &test_idx);
        results.insert("SelfExplain", judge_all(&wiki, &items, &mut rng));
    }

    eprintln!("[fig5] post-hoc baselines");
    {
        let tok = build_tokenizer(&wiki, VOCAB_CAP);
        let cfg = EncoderConfig::roberta_like(tok.vocab_size(), MAX_SEQ);
        let mut base = SeqClassifier::new(&wiki, &tok, cfg, ContextStrategy::PerColumn, 3);
        base.train();

        let saliency_items: Vec<(usize, usize, JudgedExplanation)> = test_idx
            .iter()
            .map(|&idx| {
                let (enc, _, _) = base.samples(TaskKind::Type)[idx].clone();
                let sal = base.saliency(TaskKind::Type, idx);
                let words: Vec<String> = sal
                    .iter()
                    .filter(|t| enc.ids[t.position] >= 8)
                    .take(10)
                    .map(|t| base.tokenizer().token(enc.ids[t.position]).to_string())
                    .collect();
                let predicted = base.predict(TaskKind::Type, idx);
                (
                    idx,
                    predicted,
                    JudgedExplanation {
                        span_texts: vec![words.join(" ")],
                        supporting_labels: vec![],
                    },
                )
            })
            .collect();
        results.insert("Saliency Map", judge_all(&wiki, &saliency_items, &mut rng));

        let inf = InfluenceExplainer::new(&mut base, TaskKind::Type);
        let influence_items: Vec<(usize, usize, JudgedExplanation)> = test_idx
            .iter()
            .map(|&idx| {
                let top = inf.top_k(&mut base, idx, 3);
                let labels: Vec<usize> =
                    top.iter().map(|&(i, _)| base.samples(TaskKind::Type)[i].1).collect();
                let predicted = base.predict(TaskKind::Type, idx);
                (
                    idx,
                    predicted,
                    JudgedExplanation { span_texts: vec![], supporting_labels: labels },
                )
            })
            .collect();
        results.insert("Influence Functions", judge_all(&wiki, &influence_items, &mut rng));
    }

    let mut t = TextTable::new(["Method", "Adequacy %", "Understandability %", "Mean trust (1-5)"]);
    let mut json = BTreeMap::new();
    for method in ["Saliency Map", "Influence Functions", "SelfExplain", "ExplainTI"] {
        let a = &results[method];
        t.row([
            method.to_string(),
            format!("{:.1}", a.adequacy * 100.0),
            format!("{:.1}", a.understandability * 100.0),
            format!("{:.2}", a.mean_trust),
        ]);
        json.insert(
            method,
            serde_json::json!({
                "adequacy": a.adequacy,
                "understandability": a.understandability,
                "mean_trust": a.mean_trust,
                "judgements": a.n,
            }),
        );
    }
    println!("{}", t.render());
    write_json("fig5", &serde_json::to_value(json).unwrap());
}
