//! Reproduces **Table III** — table interpretation performance of every
//! baseline, ExplainTI on both encoder variants, and the four ablation
//! rows (`w/o LE`, `w/o GE`, `w/o SE`, `w PP`), across Wiki-type,
//! Wiki-relation, and Git-type with F1-micro/-macro/-weighted.
//!
//! Expected shape (paper): Sherlock/Sato ≪ transformer baselines ≤
//! ExplainTI; TCN collapses on GitTable; `w/o SE` is the costliest
//! ablation on WikiTable and near-neutral on GitTable.
//!
//! Set `EXPLAINTI_FAST=1` to skip the ablation and RoBERTa rows.

use explainti_baselines::{
    build_selfexplain, ContextStrategy, FeatureModel, SeqClassifier, SherlockModel,
};
use explainti_bench::{
    dash_cells, explainti_config, f1_cells, git_dataset, pretrained_checkpoint, scale,
    wiki_dataset, write_json, MAX_SEQ, VOCAB_CAP,
};
use explainti_core::{build_tokenizer, ExplainTi, TaskKind};
use explainti_corpus::{Dataset, Split};
use explainti_encoder::{EncoderConfig, Variant};
use explainti_metrics::report::TextTable;
use explainti_metrics::F1Scores;
use std::collections::BTreeMap;
use std::time::Instant;

/// The nine result cells of one Table III row.
#[derive(Default)]
struct Row {
    wiki_type: Option<F1Scores>,
    wiki_rel: Option<F1Scores>,
    git_type: Option<F1Scores>,
}

fn log(msg: &str) {
    eprintln!("[table3 +{:?}] {msg}", START.elapsed());
}

static START: std::sync::LazyLock<Instant> = std::sync::LazyLock::new(Instant::now);

fn run_sherlock(model: FeatureModel, wiki: &Dataset, git: &Dataset) -> Row {
    let mut row = Row::default();
    let mut m = SherlockModel::new(wiki, model, 1);
    m.train();
    row.wiki_type = Some(m.evaluate(TaskKind::Type, Split::Test));
    row.wiki_rel = Some(m.evaluate(TaskKind::Relation, Split::Test));
    let mut g = SherlockModel::new(git, model, 1);
    g.train();
    row.git_type = Some(g.evaluate(TaskKind::Type, Split::Test));
    row
}

fn run_seq(
    strategy: ContextStrategy,
    wiki: &Dataset,
    git: &Dataset,
    ckpts: &Ckpts,
    epochs: usize,
) -> Row {
    let mut row = Row::default();
    {
        let tok = build_tokenizer(wiki, VOCAB_CAP);
        let cfg = EncoderConfig::bert_like(tok.vocab_size(), MAX_SEQ);
        let mut m = SeqClassifier::new(wiki, &tok, cfg, strategy, 1);
        m.epochs = epochs;
        m.load_encoder(&ckpts.wiki_bert);
        m.train();
        row.wiki_type = Some(m.evaluate(TaskKind::Type, Split::Test));
        row.wiki_rel = Some(m.evaluate(TaskKind::Relation, Split::Test));
    }
    {
        let tok = build_tokenizer(git, VOCAB_CAP);
        let cfg = EncoderConfig::bert_like(tok.vocab_size(), MAX_SEQ);
        let mut m = SeqClassifier::new(git, &tok, cfg, strategy, 1);
        m.epochs = epochs;
        m.load_encoder(&ckpts.git_bert);
        m.train();
        row.git_type = Some(m.evaluate(TaskKind::Type, Split::Test));
    }
    row
}

fn run_explainti(
    wiki: &Dataset,
    git: &Dataset,
    variant: Variant,
    ckpts: &Ckpts,
    s: f64,
    mutate: impl Fn(explainti_core::ExplainTiConfig) -> explainti_core::ExplainTiConfig,
) -> Row {
    let mut row = Row::default();
    {
        let cfg = mutate(explainti_config(variant, s));
        let mut m = ExplainTi::new(wiki, cfg);
        m.load_encoder(ckpts.get(variant, true));
        m.train();
        row.wiki_type = Some(m.evaluate(TaskKind::Type, Split::Test));
        row.wiki_rel = Some(m.evaluate(TaskKind::Relation, Split::Test));
    }
    {
        let cfg = mutate(explainti_config(variant, s));
        let mut m = ExplainTi::new(git, cfg);
        m.load_encoder(ckpts.get(variant, false));
        m.train();
        row.git_type = Some(m.evaluate(TaskKind::Type, Split::Test));
    }
    row
}

struct Ckpts {
    wiki_bert: Vec<f32>,
    wiki_roberta: Vec<f32>,
    git_bert: Vec<f32>,
    git_roberta: Vec<f32>,
}

impl Ckpts {
    fn get(&self, variant: Variant, wiki: bool) -> &[f32] {
        match (variant, wiki) {
            (Variant::BertLike, true) => &self.wiki_bert,
            (Variant::RobertaLike, true) => &self.wiki_roberta,
            (Variant::BertLike, false) => &self.git_bert,
            (Variant::RobertaLike, false) => &self.git_roberta,
        }
    }
}

fn main() {
    let s = scale();
    let fast = std::env::var("EXPLAINTI_FAST").is_ok();
    println!("Table III — table interpretation performance  [scale {s}]");
    log("generating corpora");
    let wiki = wiki_dataset(s);
    let git = git_dataset(s);
    let epochs = explainti_config(Variant::BertLike, s).epochs;

    log("pre-training encoder checkpoints");
    let ckpts = Ckpts {
        wiki_bert: pretrained_checkpoint(&wiki, Variant::BertLike),
        wiki_roberta: if fast {
            Vec::new()
        } else {
            pretrained_checkpoint(&wiki, Variant::RobertaLike)
        },
        git_bert: pretrained_checkpoint(&git, Variant::BertLike),
        git_roberta: if fast {
            Vec::new()
        } else {
            pretrained_checkpoint(&git, Variant::RobertaLike)
        },
    };

    let mut rows: Vec<(String, Row)> = Vec::new();

    log("Sherlock");
    rows.push(("Sherlock".into(), run_sherlock(FeatureModel::Sherlock, &wiki, &git)));
    log("Sato");
    rows.push(("Sato".into(), run_sherlock(FeatureModel::Sato, &wiki, &git)));
    for strategy in [
        ContextStrategy::ContentSnapshot,
        ContextStrategy::RowStructure,
        ContextStrategy::PerColumn,
        ContextStrategy::ValueSharing,
    ] {
        log(strategy.model_name());
        rows.push((strategy.model_name().into(), run_seq(strategy, &wiki, &git, &ckpts, epochs)));
    }

    log("SelfExplain");
    {
        let mut row = Row::default();
        let cfg = explainti_config(Variant::BertLike, s);
        let mut m = build_selfexplain(&wiki, cfg.clone());
        m.load_encoder(&ckpts.wiki_bert);
        m.train();
        row.wiki_type = Some(m.evaluate(TaskKind::Type, Split::Test));
        row.wiki_rel = Some(m.evaluate(TaskKind::Relation, Split::Test));
        let mut g = build_selfexplain(&git, cfg);
        g.load_encoder(&ckpts.git_bert);
        g.train();
        row.git_type = Some(g.evaluate(TaskKind::Type, Split::Test));
        rows.push(("SelfExplain".into(), row));
    }

    let variants: &[Variant] =
        if fast { &[Variant::BertLike] } else { &[Variant::BertLike, Variant::RobertaLike] };
    for &variant in variants {
        let vname = match variant {
            Variant::BertLike => "BERT",
            Variant::RobertaLike => "RoBERTa",
        };
        log(&format!("ExplainTI-{vname}"));
        rows.push((
            format!("ExplainTI-{vname}"),
            run_explainti(&wiki, &git, variant, &ckpts, s, |c| c),
        ));
        if !fast {
            log(&format!("ExplainTI-{vname} ablations"));
            rows.push((
                format!("  w/o LE ({vname})"),
                run_explainti(&wiki, &git, variant, &ckpts, s, |c| c.without("le")),
            ));
            rows.push((
                format!("  w/o GE ({vname})"),
                run_explainti(&wiki, &git, variant, &ckpts, s, |c| c.without("ge")),
            ));
            rows.push((
                format!("  w/o SE ({vname})"),
                run_explainti(&wiki, &git, variant, &ckpts, s, |c| c.without("se")),
            ));
            rows.push((
                format!("  w PP ({vname})"),
                run_explainti(&wiki, &git, variant, &ckpts, s, |c| {
                    let mut c = c;
                    c.use_pp = true;
                    c
                }),
            ));
        }
    }

    let mut t = TextTable::new([
        "Method",
        "WikiType-miF1",
        "WikiType-maF1",
        "WikiType-wF1",
        "WikiRel-miF1",
        "WikiRel-maF1",
        "WikiRel-wF1",
        "GitType-miF1",
        "GitType-maF1",
        "GitType-wF1",
    ]);
    let mut json = BTreeMap::new();
    for (name, row) in &rows {
        let wt = row.wiki_type.map(f1_cells).unwrap_or_else(dash_cells);
        let wr = row.wiki_rel.map(f1_cells).unwrap_or_else(dash_cells);
        let gt = row.git_type.map(f1_cells).unwrap_or_else(dash_cells);
        let mut cells = vec![name.clone()];
        cells.extend(wt);
        cells.extend(wr);
        cells.extend(gt);
        t.row(cells);
        json.insert(
            name.clone(),
            serde_json::json!({
                "wiki_type": row.wiki_type.map(|f| [f.micro, f.macro_, f.weighted]),
                "wiki_relation": row.wiki_rel.map(|f| [f.micro, f.macro_, f.weighted]),
                "git_type": row.git_type.map(|f| [f.micro, f.macro_, f.weighted]),
            }),
        );
    }
    println!("{}", t.render());
    write_json("table3", &serde_json::to_value(json).unwrap());
    log("done");
}
