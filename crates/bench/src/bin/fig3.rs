//! Reproduces **Figure 3** — sufficiency of ExplainTI-LE versus a random
//! window-selection strategy on all three tasks.
//!
//! Expected shape: LE clearly beats random windows, while random windows
//! remain competitive with prior explainable baselines (which is the
//! paper's argument that sliding windows suit tables better than
//! constituent parsing).

use explainti_bench::{
    explainti_config, git_dataset, pretrained_checkpoint, scale, wiki_dataset, write_json,
};
use explainti_core::{ExplainTi, TaskKind};
use explainti_encoder::Variant;
use explainti_metrics::report::TextTable;
use explainti_xeval::{extract_explainti_views, sufficiency_f1};
use std::collections::BTreeMap;

fn main() {
    let s = scale();
    println!("Figure 3 — ExplainTI-LE vs random window selection  [scale {s}]");
    let wiki = wiki_dataset(s);
    let git = git_dataset(s);

    let mut json = BTreeMap::new();
    let mut t = TextTable::new(["Task", "ExplainTI-LE wF1", "Random windows wF1"]);
    for (dataset, kinds, dname) in [
        (&wiki, vec![TaskKind::Type, TaskKind::Relation], "wiki"),
        (&git, vec![TaskKind::Type], "git"),
    ] {
        let cfg = explainti_config(Variant::RobertaLike, s);
        let ckpt = pretrained_checkpoint(dataset, Variant::RobertaLike);
        let mut m = ExplainTi::new(dataset, cfg);
        m.load_encoder(&ckpt);
        m.train();
        for kind in kinds {
            eprintln!("[fig3] {dname} {kind}");
            let num_classes = {
                let task = m.task_index(kind).unwrap();
                m.tasks()[task].data.num_classes
            };
            let views = extract_explainti_views(&mut m, kind, (3, 1, 1), 17);
            let le = sufficiency_f1(&views.local, num_classes, 5);
            let random = sufficiency_f1(&views.random, num_classes, 5);
            let name = format!("{dname}_{kind}");
            t.row([name.clone(), format!("{:.3}", le.weighted), format!("{:.3}", random.weighted)]);
            json.insert(name, serde_json::json!({ "le": le.weighted, "random": random.weighted }));
        }
    }
    println!("{}", t.render());
    write_json("fig3", &serde_json::to_value(json).unwrap());
}
