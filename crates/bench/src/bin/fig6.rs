//! Reproduces **Figure 6** — the explainability case study: one Wiki
//! column-type prediction with its full multi-view explanation bundle
//! (relevant windows, similar training samples, influential neighbours),
//! rendered like the ExplainTI⁺ verification view.

use explainti_bench::{explainti_config, pretrained_checkpoint, scale, wiki_dataset, write_json};
use explainti_core::{ExplainTi, TaskKind};
use explainti_corpus::Split;
use explainti_encoder::Variant;

fn main() {
    let s = scale();
    println!("Figure 6 — case study of explainability  [scale {s}]");
    let wiki = wiki_dataset(s);
    let cfg = explainti_config(Variant::RobertaLike, s);
    let ckpt = pretrained_checkpoint(&wiki, Variant::RobertaLike);
    let mut m = ExplainTi::new(&wiki, cfg);
    m.load_encoder(&ckpt);
    m.train();

    // Prefer a location.country test column, matching the paper's figure.
    let country = wiki.collection.type_labels.iter().position(|l| l == "location.country");
    let cols = wiki.collection.annotated_columns();
    let sample_idx = (0..cols.len())
        .filter(|&i| wiki.table_split[cols[i].0.table] == Split::Test)
        .find(|&i| Some(cols[i].1) == country)
        .or_else(|| (0..cols.len()).find(|&i| wiki.table_split[cols[i].0.table] == Split::Test))
        .expect("a test sample exists");

    let (cref, gold) = cols[sample_idx];
    let table = &wiki.collection.tables[cref.table];
    let col = &table.columns[cref.col];
    let p = m.predict(TaskKind::Type, sample_idx);
    let label_name = |l: usize| {
        wiki.collection.type_labels.get(l).cloned().unwrap_or_else(|| format!("label#{l}"))
    };

    println!("Input column");
    println!("  title : {}", table.title);
    println!("  header: {}", col.header);
    println!("  cells : {}", col.cells.join(" | "));
    println!();
    println!(
        "Prediction: {} (confidence {:.2}; gold {})",
        label_name(p.label),
        p.confidence,
        label_name(gold)
    );
    println!();
    println!("Local explanations (relevant windows):");
    for span in p.explanation.top_local_diverse(3) {
        println!("  RS={:.3}  \"{}\"", span.relevance, span.text);
    }
    println!();
    println!("Global explanations (similar training samples):");
    for g in p.explanation.top_global(3) {
        let (gref, _) = cols[g.sample];
        let gt = &wiki.collection.tables[gref.table];
        let gc = &gt.columns[gref.col];
        println!(
            "  IS={:.3}  label={}  [{} / {}: {}]",
            g.influence,
            label_name(g.label),
            gt.title,
            gc.header,
            gc.cells.iter().take(3).cloned().collect::<Vec<_>>().join(", ")
        );
    }
    println!();
    println!("Structural explanations (influential neighbours):");
    for n in p.explanation.top_structural(3) {
        let (nref, _) = cols[n.node];
        let nt = &wiki.collection.tables[nref.table];
        let nc = &nt.columns[nref.col];
        println!(
            "  AS={:.3}  label={}  [{} / {}: {}]",
            n.attention,
            label_name(n.label),
            nt.title,
            nc.header,
            nc.cells.iter().take(3).cloned().collect::<Vec<_>>().join(", ")
        );
    }

    write_json(
        "fig6",
        &serde_json::json!({
            "title": table.title,
            "header": col.header,
            "gold": label_name(gold),
            "prediction": label_name(p.label),
            "confidence": p.confidence,
            "explanation": p.explanation,
        }),
    );
}
