//! Socket-level load generator for the inference server — the
//! measurement substrate behind `BENCH_serve.json` and CI's SLO gate.
//!
//! Two traffic shapes over real TCP connections:
//!
//! * **closed loop** — `--conns` clients, each issuing its next request
//!   the moment the previous response lands. Measures capacity.
//! * **open loop** — a Poisson-free fixed arrival schedule at each rate
//!   in `--rates`, independent of response times (the shape that
//!   exposes queueing collapse; late dispatches are counted instead of
//!   silently coordinated away).
//!
//! Latency quantiles are computed exactly from the recorded samples
//! (not bucketed), and every run re-measures a serial **calibration**
//! mean first so the committed baseline is machine-normalised: the gate
//! compares `p99 / calib_mean` ratios, which transfer across runner
//! generations far better than absolute nanoseconds.
//!
//! `--failpoints SPEC` arms in-process failpoints *after* calibration,
//! so an injected slowdown inflates the normalised p99 rather than
//! cancelling out — that is what CI's negative gate arm relies on.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use explainti_sync::{classes, OrderedMutex};
use std::time::{Duration, Instant};

use explainti_api::PredictRequest;
use explainti_core::{ExplainTi, ExplainTiConfig};
use explainti_corpus::{generate_wiki, WikiConfig};
use explainti_serve::{start, ServeConfig};
use serde_json::{json, Value};

const USAGE: &str = "\
loadgen — socket-level load generator for the ExplainTI server

  --addr HOST:PORT      target an already-running server
  --self-host           boot an untrained in-process server (default)
  --workers N           prediction workers for the self-hosted server (default 2)
  --mode closed|open|both   traffic shape (default closed)
  --conns N             closed-loop client connections (default 4)
  --keep-alive          reuse one persistent connection per client instead
                        of a fresh socket per request; responses are framed
                        (Content-Length / chunked) and reconnects are counted
  --rates R1,R2,...     open-loop arrival rates in req/s (default 20,50)
  --duration-s S        seconds per phase (default 5)
  --repeat-frac F       fraction of requests drawn from a hot set of 8
                        payloads, exercising the response cache (default 0.3)
  --calib N             serial calibration requests (default 16)
  --failpoints SPEC     arm failpoints AFTER calibration (self-host only),
                        e.g. 'serve.batch.slow=always'
  --out PATH            report path (default BENCH_serve.json)
  --write-baseline PATH also write the report as a blessed baseline
  --gate PATH           compare against a baseline report; with
  --max-p99-ratio R     fail (exit 1) when normalized_p99 exceeds
                        R x baseline (default 1.3)
";

struct Args {
    addr: Option<String>,
    self_host: bool,
    workers: usize,
    mode: String,
    conns: usize,
    keep_alive: bool,
    rates: Vec<f64>,
    duration_s: u64,
    repeat_frac: f64,
    calib: usize,
    failpoints: Option<String>,
    out: String,
    write_baseline: Option<String>,
    gate: Option<String>,
    max_p99_ratio: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        self_host: false,
        workers: 2,
        mode: "closed".to_string(),
        conns: 4,
        keep_alive: false,
        rates: vec![20.0, 50.0],
        duration_s: 5,
        repeat_frac: 0.3,
        calib: 16,
        failpoints: None,
        out: "BENCH_serve.json".to_string(),
        write_baseline: None,
        gate: None,
        max_p99_ratio: 1.3,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => args.addr = Some(value(&mut i)?),
            "--self-host" => args.self_host = true,
            "--workers" => {
                args.workers = value(&mut i)?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--mode" => args.mode = value(&mut i)?,
            "--conns" => {
                args.conns = value(&mut i)?.parse().map_err(|e| format!("--conns: {e}"))?
            }
            "--keep-alive" => args.keep_alive = true,
            "--rates" => {
                args.rates = value(&mut i)?
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| s.trim().parse::<f64>().map_err(|e| format!("--rates: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--duration-s" => {
                args.duration_s =
                    value(&mut i)?.parse().map_err(|e| format!("--duration-s: {e}"))?;
            }
            "--repeat-frac" => {
                args.repeat_frac =
                    value(&mut i)?.parse().map_err(|e| format!("--repeat-frac: {e}"))?;
            }
            "--calib" => {
                args.calib = value(&mut i)?.parse().map_err(|e| format!("--calib: {e}"))?
            }
            "--failpoints" => args.failpoints = Some(value(&mut i)?),
            "--out" => args.out = value(&mut i)?,
            "--write-baseline" => args.write_baseline = Some(value(&mut i)?),
            "--gate" => args.gate = Some(value(&mut i)?),
            "--max-p99-ratio" => {
                args.max_p99_ratio =
                    value(&mut i)?.parse().map_err(|e| format!("--max-p99-ratio: {e}"))?;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    if !matches!(args.mode.as_str(), "closed" | "open" | "both") {
        return Err(format!("--mode must be closed|open|both, got {}", args.mode));
    }
    if args.conns == 0 || args.duration_s == 0 {
        return Err("--conns and --duration-s must be positive".to_string());
    }
    if args.addr.is_some() && args.failpoints.is_some() {
        return Err("--failpoints arms in-process failpoints; it needs --self-host".to_string());
    }
    Ok(args)
}

/// Distinct single-column request bodies from the synthetic corpus —
/// the same table distribution the models train on, so payload sizes
/// are representative rather than adversarial.
fn build_payloads() -> Vec<String> {
    let d = generate_wiki(&WikiConfig { num_tables: 120, seed: 0x10ad, ..Default::default() });
    let mut payloads = Vec::new();
    for table in &d.collection.tables {
        for col in &table.columns {
            if col.cells.is_empty() {
                continue;
            }
            let req = PredictRequest {
                title: table.title.clone(),
                header: col.header.clone(),
                cells: col.cells.iter().take(6).cloned().collect(),
            };
            if let Ok(body) = serde_json::to_string(&req) {
                payloads.push(body);
            }
        }
    }
    payloads
}

/// One HTTP exchange: status, latency, and the `X-Trace-Id` the server
/// minted for the request (for joining failures against trace logs).
fn one_request(addr: &SocketAddr, body: &str) -> Result<(u16, u64, Option<String>), String> {
    let started = Instant::now();
    let mut stream =
        TcpStream::connect_timeout(addr, Duration::from_secs(10)).map_err(|e| e.to_string())?;
    let msg = format!(
        "POST /v1/interpret HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(msg.as_bytes()).map_err(|e| e.to_string())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(|e| e.to_string())?;
    let elapsed_ns = started.elapsed().as_nanos() as u64;
    let status: u16 =
        raw.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
            format!("unparseable response: {:?}", raw.chars().take(80).collect::<String>())
        })?;
    let trace_id = raw.split("\r\n\r\n").next().and_then(|head| {
        head.lines()
            .filter_map(|l| l.split_once(':'))
            .find(|(k, _)| k.trim().eq_ignore_ascii_case("x-trace-id"))
            .map(|(_, v)| v.trim().to_string())
    });
    Ok((status, elapsed_ns, trace_id))
}

fn fetch_metrics(addr: &SocketAddr) -> Option<Value> {
    let mut stream = TcpStream::connect_timeout(addr, Duration::from_secs(5)).ok()?;
    stream
        .write_all(
            b"GET /v1/metrics HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\
              Content-Length: 0\r\n\r\n",
        )
        .ok()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).ok()?;
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b)?;
    serde_json::from_str(body).ok()
}

/// Reads exactly one framed HTTP response off a persistent stream —
/// `Content-Length` or chunked transfer-encoding, never read-to-EOF —
/// leaving any pipelined leftovers in `buf` for the next call.
/// Returns (status, trace_id, server_asked_to_close).
fn read_framed(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
) -> Result<(u16, Option<String>, bool), String> {
    fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
        haystack.windows(needle.len()).position(|w| w == needle)
    }
    let mut fill = |buf: &mut Vec<u8>| -> Result<(), String> {
        let mut scratch = [0u8; 8192];
        let n = stream.read(&mut scratch).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-response".to_string());
        }
        buf.extend_from_slice(&scratch[..n]);
        Ok(())
    };
    let head_end = loop {
        if let Some(pos) = find(buf, b"\r\n\r\n") {
            break pos;
        }
        fill(buf)?;
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    buf.drain(..head_end + 4);
    let status: u16 =
        head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
            format!("unparseable head: {:?}", head.chars().take(80).collect::<String>())
        })?;
    let mut trace_id = None;
    let mut close = false;
    let mut chunked = false;
    let mut content_length = 0usize;
    for line in head.lines().skip(1) {
        let Some((k, v)) = line.split_once(':') else { continue };
        let v = v.trim();
        match k.trim().to_ascii_lowercase().as_str() {
            "x-trace-id" => trace_id = Some(v.to_string()),
            "connection" => close = v.eq_ignore_ascii_case("close"),
            "transfer-encoding" => chunked = v.eq_ignore_ascii_case("chunked"),
            "content-length" => content_length = v.parse().unwrap_or(0),
            _ => {}
        }
    }
    if chunked {
        loop {
            let nl = loop {
                if let Some(pos) = find(buf, b"\r\n") {
                    break pos;
                }
                fill(buf)?;
            };
            let size = usize::from_str_radix(String::from_utf8_lossy(&buf[..nl]).trim(), 16)
                .map_err(|e| format!("bad chunk size: {e}"))?;
            buf.drain(..nl + 2);
            // Chunk payload + CRLF; the terminal 0-chunk is followed by
            // the final CRLF, so the same arithmetic consumes it.
            while buf.len() < size + 2 {
                fill(buf)?;
            }
            buf.drain(..size + 2);
            if size == 0 {
                break;
            }
        }
    } else {
        while buf.len() < content_length {
            fill(buf)?;
        }
        buf.drain(..content_length);
    }
    Ok((status, trace_id, close))
}

/// A persistent-connection client for `--keep-alive`: one socket per
/// client thread, framed responses, and a single fresh-socket retry
/// when a reused connection turns out to be stale (the server may have
/// idled it out between requests — that is recovery, not an error).
struct KeepAliveClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    buf: Vec<u8>,
}

impl KeepAliveClient {
    fn new(addr: SocketAddr) -> Self {
        Self { addr, stream: None, buf: Vec::new() }
    }

    fn try_once(&mut self, body: &str) -> Result<(u16, Option<String>, bool), String> {
        if self.stream.is_none() {
            let s = TcpStream::connect_timeout(&self.addr, Duration::from_secs(10))
                .map_err(|e| e.to_string())?;
            s.set_read_timeout(Some(Duration::from_secs(30))).map_err(|e| e.to_string())?;
            self.buf.clear();
            self.stream = Some(s);
        }
        let Some(stream) = self.stream.as_mut() else {
            return Err("no connection".to_string());
        };
        let msg = format!(
            "POST /v1/interpret HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(msg.as_bytes()).map_err(|e| e.to_string())?;
        read_framed(stream, &mut self.buf)
    }

    /// One exchange, reusing the socket when possible. Returns the
    /// usual (status, latency, trace) triple plus whether the exchange
    /// rode an already-used connection.
    fn request(&mut self, body: &str) -> Result<(u16, u64, Option<String>, bool), String> {
        let started = Instant::now();
        let reused = self.stream.is_some();
        let outcome = match self.try_once(body) {
            Ok(ok) => Ok((ok, reused)),
            Err(_) if reused => {
                self.stream = None;
                self.try_once(body).map(|ok| (ok, false))
            }
            Err(e) => Err(e),
        };
        match outcome {
            Ok(((status, trace_id, close), reused)) => {
                if close {
                    self.stream = None;
                }
                Ok((status, started.elapsed().as_nanos() as u64, trace_id, reused))
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }
}

fn counter_of(metrics: &Value, name: &str) -> u64 {
    metrics.get("counters").and_then(|c| c.get(name)).and_then(Value::as_u64).unwrap_or(0)
}

/// Exact quantile from recorded samples (sorts a copy).
fn quantiles(mut samples: Vec<u64>) -> (u64, u64, u64, u64) {
    if samples.is_empty() {
        return (0, 0, 0, 0);
    }
    samples.sort_unstable();
    let at = |q: f64| {
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        samples[rank - 1]
    };
    (at(0.50), at(0.99), at(0.999), samples[samples.len() - 1])
}

/// Shared per-phase accounting.
struct PhaseStats {
    latencies_ns: OrderedMutex<Vec<u64>>,
    sent: AtomicU64,
    errors: AtomicU64,
    late: AtomicU64,
    reused: AtomicU64,
    opened: AtomicU64,
    error_traces: OrderedMutex<Vec<String>>,
}

impl Default for PhaseStats {
    fn default() -> Self {
        Self {
            latencies_ns: OrderedMutex::new(&classes::BENCH_LOADGEN_LATENCIES, Vec::new()),
            sent: AtomicU64::default(),
            errors: AtomicU64::default(),
            late: AtomicU64::default(),
            reused: AtomicU64::default(),
            opened: AtomicU64::default(),
            error_traces: OrderedMutex::new(&classes::BENCH_LOADGEN_ERRORS, Vec::new()),
        }
    }
}

impl PhaseStats {
    /// Records a keep-alive exchange, folding the reuse flag into the
    /// connection accounting before the shared outcome bookkeeping.
    fn record_keepalive(&self, outcome: Result<(u16, u64, Option<String>, bool), String>) {
        match outcome {
            Ok((status, ns, trace, reused)) => {
                if reused {
                    // ORDERING: Relaxed — load-report tallies; read after
                    // every client thread has joined.
                    self.reused.fetch_add(1, Ordering::Relaxed);
                    explainti_obs::add_counter("loadgen.reused", 1);
                } else {
                    // ORDERING: Relaxed — tally, see above.
                    self.opened.fetch_add(1, Ordering::Relaxed);
                }
                self.record(Ok((status, ns, trace)));
            }
            Err(e) => {
                // ORDERING: Relaxed — tally, see above.
                self.opened.fetch_add(1, Ordering::Relaxed);
                self.record(Err(e));
            }
        }
    }
    fn record(&self, outcome: Result<(u16, u64, Option<String>), String>) {
        // ORDERING: Relaxed — load-report tallies only; totals are read
        // after the phase's client threads join, which synchronises.
        self.sent.fetch_add(1, Ordering::Relaxed);
        explainti_obs::add_counter("loadgen.sent", 1);
        match outcome {
            Ok((status, ns, trace)) => {
                self.latencies_ns.lock().push(ns);
                explainti_obs::registry().histogram("loadgen.request").record(ns);
                if status >= 500 {
                    // ORDERING: Relaxed — tally, see above.
                    self.errors.fetch_add(1, Ordering::Relaxed);
                    explainti_obs::add_counter("loadgen.errors", 1);
                    if let Some(id) = trace {
                        let mut t = self.error_traces.lock();
                        if t.len() < 20 {
                            t.push(id);
                        }
                    }
                }
            }
            Err(_) => {
                // ORDERING: Relaxed — tally, see above.
                self.errors.fetch_add(1, Ordering::Relaxed);
                explainti_obs::add_counter("loadgen.errors", 1);
            }
        }
    }

    fn summary(&self, duration_s: f64) -> Value {
        let samples = self.latencies_ns.lock().clone();
        let (p50, p99, p999, max) = quantiles(samples);
        // ORDERING: Relaxed — tallies are final once the phase's client
        // threads have joined (the same contract covers the loads below).
        let sent = self.sent.load(Ordering::Relaxed);
        json!({
            "sent": sent,
            "errors": self.errors.load(Ordering::Relaxed), // ORDERING: Relaxed — as above
            "late": self.late.load(Ordering::Relaxed), // ORDERING: Relaxed — as above
            "throughput_rps": sent as f64 / duration_s,
            "p50_ns": p50,
            "p99_ns": p99,
            "p999_ns": p999,
            "max_ns": max,
            "connections_opened": self.opened.load(Ordering::Relaxed), // ORDERING: Relaxed — as above
            "reused_requests": self.reused.load(Ordering::Relaxed), // ORDERING: Relaxed — as above
            "error_trace_ids": self.error_traces.lock().clone(),
        })
    }

    fn p99_ns(&self) -> u64 {
        let samples = self.latencies_ns.lock().clone();
        quantiles(samples).1
    }
}

/// A deterministic payload picker: a hot set of 8 bodies re-requested
/// with probability `repeat_frac` (cache hits), cold bodies otherwise.
fn pick_payload<'a>(
    payloads: &'a [String],
    cold_cursor: &AtomicUsize,
    repeat_frac: f64,
    tick: u64,
) -> &'a str {
    let hot = payloads.len().min(8);
    // splitmix-style hash of the tick stands in for an RNG: cheap,
    // deterministic, and shared-state-free across client threads.
    let mut h = tick.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 31;
    if ((h % 1000) as f64) < repeat_frac * 1000.0 {
        &payloads[(h % hot as u64) as usize]
    } else {
        // ORDERING: Relaxed — the cursor only needs atomicity to spread
        // cold payloads across threads; no payload data is published.
        let i = cold_cursor.fetch_add(1, Ordering::Relaxed);
        &payloads[i % payloads.len()]
    }
}

/// Samples the server's instantaneous queue depth while a phase runs.
fn spawn_queue_sampler(
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    out: Arc<OrderedMutex<Vec<Value>>>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let started = Instant::now();
        // ORDERING: Relaxed — stop is a lone flag; one extra 100 ms
        // sample after the store is harmless.
        while !stop.load(Ordering::Relaxed) {
            if let Some(m) = fetch_metrics(&addr) {
                let depth = m
                    .get("gauges")
                    .and_then(|g| g.get("serve.queue.depth"))
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0);
                out.lock().push(json!({
                    "t_ms": started.elapsed().as_millis() as u64,
                    "depth": depth,
                }));
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    })
}

fn run_closed(
    addr: SocketAddr,
    payloads: Arc<Vec<String>>,
    conns: usize,
    duration: Duration,
    repeat_frac: f64,
    keep_alive: bool,
) -> PhaseStats {
    let stats = Arc::new(PhaseStats::default());
    let cold = Arc::new(AtomicUsize::new(0));
    let deadline = Instant::now() + duration;
    let workers: Vec<_> = (0..conns)
        .map(|w| {
            let (stats, payloads, cold) =
                (Arc::clone(&stats), Arc::clone(&payloads), Arc::clone(&cold));
            std::thread::spawn(move || {
                let mut client = keep_alive.then(|| KeepAliveClient::new(addr));
                let mut tick = (w as u64) << 32;
                while Instant::now() < deadline {
                    tick += 1;
                    let body = pick_payload(&payloads, &cold, repeat_frac, tick);
                    match client.as_mut() {
                        Some(c) => stats.record_keepalive(c.request(body)),
                        None => {
                            // ORDERING: Relaxed — tally, read post-join.
                            stats.opened.fetch_add(1, Ordering::Relaxed);
                            stats.record(one_request(&addr, body));
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        let _ = w.join();
    }
    Arc::try_unwrap(stats).unwrap_or_default()
}

fn run_open(
    addr: SocketAddr,
    payloads: Arc<Vec<String>>,
    rate: f64,
    duration: Duration,
    repeat_frac: f64,
    senders: usize,
    keep_alive: bool,
) -> PhaseStats {
    let stats = Arc::new(PhaseStats::default());
    let cold = Arc::new(AtomicUsize::new(0));
    let total = (rate * duration.as_secs_f64()).ceil() as u64;
    let next = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let workers: Vec<_> = (0..senders)
        .map(|_| {
            let (stats, payloads, cold, next) =
                (Arc::clone(&stats), Arc::clone(&payloads), Arc::clone(&cold), Arc::clone(&next));
            std::thread::spawn(move || {
                let mut client = keep_alive.then(|| KeepAliveClient::new(addr));
                loop {
                    // ORDERING: Relaxed — slot counter; atomicity alone
                    // assigns each schedule slot to one sender.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let target = started + Duration::from_secs_f64(i as f64 / rate);
                    let now = Instant::now();
                    if target > now {
                        std::thread::sleep(target - now);
                    } else if now.saturating_duration_since(target) > Duration::from_millis(100) {
                        // The schedule slipped: every sender is busy waiting
                        // on the server. Record it — this is the open-loop
                        // signal closed-loop benches hide.
                        // ORDERING: Relaxed — tally, read post-join.
                        stats.late.fetch_add(1, Ordering::Relaxed);
                        explainti_obs::add_counter("loadgen.late", 1);
                    }
                    let body = pick_payload(&payloads, &cold, repeat_frac, i);
                    match client.as_mut() {
                        Some(c) => stats.record_keepalive(c.request(body)),
                        None => {
                            // ORDERING: Relaxed — tally, read post-join.
                            stats.opened.fetch_add(1, Ordering::Relaxed);
                            stats.record(one_request(&addr, body));
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        let _ = w.join();
    }
    Arc::try_unwrap(stats).unwrap_or_default()
}

/// Boots an untrained in-process server on an ephemeral port.
fn self_host(workers: usize) -> explainti_serve::ServerHandle {
    let d = generate_wiki(&WikiConfig { num_tables: 40, seed: 4242, ..Default::default() });
    let cfg = ExplainTiConfig::bert_like(2048, 32);
    let mut m = ExplainTi::new(&d, cfg);
    for t in 0..m.tasks().len() {
        m.refresh_store(t);
    }
    let labels = d.collection.type_labels.clone();
    let serve_cfg = ServeConfig {
        workers: workers.max(1),
        queue_cap: 256,
        max_batch: 8,
        cache_cap: 512,
        deadline_ms: 60_000,
        ..Default::default()
    };
    start(Arc::new(m), labels, serve_cfg).expect("self-hosted server failed to start")
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    explainti_obs::set_level(explainti_obs::Level::Info);

    let payloads = Arc::new(build_payloads());
    assert!(!payloads.is_empty(), "payload corpus is empty");

    let mut handle = None;
    let addr: SocketAddr = match &args.addr {
        Some(a) => a.parse().unwrap_or_else(|e| {
            eprintln!("loadgen: bad --addr {a}: {e}");
            std::process::exit(2);
        }),
        None => {
            eprintln!("[self-hosting an untrained server with {} workers]", args.workers.max(1));
            let h = self_host(args.workers);
            let addr = h.addr();
            handle = Some(h);
            addr
        }
    };

    // -- Calibration: serial requests on cold payloads ---------------------
    let mut calib = Vec::new();
    for i in 0..args.calib.max(4) {
        let body = &payloads[(i * 7) % payloads.len()];
        match one_request(&addr, body) {
            Ok((200, ns, _)) => calib.push(ns),
            Ok((status, _, _)) => eprintln!("[calibration request got {status}]"),
            Err(e) => eprintln!("[calibration request failed: {e}]"),
        }
    }
    assert!(calib.len() >= 2, "calibration failed: server at {addr} is not answering");
    // Drop the slowest third: first-touch effects (cold caches, lazy
    // allocation) otherwise leak into the normalisation divisor.
    calib.sort_unstable();
    calib.truncate(calib.len() - calib.len() / 3);
    let calib_mean_ns = calib.iter().sum::<u64>() as f64 / calib.len() as f64;
    eprintln!(
        "[calibration: mean {:.2} ms over {} serial requests]",
        calib_mean_ns / 1e6,
        calib.len()
    );

    // -- Arm failpoints only now, so they cannot deflate the divisor -------
    if let Some(spec) = &args.failpoints {
        match explainti_faults::configure_from_spec(spec) {
            Ok(n) => eprintln!("[armed {n} failpoint(s): {spec}]"),
            Err(e) => {
                eprintln!("loadgen: bad --failpoints: {e}");
                std::process::exit(2);
            }
        }
    }

    let duration = Duration::from_secs(args.duration_s);
    let queue_curve = Arc::new(OrderedMutex::new(&classes::BENCH_LOADGEN_QUEUE_CURVE, Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = spawn_queue_sampler(addr, Arc::clone(&stop), Arc::clone(&queue_curve));

    let mut report = std::collections::BTreeMap::<String, Value>::new();
    report.insert("target".into(), json!(addr.to_string()));
    report.insert("self_host".into(), json!(args.addr.is_none()));
    report.insert(
        "machine".into(),
        json!({
            "available_parallelism":
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }),
    );
    report
        .insert("calibration".into(), json!({ "requests": calib.len(), "mean_ns": calib_mean_ns }));
    report.insert("payloads".into(), json!(payloads.len()));
    report.insert("repeat_frac".into(), json!(args.repeat_frac));

    let mut normalized_p99 = None;

    if matches!(args.mode.as_str(), "closed" | "both") {
        let before = fetch_metrics(&addr);
        let stats = run_closed(
            addr,
            Arc::clone(&payloads),
            args.conns,
            duration,
            args.repeat_frac,
            args.keep_alive,
        );
        let after = fetch_metrics(&addr);
        let mut phase = stats.summary(duration.as_secs_f64());
        let norm = stats.p99_ns() as f64 / calib_mean_ns;
        normalized_p99 = Some(norm);
        if let Value::Object(obj) = &mut phase {
            obj.insert("conns".into(), json!(args.conns));
            obj.insert("duration_s".into(), json!(args.duration_s));
            obj.insert("keep_alive".into(), json!(args.keep_alive));
            obj.insert("normalized_p99".into(), json!(norm));
            if let (Some(b), Some(a)) = (&before, &after) {
                // The server's own view of reuse, as a cross-check on
                // the client-side reused_requests count.
                let reused = counter_of(a, "serve.keepalive.reused")
                    .saturating_sub(counter_of(b, "serve.keepalive.reused"));
                obj.insert("server_keepalive_reused".into(), json!(reused));
                let hits = counter_of(a, "serve.cache.hit")
                    .saturating_sub(counter_of(b, "serve.cache.hit"));
                let misses = counter_of(a, "serve.cache.miss")
                    .saturating_sub(counter_of(b, "serve.cache.miss"));
                let lookups = hits + misses;
                obj.insert(
                    "cache".into(),
                    json!({
                        "hits": hits,
                        "misses": misses,
                        "hit_ratio": if lookups > 0 { hits as f64 / lookups as f64 } else { 0.0 },
                    }),
                );
            }
        }
        eprintln!(
            "[closed x{}{}: {} req ({} reused / {} conns), p99 {:.2} ms, normalized {:.2}]",
            args.conns,
            if args.keep_alive { " keep-alive" } else { "" },
            phase.get("sent").and_then(Value::as_u64).unwrap_or(0),
            stats.reused.load(Ordering::Relaxed), // ORDERING: Relaxed — post-join read
            stats.opened.load(Ordering::Relaxed), // ORDERING: Relaxed — post-join read
            stats.p99_ns() as f64 / 1e6,
            norm,
        );
        report.insert("closed".into(), phase);
    }

    if matches!(args.mode.as_str(), "open" | "both") {
        let mut sweeps = Vec::new();
        for &rate in &args.rates {
            if rate <= 0.0 {
                continue;
            }
            let senders = args.conns.max(8);
            let stats = run_open(
                addr,
                Arc::clone(&payloads),
                rate,
                duration,
                args.repeat_frac,
                senders,
                args.keep_alive,
            );
            let mut phase = stats.summary(duration.as_secs_f64());
            if let Value::Object(obj) = &mut phase {
                obj.insert("rate_rps".into(), json!(rate));
                obj.insert("senders".into(), json!(senders));
                obj.insert("keep_alive".into(), json!(args.keep_alive));
                obj.insert("normalized_p99".into(), json!(stats.p99_ns() as f64 / calib_mean_ns));
            }
            eprintln!(
                "[open @{rate}/s: {} req, {} late, p99 {:.2} ms]",
                phase.get("sent").and_then(Value::as_u64).unwrap_or(0),
                phase.get("late").and_then(Value::as_u64).unwrap_or(0),
                stats.p99_ns() as f64 / 1e6,
            );
            sweeps.push(phase);
        }
        report.insert("open".into(), json!(sweeps));
    }

    // ORDERING: Relaxed — lone stop flag for the sampler thread; the
    // join below is the synchronisation point.
    stop.store(true, Ordering::Relaxed);
    let _ = sampler.join();
    report.insert("queue_depth".into(), json!(queue_curve.lock().clone()));

    if let Some(h) = handle.take() {
        h.shutdown();
        let mut h = h;
        h.join();
    }

    // -- Gate: compare machine-normalised p99 against a blessed baseline ---
    let mut gate_failed = false;
    if let Some(path) = &args.gate {
        let current = normalized_p99.unwrap_or_else(|| {
            eprintln!("loadgen: --gate needs a closed-loop phase (use --mode closed|both)");
            std::process::exit(2);
        });
        let baseline: Value = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
            .unwrap_or_else(|e| {
                eprintln!("loadgen: cannot read baseline {path}: {e}");
                std::process::exit(2);
            });
        let base = baseline
            .get("closed")
            .and_then(|c| c.get("normalized_p99"))
            .and_then(Value::as_f64)
            .unwrap_or_else(|| {
                eprintln!("loadgen: baseline {path} has no closed.normalized_p99");
                std::process::exit(2);
            });
        let ratio = if base > 0.0 { current / base } else { f64::INFINITY };
        gate_failed = ratio > args.max_p99_ratio;
        report.insert(
            "gate".into(),
            json!({
                "baseline_path": path,
                "baseline_normalized_p99": base,
                "current_normalized_p99": current,
                "ratio": ratio,
                "max_ratio": args.max_p99_ratio,
                "passed": !gate_failed,
            }),
        );
        eprintln!(
            "[gate: normalized p99 {current:.2} vs baseline {base:.2} -> ratio {ratio:.2} \
             (limit {:.2}) {}]",
            args.max_p99_ratio,
            if gate_failed { "FAIL" } else { "ok" },
        );
    }

    let report = Value::Object(report);
    if let Ok(text) = serde_json::to_string_pretty(&report) {
        if std::fs::write(&args.out, &text).is_ok() {
            eprintln!("[saved {:?}]", args.out);
        }
        if let Some(base_path) = &args.write_baseline {
            if std::fs::write(base_path, &text).is_ok() {
                eprintln!("[blessed baseline {base_path:?}]");
            }
        }
    }

    if gate_failed {
        eprintln!("loadgen: SLO gate FAILED — p99 regressed beyond the allowed ratio");
        std::process::exit(1);
    }
}
