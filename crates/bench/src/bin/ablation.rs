//! Design-choice ablations called out in DESIGN.md §5 (beyond the paper's
//! own module ablations in Table III):
//!
//! * **SE aggregation**: dot-product graph attention (Eq. 5) versus
//!   uniform mean pooling over the same sampled neighbours — the paper's
//!   §III-D2 argument that "different neighbours have various
//!   contributions";
//! * **LE relevance scoring**: KL divergence (Eq. 3) versus the simpler
//!   predicted-class probability drop — measured on prediction F1 and on
//!   the sufficiency of the extracted local explanations.

use explainti_bench::{explainti_config, pretrained_checkpoint, scale, wiki_dataset, write_json};
use explainti_core::{ExplainTi, ExplainTiConfig, LeScoring, SeAggregation, TaskKind};
use explainti_corpus::Split;
use explainti_encoder::Variant;
use explainti_metrics::report::TextTable;
use explainti_xeval::{extract_explainti_views, sufficiency_f1};
use std::collections::BTreeMap;

fn main() {
    let s = scale();
    println!("Ablation — SE aggregation and LE scoring  [scale {s}]");
    let wiki = wiki_dataset(s);
    let ckpt = pretrained_checkpoint(&wiki, Variant::RobertaLike);

    let train = |mutate: &dyn Fn(&mut ExplainTiConfig)| -> ExplainTi {
        let mut cfg = explainti_config(Variant::RobertaLike, s);
        mutate(&mut cfg);
        let mut m = ExplainTi::new(&wiki, cfg);
        m.load_encoder(&ckpt);
        m.train();
        m
    };

    let mut json = BTreeMap::new();
    let mut t =
        TextTable::new(["Variant", "Type wF1", "Relation wF1", "LE sufficiency wF1 (type)"]);
    type Tweak = Box<dyn Fn(&mut ExplainTiConfig)>;
    let variants: Vec<(&str, Tweak)> = vec![
        ("attention + KL (paper)", Box::new(|_c: &mut ExplainTiConfig| {})),
        (
            "mean pooling",
            Box::new(|c: &mut ExplainTiConfig| {
                c.se_aggregation = SeAggregation::MeanPooling;
            }),
        ),
        (
            "logit-drop LE",
            Box::new(|c: &mut ExplainTiConfig| {
                c.le_scoring = LeScoring::LogitDrop;
            }),
        ),
    ];
    for (name, mutate) in variants {
        eprintln!("[ablation] {name}");
        let mut m = train(mutate.as_ref());
        let ft = m.evaluate(TaskKind::Type, Split::Test).weighted;
        let fr = m.evaluate(TaskKind::Relation, Split::Test).weighted;
        let num_classes = {
            let task = m.task_index(TaskKind::Type).unwrap();
            m.tasks()[task].data.num_classes
        };
        let views = extract_explainti_views(&mut m, TaskKind::Type, (3, 1, 1), 29);
        let le_suff = sufficiency_f1(&views.local, num_classes, 5).weighted;
        t.row([name.to_string(), format!("{ft:.3}"), format!("{fr:.3}"), format!("{le_suff:.3}")]);
        json.insert(
            name,
            serde_json::json!({
                "type_wf1": ft,
                "relation_wf1": fr,
                "le_sufficiency_wf1": le_suff,
            }),
        );
    }
    println!("{}", t.render());
    write_json("ablation", &serde_json::to_value(json).unwrap());
}
