//! Telemetry snapshot — runs one instrumented train + evaluate cycle and
//! writes `BENCH_obs.json`, a per-stage latency summary (count, p50, p90,
//! p99, max, total) straight from the `explainti-obs` histograms.
//!
//! Unlike the criterion micro-benches this measures the stages *in situ*,
//! with their real call frequencies inside Algorithm 5, so the JSON is
//! the machine-readable counterpart of the stderr table every CLI run
//! prints (and of DESIGN.md §8's span-to-Table-V mapping).

use explainti_bench::{explainti_config, scale, wiki_dataset, write_json};
use explainti_core::{ExplainTi, TaskKind};
use explainti_corpus::Split;
use explainti_encoder::Variant;

fn main() {
    // Force telemetry on regardless of the environment: the whole point
    // of this binary is to capture the histograms.
    explainti_obs::set_level(explainti_obs::Level::Info);
    explainti_obs::registry().reset();

    let s = scale() * 0.25; // one cycle, small corpus: quantiles not rows
    println!("obs snapshot — instrumented train/evaluate cycle  [scale {s}]");
    let dataset = wiki_dataset(s);
    let mut cfg = explainti_config(Variant::BertLike, s);
    cfg.epochs = cfg.epochs.min(3);
    let mut model = ExplainTi::new(&dataset, cfg);
    let report = model.train();
    for kind in [TaskKind::Type, TaskKind::Relation] {
        if model.task_index(kind).is_some() {
            let f1 = model.evaluate(kind, Split::Test);
            println!("{kind:9} test F1: {f1}");
        }
    }
    println!("trained {} epochs in {:?}", report.epochs.len(), report.total_time);
    eprintln!("{}", explainti_obs::report());

    let summary = explainti_obs::summary();
    write_json("BENCH_obs", &summary);
    // Also emit at the repo root for quick diffing between runs.
    if let Ok(text) = serde_json::to_string_pretty(&summary) {
        let _ = std::fs::write("BENCH_obs.json", text);
        eprintln!("[saved \"BENCH_obs.json\"]");
    }
}
