//! Reproduces **Figure 7** — sensitivity analysis on the Wiki corpus:
//!
//! * (a,b) loss weights `α = β` ∈ {0.05, 0.10, 0.25, 0.50} → test
//!   F1-weighted for both tasks (expected: stable);
//! * (c,d) SE sampling size `r` ∈ {4, 8, 16, 32} → test F1-weighted
//!   (expected: rise then mild drop — over-smoothing);
//! * (e,f) LE window size `k` ∈ {2, 3, 4, 8} → sufficiency wF1 of
//!   ExplainTI-LE (expected: mild decay for small k);
//! * (g,h) top-`K` local explanations ∈ {1, 3, 5, 10} → sufficiency wF1
//!   (expected: slow drop as K shrinks).
//!
//! Plus the ablation called out in DESIGN.md §5: SE's dot-product
//! attention versus uniform mean aggregation over the same sampled
//! neighbours (approximated by `r=1` random-neighbour attention being
//! degenerate; reported via the `r` sweep's low end).

use explainti_bench::{explainti_config, pretrained_checkpoint, scale, wiki_dataset, write_json};
use explainti_core::{ExplainTi, TaskKind};
use explainti_corpus::Split;
use explainti_encoder::Variant;
use explainti_metrics::report::TextTable;
use explainti_xeval::{extract_explainti_views, sufficiency_f1};
use std::collections::BTreeMap;

fn main() {
    let s = scale();
    println!("Figure 7 — sensitivity analysis (Wiki)  [scale {s}]");
    let wiki = wiki_dataset(s);
    let ckpt = pretrained_checkpoint(&wiki, Variant::RobertaLike);
    let mut json = BTreeMap::new();

    let train_with = |mutate: &dyn Fn(&mut explainti_core::ExplainTiConfig)| -> ExplainTi {
        let mut cfg = explainti_config(Variant::RobertaLike, s);
        mutate(&mut cfg);
        let mut m = ExplainTi::new(&wiki, cfg);
        m.load_encoder(&ckpt);
        m.train();
        m
    };

    // (a, b): alpha/beta sweep.
    {
        let mut t = TextTable::new(["alpha=beta", "Type wF1", "Relation wF1"]);
        let mut series = Vec::new();
        for ab in [0.05f32, 0.10, 0.25, 0.50] {
            eprintln!("[fig7] alpha=beta={ab}");
            let m = train_with(&|c| {
                c.alpha = ab;
                c.beta = ab;
            });
            let ft = m.evaluate(TaskKind::Type, Split::Test).weighted;
            let fr = m.evaluate(TaskKind::Relation, Split::Test).weighted;
            t.row([format!("{ab:.2}"), format!("{ft:.3}"), format!("{fr:.3}")]);
            series.push(serde_json::json!({ "alpha": ab, "type": ft, "relation": fr }));
        }
        println!("(a,b) loss-weight sensitivity\n{}", t.render());
        json.insert("alpha_beta", serde_json::Value::Array(series));
    }

    // (c, d): sampling size r sweep.
    {
        let mut t = TextTable::new(["r", "Type wF1", "Relation wF1"]);
        let mut series = Vec::new();
        for r in [4usize, 8, 16, 32] {
            eprintln!("[fig7] r={r}");
            let m = train_with(&|c| c.sample_r = r);
            let ft = m.evaluate(TaskKind::Type, Split::Test).weighted;
            let fr = m.evaluate(TaskKind::Relation, Split::Test).weighted;
            t.row([r.to_string(), format!("{ft:.3}"), format!("{fr:.3}")]);
            series.push(serde_json::json!({ "r": r, "type": ft, "relation": fr }));
        }
        println!("(c,d) sampling-size sensitivity\n{}", t.render());
        json.insert("sampling_r", serde_json::Value::Array(series));
    }

    // (e, f): window size k -> LE sufficiency.
    {
        let mut t = TextTable::new(["k", "Type LE wF1", "Relation LE wF1"]);
        let mut series = Vec::new();
        for k in [2usize, 3, 4, 8] {
            eprintln!("[fig7] k={k}");
            let mut m = train_with(&|c| c.window = k);
            let mut row = vec![k.to_string()];
            let mut entry = serde_json::json!({ "k": k });
            for kind in [TaskKind::Type, TaskKind::Relation] {
                let num_classes = {
                    let task = m.task_index(kind).unwrap();
                    m.tasks()[task].data.num_classes
                };
                let views = extract_explainti_views(&mut m, kind, (3, 1, 1), 19);
                let f1 = sufficiency_f1(&views.local, num_classes, 5).weighted;
                row.push(format!("{f1:.3}"));
                entry[kind.to_string()] = serde_json::json!(f1);
            }
            t.row(row);
            series.push(entry);
        }
        println!("(e,f) window-size sensitivity (LE sufficiency)\n{}", t.render());
        json.insert("window_k", serde_json::Value::Array(series));
    }

    // (g, h): top-K local explanations -> LE sufficiency (one model).
    {
        let mut m = train_with(&|_| {});
        let mut t = TextTable::new(["K", "Type LE wF1", "Relation LE wF1"]);
        let mut series = Vec::new();
        for k in [1usize, 3, 5, 10] {
            eprintln!("[fig7] K={k}");
            let mut row = vec![k.to_string()];
            let mut entry = serde_json::json!({ "K": k });
            for kind in [TaskKind::Type, TaskKind::Relation] {
                let num_classes = {
                    let task = m.task_index(kind).unwrap();
                    m.tasks()[task].data.num_classes
                };
                let views = extract_explainti_views(&mut m, kind, (k, 1, 1), 23);
                let f1 = sufficiency_f1(&views.local, num_classes, 5).weighted;
                row.push(format!("{f1:.3}"));
                entry[kind.to_string()] = serde_json::json!(f1);
            }
            t.row(row);
            series.push(entry);
        }
        println!("(g,h) top-K sensitivity (LE sufficiency)\n{}", t.render());
        json.insert("top_k", serde_json::Value::Array(series));
    }

    write_json("fig7", &serde_json::to_value(json).unwrap());
}
