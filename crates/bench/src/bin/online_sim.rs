//! Reproduces the **online simulation** of Section IV-C: three experts
//! verify 30 predictions with and without explanations; the paper reports
//! ≈19% less verification time with explanations. Experts are simulated
//! with the reading-cost model of `explainti-xeval::online` (DESIGN.md
//! §2).

use explainti_bench::{explainti_config, pretrained_checkpoint, scale, wiki_dataset, write_json};
use explainti_core::{ExplainTi, TaskKind};
use explainti_corpus::Split;
use explainti_encoder::Variant;
use explainti_metrics::report::TextTable;
use explainti_xeval::{simulate, CostModel, JudgeContext, JudgedExplanation, VerificationItem};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let s = scale();
    println!("Online simulation — expert verification time  [scale {s}]");
    let wiki = wiki_dataset(s);
    let cfg = explainti_config(Variant::RobertaLike, s);
    let ckpt = pretrained_checkpoint(&wiki, Variant::RobertaLike);
    let mut m = ExplainTi::new(&wiki, cfg);
    m.load_encoder(&ckpt);
    m.train();

    let cols = wiki.collection.annotated_columns();
    let test_idx: Vec<usize> = (0..cols.len())
        .filter(|&i| wiki.table_split[cols[i].0.table] == Split::Test)
        .take(30)
        .collect();

    let items: Vec<VerificationItem> = test_idx
        .iter()
        .map(|&idx| {
            let p = m.predict(TaskKind::Type, idx);
            let (cref, gold) = cols[idx];
            let col = wiki.collection.column(cref);
            let ctx = JudgeContext::from_column(
                &wiki.collection.tables[cref.table].title,
                col,
                &wiki.col_provenance[idx],
                p.label,
                gold,
            );
            let span_texts: Vec<String> =
                p.explanation.top_local_diverse(3).into_iter().map(|sp| sp.text.clone()).collect();
            let mut supporting = Vec::new();
            supporting.extend(p.explanation.top_global(1).iter().map(|g| g.label));
            supporting.extend(p.explanation.top_structural(1).iter().map(|n| n.label));
            let expl_tokens: usize =
                span_texts.iter().map(|t| t.split_whitespace().count()).sum::<usize>()
                    + supporting.len() * 8;
            let input_tokens = {
                let task = m.task_index(TaskKind::Type).unwrap();
                m.tasks()[task].data.samples[idx].encoded.len
            };
            VerificationItem {
                input_tokens,
                explanation_tokens: expl_tokens,
                ctx,
                expl: JudgedExplanation { span_texts, supporting_labels: supporting },
            }
        })
        .collect();

    // Three experts (three seeds), as in the paper's protocol.
    let mut t = TextTable::new(["Expert", "t/sample w/o expl", "t/sample w expl", "Saving"]);
    let mut savings = Vec::new();
    for expert in 0..3 {
        let mut rng = SmallRng::seed_from_u64(100 + expert);
        let r = simulate(&items, &CostModel::default(), 0.15, &mut rng);
        t.row([
            format!("expert {}", expert + 1),
            format!("{:.1}s", r.time_without),
            format!("{:.1}s", r.time_with),
            format!("{:.1}%", r.saving() * 100.0),
        ]);
        savings.push(r.saving());
    }
    let mean_saving = savings.iter().sum::<f64>() / savings.len() as f64;
    println!("{}", t.render());
    println!("Mean verification-time saving: {:.1}% (paper: ≈19%)", mean_saving * 100.0);
    write_json(
        "online_sim",
        &serde_json::json!({ "savings": savings, "mean_saving": mean_saving, "samples": items.len() }),
    );
}
