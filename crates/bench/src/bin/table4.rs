//! Reproduces **Table IV** — sufficiency of explanations (FRESH
//! protocol): a fresh RoBERTa-like classifier is trained on the extracted
//! explanations *only*; high F1 means the explanation alone reflects the
//! predicted label.
//!
//! Rows: Saliency Map (K=10), Influence Functions (K=3),
//! SelfExplain-Local (K=3), SelfExplain-Global (K=3), ExplainTI-LE (K=3),
//! ExplainTI-GE (K=1), ExplainTI-SE (K=1). Expected shape: ExplainTI-GE ≈
//! full-input performance at K=1, LE ≫ SelfExplain-Local ≫ saliency;
//! global post-hoc baselines near chance.

use explainti_baselines::{build_selfexplain, ContextStrategy, SeqClassifier};
use explainti_bench::{
    dash_cells, explainti_config, git_dataset, pretrained_checkpoint, scale, wiki_dataset,
    write_json, MAX_SEQ, VOCAB_CAP,
};
use explainti_core::{build_tokenizer, ExplainTi, TaskKind};
use explainti_corpus::Dataset;
use explainti_encoder::{EncoderConfig, Variant};
use explainti_metrics::report::TextTable;
use explainti_metrics::F1Scores;
use explainti_xeval::{
    extract_explainti_views, extract_influence, extract_saliency, sufficiency_f1, TextInstance,
};
use std::collections::BTreeMap;

struct TaskRun {
    name: &'static str,
    dataset: Dataset,
    kind: TaskKind,
    num_classes: usize,
}

fn main() {
    let s = scale();
    println!("Table IV — sufficiency of explanations (FRESH)  [scale {s}]");
    let wiki = wiki_dataset(s);
    let git = git_dataset(s);
    let tasks = vec![
        TaskRun {
            name: "wiki_type",
            num_classes: wiki.collection.type_labels.len(),
            dataset: wiki.clone(),
            kind: TaskKind::Type,
        },
        TaskRun {
            name: "wiki_relation",
            num_classes: wiki.collection.relation_labels.len(),
            dataset: wiki.clone(),
            kind: TaskKind::Relation,
        },
        TaskRun {
            name: "git_type",
            num_classes: git.collection.type_labels.len(),
            dataset: git.clone(),
            kind: TaskKind::Type,
        },
    ];

    // method -> task -> F1
    let mut results: BTreeMap<&'static str, BTreeMap<&'static str, F1Scores>> = BTreeMap::new();
    let mut record = |method: &'static str, task: &'static str, f1: F1Scores| {
        results.entry(method).or_default().insert(task, f1);
    };

    let mut trained_ti: BTreeMap<&'static str, ExplainTi> = BTreeMap::new();
    for run in &tasks {
        let dataset_key: &'static str = if run.name.starts_with("wiki") { "wiki" } else { "git" };
        eprintln!("[table4] dataset {dataset_key} task {}", run.kind);

        // Train ExplainTI-RoBERTa (paper uses its explanations here) once
        // per dataset and reuse for both tasks.
        if !trained_ti.contains_key(dataset_key) {
            let cfg = explainti_config(Variant::RobertaLike, s);
            let ckpt = pretrained_checkpoint(&run.dataset, Variant::RobertaLike);
            let mut m = ExplainTi::new(&run.dataset, cfg);
            m.load_encoder(&ckpt);
            m.train();
            trained_ti.insert(dataset_key, m);
        }
        let model = trained_ti.get_mut(dataset_key).unwrap();
        let views = extract_explainti_views(model, run.kind, (3, 1, 1), 11);
        record("ExplainTI-LE", run.name, sufficiency_f1(&views.local, run.num_classes, 5));
        record("ExplainTI-GE", run.name, sufficiency_f1(&views.global, run.num_classes, 5));
        record("ExplainTI-SE", run.name, sufficiency_f1(&views.structural, run.num_classes, 5));

        // SelfExplain local/global explanations.
        {
            let cfg = explainti_config(Variant::RobertaLike, s);
            let mut se = build_selfexplain(&run.dataset, cfg);
            se.train();
            let se_views = extract_explainti_views(&mut se, run.kind, (3, 3, 0), 13);
            record(
                "SelfExplain-Local",
                run.name,
                sufficiency_f1(&se_views.local, run.num_classes, 5),
            );
            record(
                "SelfExplain-Global",
                run.name,
                sufficiency_f1(&se_views.global, run.num_classes, 5),
            );
        }

        // Post-hoc explainers on a trained base transformer.
        {
            let tok = build_tokenizer(&run.dataset, VOCAB_CAP);
            let cfg = EncoderConfig::roberta_like(tok.vocab_size(), MAX_SEQ);
            let mut base =
                SeqClassifier::new(&run.dataset, &tok, cfg, ContextStrategy::PerColumn, 3);
            base.train();
            let sal = extract_saliency(&mut base, run.kind, 10);
            record("Saliency Map", run.name, sufficiency_f1(&sal, run.num_classes, 5));
            let inf: Vec<TextInstance> = extract_influence(&mut base, run.kind, 3);
            record("Influence Functions", run.name, sufficiency_f1(&inf, run.num_classes, 5));
        }
    }

    let order = [
        "Saliency Map",
        "Influence Functions",
        "SelfExplain-Local",
        "SelfExplain-Global",
        "ExplainTI-LE",
        "ExplainTI-GE",
        "ExplainTI-SE",
    ];
    let mut t = TextTable::new([
        "Method",
        "WikiType-miF1",
        "WikiType-maF1",
        "WikiType-wF1",
        "WikiRel-miF1",
        "WikiRel-maF1",
        "WikiRel-wF1",
        "GitType-miF1",
        "GitType-maF1",
        "GitType-wF1",
    ]);
    let mut json = BTreeMap::new();
    for method in order {
        let per_task = &results[method];
        let mut cells = vec![method.to_string()];
        for task in ["wiki_type", "wiki_relation", "git_type"] {
            let c = per_task
                .get(task)
                .map(|f| explainti_bench::f1_cells(*f))
                .unwrap_or_else(dash_cells);
            cells.extend(c);
        }
        t.row(cells);
        json.insert(
            method,
            serde_json::to_value(
                per_task
                    .iter()
                    .map(|(k, f)| (*k, [f.micro, f.macro_, f.weighted]))
                    .collect::<BTreeMap<_, _>>(),
            )
            .unwrap(),
        );
    }
    println!("{}", t.render());
    write_json("table4", &serde_json::to_value(json).unwrap());
}
