//! Zero-downtime swap drill — CI's `swap-smoke` gate.
//!
//! Boots a self-hosted sharded server, drives keep-alive interpret
//! traffic from `--conns` clients, and performs `--swaps` model swaps
//! *while the traffic is running*. The gate is strict:
//!
//! * serving traffic must see **zero 5xx** across every swap,
//! * every client must observe the generation advance (old and new
//!   `X-Model-Generation` values on the same persistent connection),
//! * the final `/v1/config` generation must be `1 + swaps`.
//!
//! The chaos arm (`--expect-swap-failures`, paired with
//! `--failpoints serve.swap.commit=always`) inverts the swap gate:
//! every swap must fail with a typed 5xx on the admin endpoint, the
//! generation must never move, and serving traffic must *still* see
//! zero 5xx — proving commit-stage rollback is invisible to callers.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use explainti_sync::{classes, OrderedMutex};
use std::time::Duration;

use explainti_api::PredictRequest;
use explainti_core::{ExplainTi, ExplainTiConfig};
use explainti_corpus::{generate_wiki, Dataset, WikiConfig};
use explainti_serve::{start, ServeConfig};
use serde_json::json;

const USAGE: &str = "\
swapdrill — zero-downtime model-swap drill for the ExplainTI server

  --conns N               keep-alive serving clients (default 4)
  --phase-s S             seconds of traffic between swaps (default 2)
  --workers N             prediction workers (default 2)
  --shards N              store shards for the boot model (default 4)
  --replicas N            replicas per sample (default 2)
  --swaps N               swaps driven under load (default 2)
  --failpoints SPEC       arm failpoints before the first swap,
                          e.g. 'serve.swap.commit=always'
  --expect-swap-failures  chaos arm: every swap must FAIL (5xx) while
                          serving stays clean and the generation holds
  --out PATH              write the JSON report here as well as stdout
";

struct Args {
    conns: usize,
    phase_s: u64,
    workers: usize,
    shards: usize,
    replicas: usize,
    swaps: usize,
    failpoints: Option<String>,
    expect_swap_failures: bool,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        conns: 4,
        phase_s: 2,
        workers: 2,
        shards: 4,
        replicas: 2,
        swaps: 2,
        failpoints: None,
        expect_swap_failures: false,
        out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    let int = |s: String, flag: &str| s.parse::<usize>().map_err(|e| format!("{flag}: {e}"));
    while i < argv.len() {
        match argv[i].as_str() {
            "--conns" => args.conns = int(value(&mut i)?, "--conns")?,
            "--phase-s" => args.phase_s = int(value(&mut i)?, "--phase-s")? as u64,
            "--workers" => args.workers = int(value(&mut i)?, "--workers")?,
            "--shards" => args.shards = int(value(&mut i)?, "--shards")?,
            "--replicas" => args.replicas = int(value(&mut i)?, "--replicas")?,
            "--swaps" => args.swaps = int(value(&mut i)?, "--swaps")?,
            "--failpoints" => args.failpoints = Some(value(&mut i)?),
            "--expect-swap-failures" => args.expect_swap_failures = true,
            "--out" => args.out = Some(value(&mut i)?),
            "--help" | "-h" => {
                eprint!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
        i += 1;
    }
    if args.conns == 0 || args.swaps == 0 {
        return Err("--conns and --swaps must be at least 1".to_string());
    }
    Ok(args)
}

fn tiny(seed: u64, shards: usize, replicas: usize) -> (ExplainTi, Dataset) {
    let d = generate_wiki(&WikiConfig { num_tables: 16, seed, ..Default::default() });
    let cfg = ExplainTiConfig::bert_like(2048, 32).with_store_layout(shards, replicas);
    let mut m = ExplainTi::new(&d, cfg);
    for t in 0..m.tasks().len() {
        m.refresh_store(t);
    }
    (m, d)
}

/// Saves a fresh tiny model to a scratch dir — one valid swap candidate
/// per requested swap, each from a distinct corpus seed.
fn candidate_dirs(swaps: usize) -> Vec<std::path::PathBuf> {
    (0..swaps)
        .map(|i| {
            let seed = 100 + i as u64;
            let dir = std::env::temp_dir()
                .join(format!("explainti-swapdrill-{seed}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let (model, dataset) = tiny(seed, 1, 1);
            model.save_to_dir(&dir, &dataset).expect("save swap candidate");
            dir
        })
        .collect()
}

/// Serving-side tallies, merged across all keep-alive clients.
#[derive(Default)]
struct Tally {
    requests: u64,
    server_5xx: u64,
    statuses: BTreeMap<u16, u64>,
    generations: BTreeSet<u64>,
    reconnects: u64,
    transport_errors: u64,
}

/// Reads one `Content-Length`-framed response off a persistent stream,
/// leaving pipelined leftovers in `buf`. Returns (status, generation).
fn read_one(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Result<(u16, Option<u64>), String> {
    let mut fill = |buf: &mut Vec<u8>| -> Result<(), String> {
        let mut scratch = [0u8; 8192];
        let n = stream.read(&mut scratch).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-response".to_string());
        }
        buf.extend_from_slice(&scratch[..n]);
        Ok(())
    };
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        fill(buf)?;
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    buf.drain(..head_end + 4);
    let status: u16 =
        head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
            format!("unparseable head: {:?}", head.chars().take(80).collect::<String>())
        })?;
    let header = |name: &str| {
        head.lines()
            .filter_map(|l| l.split_once(':'))
            .find(|(k, _)| k.trim().eq_ignore_ascii_case(name))
            .map(|(_, v)| v.trim().to_string())
    };
    let generation = header("x-model-generation").and_then(|v| v.parse().ok());
    let content_length: usize = header("content-length")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| "response without Content-Length on a keep-alive stream".to_string())?;
    while buf.len() < content_length {
        fill(buf)?;
    }
    buf.drain(..content_length);
    Ok((status, generation))
}

/// One keep-alive client: POSTs interpret payloads until `stop`,
/// reconnecting (and counting it) when the server closes the socket.
fn client_loop(addr: SocketAddr, payloads: Arc<Vec<String>>, stop: Arc<AtomicBool>) -> Tally {
    let mut tally = Tally::default();
    let mut stream: Option<TcpStream> = None;
    let mut buf = Vec::new();
    let mut n = 0usize;
    // ORDERING: Relaxed — lone stop flag; the drill joins the driver
    // threads before reading results.
    while !stop.load(Ordering::Relaxed) {
        let s = match &mut stream {
            Some(s) => s,
            None => {
                buf.clear();
                match TcpStream::connect_timeout(&addr, Duration::from_secs(5)) {
                    Ok(s) => {
                        let _ = s.set_read_timeout(Some(Duration::from_secs(30)));
                        stream.insert(s)
                    }
                    Err(_) => {
                        tally.transport_errors += 1;
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    }
                }
            }
        };
        let body = &payloads[n % payloads.len()];
        n += 1;
        let msg = format!(
            "POST /v1/interpret HTTP/1.1\r\nHost: swapdrill\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let outcome = s
            .write_all(msg.as_bytes())
            .map_err(|e| e.to_string())
            .and_then(|()| read_one(s, &mut buf));
        match outcome {
            Ok((status, generation)) => {
                tally.requests += 1;
                *tally.statuses.entry(status).or_insert(0) += 1;
                if status >= 500 {
                    tally.server_5xx += 1;
                }
                if let Some(g) = generation {
                    tally.generations.insert(g);
                }
            }
            Err(_) => {
                // Mid-stream close: reconnect and keep going. Swap
                // commits must NOT cause these in steady state, but a
                // benign server-side keep-alive cap would.
                tally.reconnects += 1;
                stream = None;
            }
        }
    }
    tally
}

/// One `Connection: close` admin exchange. Returns (status, body).
fn admin(addr: &SocketAddr, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect_timeout(addr, Duration::from_secs(10)).map_err(|e| e.to_string())?;
    let msg = format!(
        "{method} {path} HTTP/1.1\r\nHost: swapdrill\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(msg.as_bytes()).map_err(|e| e.to_string())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(|e| e.to_string())?;
    let status: u16 =
        raw.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
            format!("unparseable response: {:?}", raw.chars().take(80).collect::<String>())
        })?;
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Ok((status, body))
}

fn build_payloads() -> Vec<String> {
    let d = generate_wiki(&WikiConfig { num_tables: 24, seed: 0x5a9, ..Default::default() });
    let mut payloads = Vec::new();
    for table in &d.collection.tables {
        for col in &table.columns {
            if col.cells.is_empty() {
                continue;
            }
            let req = PredictRequest {
                title: table.title.clone(),
                header: col.header.clone(),
                cells: col.cells.iter().take(4).cloned().collect(),
            };
            if let Ok(body) = serde_json::to_string(&req) {
                payloads.push(body);
            }
        }
    }
    payloads
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("swapdrill: {e}");
            std::process::exit(2);
        }
    };
    explainti_obs::set_level(explainti_obs::Level::Info);

    let candidates = candidate_dirs(args.swaps);
    eprintln!("[saved {} swap candidate(s)]", candidates.len());

    let (model, dataset) = tiny(4242, args.shards, args.replicas);
    let labels = dataset.collection.type_labels.clone();
    let serve_cfg = ServeConfig {
        workers: args.workers.max(1),
        queue_cap: 256,
        max_batch: 8,
        cache_cap: 512,
        deadline_ms: 60_000,
        shards: args.shards,
        replicas: args.replicas,
        ..Default::default()
    };
    let handle = start(Arc::new(model), labels, serve_cfg).expect("self-hosted server");
    let addr = handle.addr();
    eprintln!(
        "[serving on {addr} — {} shard(s) x{} replica(s), {} worker(s)]",
        args.shards,
        args.replicas,
        args.workers.max(1)
    );

    if let Some(spec) = &args.failpoints {
        match explainti_faults::configure_from_spec(spec) {
            Ok(n) => eprintln!("[armed {n} failpoint(s): {spec}]"),
            Err(e) => {
                eprintln!("swapdrill: bad --failpoints: {e}");
                std::process::exit(2);
            }
        }
    }

    // -- Keep-alive serving traffic, running across every swap -------------
    let payloads = Arc::new(build_payloads());
    assert!(!payloads.is_empty(), "payload corpus is empty");
    let stop = Arc::new(AtomicBool::new(false));
    let tallies = Arc::new(OrderedMutex::new(&classes::BENCH_SWAP_TALLIES, Vec::<Tally>::new()));
    let clients: Vec<_> = (0..args.conns)
        .map(|_| {
            let (payloads, stop, tallies) =
                (Arc::clone(&payloads), Arc::clone(&stop), Arc::clone(&tallies));
            std::thread::spawn(move || {
                let tally = client_loop(addr, payloads, stop);
                tallies.lock().push(tally);
            })
        })
        .collect();

    let phase = Duration::from_secs(args.phase_s.max(1));
    std::thread::sleep(phase); // steady-state traffic on the boot generation

    // -- Swaps under load ---------------------------------------------------
    let mut swap_results = Vec::new();
    for (i, dir) in candidates.iter().enumerate() {
        let body = format!(
            r#"{{"model_dir":{}}}"#,
            serde_json::to_string(&dir.display().to_string()).unwrap_or_default()
        );
        let result = admin(&addr, "POST", "/v1/admin/swap", &body);
        match &result {
            Ok((status, body)) => eprintln!("[swap {}/{}: {status} {body}]", i + 1, args.swaps),
            Err(e) => eprintln!("[swap {}/{}: transport error {e}]", i + 1, args.swaps),
        }
        swap_results.push(result);
        std::thread::sleep(phase);
    }

    // ORDERING: Relaxed — lone stop flag, joined below.
    stop.store(true, Ordering::Relaxed);
    for c in clients {
        let _ = c.join();
    }

    // -- Final generation from /v1/config -----------------------------------
    let final_generation = admin(&addr, "GET", "/v1/config", "")
        .ok()
        .filter(|(status, _)| *status == 200)
        .and_then(|(_, body)| serde_json::from_str::<explainti_api::ConfigResponse>(&body).ok())
        .map(|cfg| cfg.model.generation);
    handle.shutdown();

    // -- Merge tallies and gate ---------------------------------------------
    let mut total = Tally::default();
    for t in tallies.lock().iter() {
        total.requests += t.requests;
        total.server_5xx += t.server_5xx;
        total.reconnects += t.reconnects;
        total.transport_errors += t.transport_errors;
        for (s, n) in &t.statuses {
            *total.statuses.entry(*s).or_insert(0) += n;
        }
        total.generations.extend(t.generations.iter().copied());
    }

    let mut failures = Vec::new();
    if total.requests == 0 {
        failures.push("no serving traffic completed".to_string());
    }
    if total.server_5xx > 0 {
        failures.push(format!("serving traffic saw {} 5xx responses", total.server_5xx));
    }
    if args.expect_swap_failures {
        for (i, r) in swap_results.iter().enumerate() {
            match r {
                Ok((status, _)) if *status >= 500 => {}
                Ok((status, _)) => {
                    failures.push(format!("swap {} answered {status}, expected a 5xx", i + 1))
                }
                Err(e) => failures.push(format!("swap {} transport error: {e}", i + 1)),
            }
        }
        if final_generation != Some(1) {
            failures.push(format!("generation moved to {final_generation:?} despite failed swaps"));
        }
        if total.generations.iter().any(|g| *g != 1) {
            failures.push(format!(
                "serving traffic observed generations {:?}, expected only 1",
                total.generations
            ));
        }
    } else {
        for (i, r) in swap_results.iter().enumerate() {
            match r {
                Ok((200, _)) => {}
                Ok((status, body)) => {
                    failures.push(format!("swap {} answered {status}: {body}", i + 1))
                }
                Err(e) => failures.push(format!("swap {} transport error: {e}", i + 1)),
            }
        }
        let expected = 1 + args.swaps as u64;
        if final_generation != Some(expected) {
            failures.push(format!("final generation is {final_generation:?}, expected {expected}"));
        }
        if total.generations.len() < 2 {
            failures.push(format!(
                "serving traffic observed generations {:?}, expected the swap to be visible",
                total.generations
            ));
        }
    }

    let swap_statuses = swap_results
        .iter()
        .map(|r| match r {
            Ok((status, _)) => json!(status),
            Err(e) => json!({ "transport_error": e }),
        })
        .collect::<Vec<_>>();
    let status_counts =
        total.statuses.iter().map(|(s, n)| (s.to_string(), *n)).collect::<BTreeMap<_, _>>();
    let serving = json!({
        "requests": total.requests,
        "server_5xx": total.server_5xx,
        "statuses": status_counts,
        "generations_observed": total.generations.iter().copied().collect::<Vec<_>>(),
        "reconnects": total.reconnects,
        "transport_errors": total.transport_errors,
    });
    let report = json!({
        "mode": if args.expect_swap_failures { "chaos" } else { "normal" },
        "conns": args.conns,
        "shards": args.shards,
        "replicas": args.replicas,
        "swaps_requested": args.swaps,
        "swap_statuses": swap_statuses,
        "serving": serving,
        "final_generation": final_generation,
        "failures": failures,
        "pass": failures.is_empty(),
    });
    let pretty = serde_json::to_string_pretty(&report).unwrap_or_default();
    println!("{pretty}");
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &pretty) {
            eprintln!("swapdrill: writing {path}: {e}");
        }
    }

    for dir in &candidates {
        let _ = std::fs::remove_dir_all(dir);
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("swapdrill: GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
    eprintln!("swapdrill: gate passed — zero serving 5xx across {} swap(s)", args.swaps);
}
