//! Reproduces **Table V** — efficiency analysis: training and test time
//! of Base (no explainable modules), Base+LE, Base+GE, Base+SE, and full
//! ExplainTI on Wiki-Type, Wiki-Relation and Git-Type.
//!
//! Expected shape: LE and SE barely increase training time, GE adds the
//! most (store refresh + retrieval); every module adds seconds of test
//! time; full ExplainTI pays the sum.

use explainti_bench::{explainti_config, git_dataset, scale, wiki_dataset, write_json};
use explainti_core::{ExplainTi, ExplainTiConfig, TaskKind};
use explainti_corpus::Dataset;
use explainti_encoder::Variant;
use explainti_metrics::{fmt_duration, report::TextTable};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

fn variant_cfg(base: ExplainTiConfig, le: bool, ge: bool, se: bool) -> ExplainTiConfig {
    let mut cfg = base;
    cfg.use_le = le;
    cfg.use_ge = ge;
    cfg.use_se = se;
    cfg
}

/// Train + test wall clock per task for one configuration.
fn measure(dataset: &Dataset, cfg: ExplainTiConfig) -> Vec<(TaskKind, Duration, Duration)> {
    let mut m = ExplainTi::new(dataset, cfg);
    let report = m.train();
    let kinds: Vec<TaskKind> = m.tasks().iter().map(|t| t.data.kind).collect();
    let mut out = Vec::new();
    for kind in kinds {
        let train_time: Duration =
            report.epochs.iter().filter(|e| e.task == kind).map(|e| e.elapsed).sum();
        // Test time = producing predictions WITH explanations over the
        // test split, which is what the paper's Table V charges each
        // explainable module for.
        let test_idx = {
            let task = m.task_index(kind).unwrap();
            m.tasks()[task].data.test_idx.clone()
        };
        let t0 = Instant::now();
        for idx in test_idx {
            let _ = m.predict(kind, idx);
        }
        out.push((kind, train_time, t0.elapsed()));
    }
    out
}

fn main() {
    let s = scale();
    println!("Table V — efficiency analysis  [scale {s}]");
    let wiki = wiki_dataset(s);
    let git = git_dataset(s);

    let configs: [(&str, bool, bool, bool); 5] = [
        ("Base", false, false, false),
        ("Base+LE", true, false, false),
        ("Base+GE", false, true, false),
        ("Base+SE", false, false, true),
        ("ExplainTI", true, true, true),
    ];

    // method -> column -> (train, test)
    let mut cells: BTreeMap<&str, BTreeMap<String, (Duration, Duration)>> = BTreeMap::new();
    for (name, le, ge, se) in configs {
        eprintln!("[table5] {name}");
        let base = explainti_config(Variant::BertLike, s);
        for (dataset, prefix) in [(&wiki, "Wiki"), (&git, "Git")] {
            let results = measure(dataset, variant_cfg(base.clone(), le, ge, se));
            for (kind, train, test) in results {
                let col = format!(
                    "{prefix}-{}",
                    match kind {
                        TaskKind::Type => "Type",
                        TaskKind::Relation => "Relation",
                    }
                );
                cells.entry(name).or_default().insert(col, (train, test));
            }
        }
    }

    let columns = ["Wiki-Type", "Wiki-Relation", "Git-Type"];
    let mut header = vec!["Method".to_string()];
    for c in columns {
        header.push(format!("{c} train"));
        header.push(format!("{c} test"));
    }
    let mut t = TextTable::new(header);
    let mut json = BTreeMap::new();
    for (name, _, _, _) in configs {
        let row_data = &cells[name];
        let mut row = vec![name.to_string()];
        let mut jrow = BTreeMap::new();
        for c in columns {
            match row_data.get(c) {
                Some((train, test)) => {
                    row.push(fmt_duration(*train));
                    row.push(fmt_duration(*test));
                    jrow.insert(c, (train.as_secs_f64(), test.as_secs_f64()));
                }
                None => {
                    row.push("-".into());
                    row.push("-".into());
                }
            }
        }
        t.row(row);
        json.insert(name, serde_json::to_value(jrow).unwrap());
    }
    println!("{}", t.render());
    write_json("table5", &serde_json::to_value(json).unwrap());
}
