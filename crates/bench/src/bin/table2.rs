//! Reproduces **Table II** — statistics of the datasets.
//!
//! Paper row (WikiTable): 462,676 tables, 12.4 avg rows, 1.7 avg cols,
//! 255/121 labels. Paper row (GitTable): 12,200 tables, 152.9 avg rows,
//! 4.0 avg cols, 1,141 labels. The synthetic corpora keep the *ratios*
//! (cols per table, label skew, Web-vs-DB contrast) at laptop scale;
//! absolute counts follow `EXPLAINTI_SCALE`.

use explainti_bench::{git_dataset, scale, wiki_dataset, write_json};
use explainti_metrics::report::TextTable;

fn main() {
    let s = scale();
    println!("Table II — statistics of the (synthetic) datasets  [scale {s}]");
    let wiki = wiki_dataset(s);
    let git = git_dataset(s);

    let mut t = TextTable::new([
        "Name",
        "type",
        "# tables",
        "Avg. # rows",
        "Avg. # cols",
        "# labels",
        "# type samples",
        "# rel samples",
    ]);
    let mut rows_json = Vec::new();
    for d in [&wiki, &git] {
        let st = d.statistics();
        let labels = if st.num_relation_labels > 0 {
            format!("{}/{}", st.num_type_labels, st.num_relation_labels)
        } else {
            st.num_type_labels.to_string()
        };
        t.row([
            st.name.clone(),
            if st.name.starts_with("wiki") {
                "Web tables".into()
            } else {
                "database tables".into()
            },
            st.num_tables.to_string(),
            format!("{:.1}", st.avg_rows),
            format!("{:.1}", st.avg_cols),
            labels,
            st.num_type_samples.to_string(),
            st.num_relation_samples.to_string(),
        ]);
        rows_json.push(serde_json::to_value(&st).unwrap());
    }
    println!("{}", t.render());
    write_json("table2", &serde_json::Value::Array(rows_json));
}
