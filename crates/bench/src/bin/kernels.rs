//! Kernel microbench — times the blocked matmul kernels and the batched
//! CLS-embedding path at 1 thread vs N threads, writes
//! `BENCH_kernels.json`, and **exits non-zero if the parallel results
//! diverge from the serial ones** (they are designed to be
//! byte-identical, so any divergence is a kernel bug, not noise).
//!
//! The speedup numbers are honest: `available_parallelism` is recorded
//! alongside them, and on a single-core container the parallel runs are
//! expected to show overhead, not gains — CI's `bench-smoke` job runs
//! this on a multi-core runner where the ≥2× target is measurable.

use explainti_bench::{write_json, MAX_SEQ, VOCAB_CAP};
use explainti_core::{build_tokenizer, TaskData};
use explainti_corpus::{generate_wiki, WikiConfig};
use explainti_encoder::{EncoderConfig, TransformerEncoder};
use explainti_nn::{ParamStore, Tensor};
use explainti_pool::ThreadPool;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde_json::json;
use std::time::Instant;

/// Best-of-`reps` wall time in milliseconds.
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t = Instant::now();
        last = Some(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (best, last.expect("reps >= 1"))
}

fn random_tensor(rows: usize, cols: usize, rng: &mut SmallRng) -> Tensor {
    Tensor::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Benchmark the width CI cares about even on narrower machines; the
    // JSON records both numbers so a 1-core container's "speedup" of
    // < 1 is interpretable rather than alarming.
    let par_threads = cores.max(4);
    println!("kernel microbench — 1 thread vs {par_threads} ({cores} cores available)");

    let pool1 = ThreadPool::new(1);
    let pool_n = ThreadPool::new(par_threads);
    let mut rng = SmallRng::seed_from_u64(0xbe9c);
    let mut diverged = false;

    // -- Blocked matmul ---------------------------------------------------
    // Several shapes so a flat speedup is diagnosable from the artifact
    // alone: ns/flop separates "kernel got slower" from "problem too
    // small to amortise fan-out", and thread efficiency (speedup over
    // thread count) shows how far from linear the scaling sits.
    let mut matmul_shapes = Vec::new();
    for (m, k, n) in [(96usize, 128usize, 96usize), (192, 256, 192), (384, 256, 384)] {
        let a = random_tensor(m, k, &mut rng);
        let b = random_tensor(k, n, &mut rng);
        let (naive_ms, reference) = time_ms(5, || a.matmul_naive(&b));
        let (serial_ms, serial) = time_ms(5, || a.matmul_in(&b, &pool1));
        let (parallel_ms, parallel) = time_ms(5, || a.matmul_in(&b, &pool_n));
        if serial
            .as_slice()
            .iter()
            .zip(parallel.as_slice())
            .any(|(x, y)| x.to_bits() != y.to_bits())
        {
            eprintln!("FAIL: parallel matmul {m}x{k}x{n} diverges from serial");
            diverged = true;
        }
        let worst_err = serial
            .as_slice()
            .iter()
            .zip(reference.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        if worst_err > 1e-3 {
            eprintln!("FAIL: blocked matmul drifts from the naive reference by {worst_err}");
            diverged = true;
        }
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        let speedup = serial_ms / parallel_ms;
        println!(
            "matmul {m}x{k}x{n}:  naive {naive_ms:.2} ms | blocked@1 {serial_ms:.2} ms | \
             blocked@{par_threads} {parallel_ms:.2} ms | speedup {speedup:.2}x | \
             eff {:.2}",
            speedup / par_threads as f64
        );
        matmul_shapes.push(json!({
            "shape": json!([m, k, n]),
            "flops": flops,
            "naive_ms": naive_ms,
            "blocked_serial_ms": serial_ms,
            "blocked_parallel_ms": parallel_ms,
            "ns_per_flop_naive": naive_ms * 1e6 / flops,
            "ns_per_flop_serial": serial_ms * 1e6 / flops,
            "ns_per_flop_parallel": parallel_ms * 1e6 / flops,
            "speedup": speedup,
            "thread_efficiency": speedup / par_threads as f64,
        }));
    }

    // -- Batched CLS embedding (the serving hot path) ---------------------
    let dataset = generate_wiki(&WikiConfig { num_tables: 60, seed: 777, ..Default::default() });
    let tokenizer = build_tokenizer(&dataset, VOCAB_CAP);
    let cfg = EncoderConfig::bert_like(tokenizer.vocab_size(), MAX_SEQ);
    let mut store = ParamStore::new();
    let encoder = TransformerEncoder::new(&mut store, cfg, &mut rng);
    let type_data = TaskData::prepare_type(&dataset, &tokenizer, MAX_SEQ, false);
    let encs: Vec<_> = type_data.samples.iter().take(48).map(|s| s.encoded.clone()).collect();
    let batch = encs.len();

    explainti_pool::configure(1);
    let (embed_serial_ms, embeds_serial) =
        time_ms(3, || encoder.embed_cls_batch(&store, &encs, &mut rng.clone()));
    explainti_pool::configure(par_threads);
    let (embed_parallel_ms, embeds_parallel) =
        time_ms(3, || encoder.embed_cls_batch(&store, &encs, &mut rng.clone()));
    explainti_pool::configure(explainti_pool::Threads::resolve(None).get());
    if embeds_serial != embeds_parallel {
        eprintln!("FAIL: parallel embed_cls_batch diverges from serial");
        diverged = true;
    }
    let embed_speedup = embed_serial_ms / embed_parallel_ms;
    println!(
        "embed_cls_batch x{batch}:  1 thread {embed_serial_ms:.2} ms | \
         {par_threads} threads {embed_parallel_ms:.2} ms | speedup {embed_speedup:.2}x"
    );

    let summary = json!({
        "available_parallelism": cores,
        "threads_parallel": par_threads,
        "matmul": json!(matmul_shapes),
        "embed_cls_batch": json!({
            "batch": batch,
            "max_seq": MAX_SEQ,
            "serial_ms": embed_serial_ms,
            "parallel_ms": embed_parallel_ms,
            "speedup": embed_speedup,
            "thread_efficiency": embed_speedup / par_threads as f64,
        }),
        "parallel_matches_serial": !diverged,
    });
    write_json("BENCH_kernels", &summary);
    if let Ok(text) = serde_json::to_string_pretty(&summary) {
        let _ = std::fs::write("BENCH_kernels.json", text);
        eprintln!("[saved \"BENCH_kernels.json\"]");
    }

    if diverged {
        std::process::exit(1);
    }
}
