//! Kernel microbench — times four matmul arms per shape (naive,
//! forced-scalar packed, runtime-dispatched SIMD, int8 quantized) plus
//! the batched CLS-embedding path at 1 thread vs N threads, writes
//! `BENCH_kernels.json`, and **exits non-zero** when
//!
//! - the parallel results diverge bytewise from the serial ones,
//! - the SIMD arm's bytes differ from the forced-scalar fallback's
//!   (they are designed bitwise-equal — divergence is a kernel bug), or
//! - the host dispatches AVX2 but `simd_speedup` (forced-scalar time
//!   over SIMD time, serial) lands under 1.2× on the two largest shapes.
//!
//! The JSON records which dispatch tier (`avx2`/`neon`/`scalar`)
//! actually ran, so a flat speedup on a scalar-only container is
//! interpretable from the artifact alone rather than alarming.

use explainti_bench::{write_json, MAX_SEQ, VOCAB_CAP};
use explainti_core::{build_tokenizer, TaskData};
use explainti_corpus::{generate_wiki, WikiConfig};
use explainti_encoder::{EncoderConfig, TransformerEncoder};
use explainti_nn::simd::{self, SimdTier};
use explainti_nn::{qmatmul_into, ParamStore, QuantizedMatrix, Tensor};
use explainti_pool::ThreadPool;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde_json::json;
use std::time::Instant;

/// The forced-scalar / SIMD speedup floor enforced on AVX2 hosts, on
/// the gate shapes (the two largest).
const SIMD_SPEEDUP_FLOOR: f64 = 1.2;

/// Best-of-`reps` wall time in milliseconds.
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t = Instant::now();
        last = Some(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (best, last.expect("reps >= 1"))
}

fn random_tensor(rows: usize, cols: usize, rng: &mut SmallRng) -> Tensor {
    Tensor::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
}

fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Benchmark the width CI cares about even on narrower machines; the
    // JSON records both numbers so a 1-core container's "speedup" of
    // < 1 is interpretable rather than alarming.
    let par_threads = cores.max(4);
    simd::reset_tier();
    let tier = simd::tier();
    println!(
        "kernel microbench — dispatch tier {} — 1 thread vs {par_threads} ({cores} cores)",
        tier.name()
    );

    let pool1 = ThreadPool::new(1);
    let pool_n = ThreadPool::new(par_threads);
    let mut rng = SmallRng::seed_from_u64(0xbe9c);
    let mut failed = false;

    // -- Matmul arms ------------------------------------------------------
    // Several shapes so a flat speedup is diagnosable from the artifact
    // alone: ns/flop separates "kernel got slower" from "problem too
    // small to amortise fan-out". The last GATE_SHAPES entries carry the
    // AVX2 speedup floor.
    const SHAPES: [(usize, usize, usize); 3] = [(96, 128, 96), (192, 256, 192), (384, 256, 384)];
    const GATE_SHAPES: usize = 2;
    let mut matmul_shapes = Vec::new();
    for (which, &(m, k, n)) in SHAPES.iter().enumerate() {
        let a = random_tensor(m, k, &mut rng);
        let b = random_tensor(k, n, &mut rng);

        let (naive_ms, reference) = time_ms(5, || a.matmul_naive(&b));
        simd::force_tier(SimdTier::Scalar);
        let (scalar_ms, scalar_out) = time_ms(5, || a.matmul_in(&b, &pool1));
        simd::force_tier(tier);
        let (simd_ms, serial) = time_ms(5, || a.matmul_in(&b, &pool1));
        let (parallel_ms, parallel) = time_ms(5, || a.matmul_in(&b, &pool_n));
        simd::reset_tier();

        // int8 arm: weights quantized once (as serving does), activations
        // per call.
        let wt = QuantizedMatrix::from_tensor_transposed(&b);
        let mut xq = vec![0i8; k.max(1)];
        let mut qout = vec![0.0f32; m * n];
        let (quant_ms, ()) = time_ms(5, || qmatmul_into(&a, &wt, None, &mut xq, &mut qout));

        if !bits_equal(&serial, &parallel) {
            eprintln!("FAIL: parallel matmul {m}x{k}x{n} diverges from serial");
            failed = true;
        }
        if !bits_equal(&serial, &scalar_out) {
            eprintln!(
                "FAIL: {} matmul {m}x{k}x{n} is not bitwise-equal to the scalar fallback",
                tier.name()
            );
            failed = true;
        }
        let worst_err = serial
            .as_slice()
            .iter()
            .zip(reference.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        if worst_err > 1e-3 {
            eprintln!("FAIL: packed matmul drifts from the naive reference by {worst_err}");
            failed = true;
        }
        let quant_err = qout
            .iter()
            .zip(reference.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        // Per-row int8 on K≤256 reductions of [-1,1) values: ~0.05 abs.
        if quant_err > 0.25 {
            eprintln!("FAIL: quantized matmul drifts from the reference by {quant_err}");
            failed = true;
        }

        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        let simd_speedup = scalar_ms / simd_ms;
        let naive_speedup = naive_ms / simd_ms;
        let par_speedup = simd_ms / parallel_ms;
        let gated = which + GATE_SHAPES >= SHAPES.len();
        if gated && tier == SimdTier::Avx2 && simd_speedup < SIMD_SPEEDUP_FLOOR {
            eprintln!(
                "FAIL: avx2 simd_speedup {simd_speedup:.2}x < {SIMD_SPEEDUP_FLOOR}x \
                 on gate shape {m}x{k}x{n}"
            );
            failed = true;
        }
        println!(
            "matmul {m}x{k}x{n}:  naive {naive_ms:.2} ms | scalar@1 {scalar_ms:.2} ms | \
             {}@1 {simd_ms:.2} ms | {}@{par_threads} {parallel_ms:.2} ms | int8 {quant_ms:.2} ms \
             | simd {simd_speedup:.2}x | vs-naive {naive_speedup:.2}x",
            tier.name(),
            tier.name()
        );
        matmul_shapes.push(json!({
            "shape": json!([m, k, n]),
            "flops": flops,
            "dispatch_tier": tier.name(),
            "naive_ms": naive_ms,
            "scalar_serial_ms": scalar_ms,
            "simd_serial_ms": simd_ms,
            "simd_parallel_ms": parallel_ms,
            "quantized_ms": quant_ms,
            "ns_per_flop_naive": naive_ms * 1e6 / flops,
            "ns_per_flop_scalar": scalar_ms * 1e6 / flops,
            "ns_per_flop_simd": simd_ms * 1e6 / flops,
            "simd_speedup": simd_speedup,
            "simd_speedup_vs_naive": naive_speedup,
            "quantized_speedup_vs_naive": naive_ms / quant_ms,
            "parallel_speedup": par_speedup,
            "thread_efficiency": par_speedup / par_threads as f64,
            "quantized_max_abs_err": quant_err,
            "speedup_gated": gated,
        }));
    }

    // -- Batched CLS embedding (the serving hot path) ---------------------
    let dataset = generate_wiki(&WikiConfig { num_tables: 60, seed: 777, ..Default::default() });
    let tokenizer = build_tokenizer(&dataset, VOCAB_CAP);
    let cfg = EncoderConfig::bert_like(tokenizer.vocab_size(), MAX_SEQ);
    let mut store = ParamStore::new();
    let encoder = TransformerEncoder::new(&mut store, cfg, &mut rng);
    let type_data = TaskData::prepare_type(&dataset, &tokenizer, MAX_SEQ, false);
    let encs: Vec<_> = type_data.samples.iter().take(48).map(|s| s.encoded.clone()).collect();
    let batch = encs.len();

    explainti_pool::configure(1);
    let (embed_serial_ms, embeds_serial) =
        time_ms(3, || encoder.embed_cls_batch(&store, &encs, &mut rng.clone()));
    explainti_pool::configure(par_threads);
    let (embed_parallel_ms, embeds_parallel) =
        time_ms(3, || encoder.embed_cls_batch(&store, &encs, &mut rng.clone()));
    explainti_pool::configure(explainti_pool::Threads::resolve(None).get());
    if embeds_serial != embeds_parallel {
        eprintln!("FAIL: parallel embed_cls_batch diverges from serial");
        failed = true;
    }
    let embed_speedup = embed_serial_ms / embed_parallel_ms;
    println!(
        "embed_cls_batch x{batch}:  1 thread {embed_serial_ms:.2} ms | \
         {par_threads} threads {embed_parallel_ms:.2} ms | speedup {embed_speedup:.2}x"
    );

    let summary = json!({
        "available_parallelism": cores,
        "threads_parallel": par_threads,
        "dispatch_tier": tier.name(),
        "simd_speedup_floor": SIMD_SPEEDUP_FLOOR,
        "matmul": json!(matmul_shapes),
        "embed_cls_batch": json!({
            "batch": batch,
            "max_seq": MAX_SEQ,
            "serial_ms": embed_serial_ms,
            "parallel_ms": embed_parallel_ms,
            "speedup": embed_speedup,
            "thread_efficiency": embed_speedup / par_threads as f64,
        }),
        "parallel_matches_serial": !failed,
    });
    write_json("BENCH_kernels", &summary);

    if failed {
        std::process::exit(1);
    }
}
