//! The embedding store `Q` of Algorithm 2.
//!
//! Holds the `E_[CLS]` embedding of every *training* sample, refreshed
//! every few epochs during fine-tuning, and an HNSW index over the stored
//! vectors for `O(log N)` top-K influential-sample retrieval. The SE
//! module reads neighbour embeddings from the same store.

use explainti_ann::{HnswConfig, HnswIndex, Metric, Neighbor, VectorIndex};
use explainti_nn::Tensor;

/// Embedding store with an optional ANN index.
pub struct EmbeddingStore {
    dim: usize,
    embeddings: Vec<Option<Tensor>>,
    labels: Vec<Option<usize>>,
    index: Option<HnswIndex>,
    /// Monotonic version, bumped on every rebuild (diagnostics).
    version: u64,
}

impl EmbeddingStore {
    /// Creates a store for `num_samples` slots of dimension `dim`.
    pub fn new(num_samples: usize, dim: usize) -> Self {
        Self {
            dim,
            embeddings: vec![None; num_samples],
            labels: vec![None; num_samples],
            index: None,
            version: 0,
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Stores (or replaces) the embedding of sample `idx`.
    ///
    /// # Panics
    /// Panics if the embedding is not a `1 x dim` row.
    pub fn set(&mut self, idx: usize, embedding: Tensor, label: usize) {
        assert_eq!(embedding.shape(), (1, self.dim), "embedding shape mismatch");
        self.embeddings[idx] = Some(embedding);
        self.labels[idx] = Some(label);
    }

    /// The stored embedding of sample `idx`, if any.
    pub fn get(&self, idx: usize) -> Option<&Tensor> {
        self.embeddings.get(idx).and_then(Option::as_ref)
    }

    /// Label recorded with the stored embedding.
    pub fn label(&self, idx: usize) -> Option<usize> {
        self.labels.get(idx).and_then(|l| *l)
    }

    /// Whether sample `idx` has a stored embedding.
    pub fn has(&self, idx: usize) -> bool {
        self.get(idx).is_some()
    }

    /// Number of stored embeddings.
    pub fn stored(&self) -> usize {
        self.embeddings.iter().filter(|e| e.is_some()).count()
    }

    /// Rebuild version (increases on every [`Self::rebuild_index`]).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Rebuilds the HNSW index over all stored embeddings. Call after a
    /// refresh pass (every `refresh_epochs` epochs, per the paper).
    pub fn rebuild_index(&mut self) {
        let _span = explainti_obs::span!("store.rebuild_index");
        let mut index = HnswIndex::new(Metric::Cosine, HnswConfig::default());
        for (i, emb) in self.embeddings.iter().enumerate() {
            // Chaos site: abandon the rebuild partway, leaving an index
            // that covers only a prefix of the stored embeddings (what a
            // crash mid-rebuild would produce if the index were mmap'd).
            if explainti_faults::triggered("store.rebuild.partial") {
                break;
            }
            if let Some(e) = emb {
                index.add(i, e.as_slice());
            }
        }
        self.index = Some(index);
        self.version += 1;
        explainti_obs::set_gauge("store.indexed_embeddings", self.stored() as f64);
    }

    /// Top-`k` most similar stored samples to `query`, optionally
    /// excluding one index (the query sample itself during training).
    ///
    /// Uses the HNSW index when built, falling back to a linear scan
    /// otherwise (e.g. right after initialisation).
    pub fn top_k(&self, query: &Tensor, k: usize, exclude: Option<usize>) -> Vec<Neighbor> {
        if k == 0 || self.stored() == 0 {
            return Vec::new();
        }
        let fetch = k + usize::from(exclude.is_some());
        let mut found = match &self.index {
            Some(index) => index.search(query.as_slice(), fetch),
            None => {
                let metric = Metric::Cosine;
                let mut all: Vec<Neighbor> = self
                    .embeddings
                    .iter()
                    .enumerate()
                    .filter_map(|(i, e)| {
                        e.as_ref().map(|e| Neighbor {
                            id: i,
                            similarity: metric.similarity(query.as_slice(), e.as_slice()),
                        })
                    })
                    .collect();
                all.sort_by(|a, b| {
                    b.similarity.partial_cmp(&a.similarity).unwrap_or(std::cmp::Ordering::Equal)
                });
                all.truncate(fetch);
                all
            }
        };
        if let Some(ex) = exclude {
            found.retain(|n| n.id != ex);
        }
        found.truncate(k);
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: Vec<f32>) -> Tensor {
        Tensor::row(v)
    }

    #[test]
    fn set_get_roundtrip() {
        let mut q = EmbeddingStore::new(4, 2);
        q.set(1, row(vec![1.0, 0.0]), 7);
        assert!(q.has(1));
        assert!(!q.has(0));
        assert_eq!(q.label(1), Some(7));
        assert_eq!(q.stored(), 1);
    }

    #[test]
    fn top_k_without_index_falls_back_to_scan() {
        let mut q = EmbeddingStore::new(3, 2);
        q.set(0, row(vec![1.0, 0.0]), 0);
        q.set(1, row(vec![0.0, 1.0]), 1);
        q.set(2, row(vec![0.9, 0.1]), 0);
        let res = q.top_k(&row(vec![1.0, 0.0]), 2, None);
        assert_eq!(res[0].id, 0);
        assert_eq!(res[1].id, 2);
    }

    #[test]
    fn exclusion_drops_the_query_sample() {
        let mut q = EmbeddingStore::new(3, 2);
        q.set(0, row(vec![1.0, 0.0]), 0);
        q.set(1, row(vec![0.99, 0.01]), 0);
        q.rebuild_index();
        let res = q.top_k(&row(vec![1.0, 0.0]), 1, Some(0));
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].id, 1);
    }

    #[test]
    fn rebuild_bumps_version_and_indexes_all() {
        let mut q = EmbeddingStore::new(10, 2);
        for i in 0..10 {
            q.set(i, row(vec![i as f32, 1.0]), i);
        }
        assert_eq!(q.version(), 0);
        q.rebuild_index();
        assert_eq!(q.version(), 1);
        let res = q.top_k(&row(vec![9.0, 1.0]), 3, None);
        assert_eq!(res.len(), 3);
        assert_eq!(res[0].id, 9);
    }

    #[test]
    fn empty_store_returns_nothing() {
        let q = EmbeddingStore::new(5, 3);
        assert!(q.top_k(&row(vec![1.0, 0.0, 0.0]), 4, None).is_empty());
    }
}
