//! The embedding store `Q` of Algorithm 2, sharded for scale.
//!
//! Holds the `E_[CLS]` embedding of every *training* sample, refreshed
//! every few epochs during fine-tuning, plus an HNSW index per shard for
//! `O(log N)` top-K influential-sample retrieval. The SE module reads
//! neighbour embeddings from the same store.
//!
//! Samples are partitioned across N [`StoreShard`]s by a consistent hash
//! (Lamping–Veach jump hash) of the sample id, with each sample written
//! to `replicas` consecutive shards so a single unavailable shard cannot
//! lose retrieval coverage. Top-K queries fan out over the global thread
//! pool and merge per-shard results deterministically (similarity
//! descending, id ascending, first-wins dedup), so the merged list is
//! byte-identical between the single-shard and multi-shard layouts
//! whenever every shard answers exactly — which it does below
//! [`EXACT_SCAN_CUTOFF`], where a brute scan both beats graph traversal
//! and removes the approximation. Past the cutoff, HNSW takes over and
//! the equality becomes a recall property.
//!
//! Shards also support *online* maintenance ([`EmbeddingStore::insert_online`],
//! [`EmbeddingStore::remove`]): inserts land incrementally in the live
//! HNSW graph, deletes tombstone it, and a shard compacts itself once
//! tombstones pass [`COMPACT_RATIO`] of its live set.

use explainti_ann::{HnswConfig, HnswIndex, Metric, Neighbor, VectorIndex};
use explainti_nn::quant::{cosine_q8, QuantEntry};
use explainti_nn::Tensor;
use std::collections::BTreeMap;

/// Tombstone fraction of the live set above which a shard compacts its
/// index in place.
const COMPACT_RATIO: f64 = 0.3;
/// Tombstones below this never trigger compaction (avoids thrashing on
/// tiny shards).
const COMPACT_MIN: usize = 8;
/// Shards at or below this many live entries answer queries with an
/// exact scan even when an index is built: at this size the scan is both
/// faster than graph traversal and exact, which is what makes the
/// N=1 vs N>1 merge byte-identical at seed scale.
const EXACT_SCAN_CUTOFF: usize = 1024;

/// Common interface over explanation-store backends (DESIGN.md §15):
/// the in-process sharded [`EmbeddingStore`] implements it today; a
/// remote/tiered store can slot in behind the same seam.
pub trait ExplanationStore {
    /// Embedding dimensionality.
    fn dim(&self) -> usize;
    /// Stores (or replaces) the embedding of sample `idx` offline; the
    /// index is refreshed on the next [`Self::rebuild_index`].
    fn set(&mut self, idx: usize, embedding: Tensor, label: usize);
    /// Removes sample `idx` from store and index. Returns false when the
    /// sample was not stored.
    fn remove(&mut self, idx: usize) -> bool;
    /// The stored embedding of sample `idx`, if any.
    fn get(&self, idx: usize) -> Option<&Tensor>;
    /// Label recorded with the stored embedding.
    fn label(&self, idx: usize) -> Option<usize>;
    /// Whether sample `idx` has a stored embedding.
    fn has(&self, idx: usize) -> bool {
        self.get(idx).is_some()
    }
    /// Number of distinct stored embeddings (replicas counted once).
    fn stored(&self) -> usize;
    /// Top-`k` most similar stored samples to `query`, optionally
    /// excluding one index (the query sample itself during training).
    fn top_k(&self, query: &Tensor, k: usize, exclude: Option<usize>) -> Vec<Neighbor>;
    /// Rebuilds the per-shard ANN indexes over all stored embeddings.
    fn rebuild_index(&mut self);
}

/// One partition of the store: a `BTreeMap` of live embeddings plus an
/// optional incremental HNSW index over them.
pub struct StoreShard {
    entries: BTreeMap<usize, (Tensor, usize)>,
    /// int8 sidecar mirroring `entries`, maintained on every write so the
    /// quantized GE scoring path never re-quantizes stored vectors.
    q8: BTreeMap<usize, QuantEntry>,
    index: Option<HnswIndex>,
}

impl StoreShard {
    fn new() -> Self {
        Self { entries: BTreeMap::new(), q8: BTreeMap::new(), index: None }
    }

    fn set(&mut self, idx: usize, embedding: Tensor, label: usize) {
        self.q8.insert(idx, QuantEntry::from_f32(embedding.as_slice()));
        self.entries.insert(idx, (embedding, label));
    }

    /// Stores `idx` and inserts it into the live index (if one is built)
    /// without a rebuild; a superseded vector is tombstoned by the index.
    fn insert_online(&mut self, idx: usize, embedding: Tensor, label: usize) {
        if let Some(index) = &mut self.index {
            index.add(idx, embedding.as_slice());
        }
        self.q8.insert(idx, QuantEntry::from_f32(embedding.as_slice()));
        self.entries.insert(idx, (embedding, label));
        self.maybe_compact();
    }

    fn remove(&mut self, idx: usize) -> bool {
        let hit = self.entries.remove(&idx).is_some();
        self.q8.remove(&idx);
        if let Some(index) = &mut self.index {
            index.remove(idx);
        }
        if hit {
            self.maybe_compact();
        }
        hit
    }

    /// Compacts the index once tombstones pass [`COMPACT_RATIO`] of the
    /// live set (and at least [`COMPACT_MIN`] have accumulated).
    fn maybe_compact(&mut self) {
        if let Some(index) = &mut self.index {
            let dead = index.tombstones();
            if dead >= COMPACT_MIN && dead as f64 > COMPACT_RATIO * index.len().max(1) as f64 {
                index.compact();
                explainti_obs::counter!("store.compactions", 1);
            }
        }
    }

    fn stored(&self) -> usize {
        self.entries.len()
    }

    fn tombstones(&self) -> usize {
        self.index.as_ref().map_or(0, HnswIndex::tombstones)
    }

    /// Rebuilds this shard's index. Returns false when the
    /// `store.rebuild.partial` chaos site fired mid-loop, leaving an
    /// index that covers only a prefix of the shard.
    fn rebuild(&mut self) -> bool {
        let mut index = HnswIndex::new(Metric::Cosine, HnswConfig::default());
        for (&idx, (embedding, _)) in &self.entries {
            // Chaos site: abandon the rebuild partway, leaving an index
            // that covers only a prefix of the stored embeddings (what a
            // crash mid-rebuild would produce if the index were mmap'd).
            if explainti_faults::triggered("store.rebuild.partial") {
                self.index = Some(index);
                return false;
            }
            index.add(idx, embedding.as_slice());
        }
        self.index = Some(index);
        true
    }

    /// Up to `fetch` most similar entries in this shard, exact below
    /// [`EXACT_SCAN_CUTOFF`] (or with no index), HNSW above it.
    fn top_k_local(&self, query: &[f32], fetch: usize) -> Vec<Neighbor> {
        if fetch == 0 || self.entries.is_empty() {
            return Vec::new();
        }
        if let Some(index) = &self.index {
            if self.entries.len() > EXACT_SCAN_CUTOFF {
                return index.search(query, fetch);
            }
        }
        let metric = Metric::Cosine;
        let mut all: Vec<Neighbor> = self
            .entries
            .iter()
            .map(|(&id, (e, _))| Neighbor {
                id,
                similarity: metric.similarity(query, e.as_slice()),
            })
            .collect();
        all.sort_by(order_neighbors);
        all.truncate(fetch);
        all
    }

    /// Quantized twin of [`Self::top_k_local`]: scores against the int8
    /// sidecar with [`cosine_q8`]. The HNSW index stays f32, so large
    /// shards (above [`EXACT_SCAN_CUTOFF`]) use the f32 graph for
    /// candidate generation and re-score the candidates in int8 —
    /// candidate recall is the index's property either way.
    fn top_k_local_quantized(
        &self,
        query_f32: &[f32],
        query: &QuantEntry,
        fetch: usize,
    ) -> Vec<Neighbor> {
        if fetch == 0 || self.entries.is_empty() {
            return Vec::new();
        }
        if let Some(index) = &self.index {
            if self.entries.len() > EXACT_SCAN_CUTOFF {
                let mut cands: Vec<Neighbor> = index
                    .search(query_f32, fetch)
                    .into_iter()
                    .filter_map(|nb| {
                        self.q8
                            .get(&nb.id)
                            .map(|e| Neighbor { id: nb.id, similarity: cosine_q8(query, e) })
                    })
                    .collect();
                cands.sort_by(order_neighbors);
                cands.truncate(fetch);
                return cands;
            }
        }
        let mut all: Vec<Neighbor> = self
            .q8
            .iter()
            .map(|(&id, e)| Neighbor { id, similarity: cosine_q8(query, e) })
            .collect();
        all.sort_by(order_neighbors);
        all.truncate(fetch);
        all
    }
}

/// Deterministic neighbour order: similarity descending, id ascending.
fn order_neighbors(a: &Neighbor, b: &Neighbor) -> std::cmp::Ordering {
    b.similarity
        .partial_cmp(&a.similarity)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| a.id.cmp(&b.id))
}

/// Finalizer from splitmix64 — spreads dense sample ids over the key
/// space before the jump hash.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Lamping–Veach jump consistent hash: maps `key` to a bucket in
/// `0..buckets` such that growing the shard count only moves `1/N` of
/// the keys.
fn jump_hash(mut key: u64, buckets: usize) -> usize {
    debug_assert!(buckets >= 1);
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < buckets as i64 {
        b = j;
        key = key.wrapping_mul(2862933555777941757).wrapping_add(1);
        let r = ((key >> 33).wrapping_add(1)) as f64;
        j = ((b.wrapping_add(1)) as f64 * ((1u64 << 31) as f64 / r)) as i64;
    }
    b as usize
}

/// Sharded, replicated embedding store (see module docs).
pub struct EmbeddingStore {
    dim: usize,
    shards: Vec<StoreShard>,
    replicas: usize,
    /// Distinct stored sample count (replicas counted once).
    distinct: usize,
    /// Monotonic version, bumped on every rebuild (diagnostics).
    version: u64,
}

impl EmbeddingStore {
    /// Creates a single-shard store for embeddings of dimension `dim`
    /// (the layout every store had before sharding landed).
    pub fn new(_num_samples: usize, dim: usize) -> Self {
        Self::with_shards(dim, 1, 1)
    }

    /// Creates a store partitioned over `shards` with each sample
    /// written to `replicas` consecutive shards.
    ///
    /// # Panics
    /// Panics unless `1 <= replicas <= shards`.
    pub fn with_shards(dim: usize, shards: usize, replicas: usize) -> Self {
        assert!(shards >= 1, "store needs at least one shard");
        assert!(
            (1..=shards).contains(&replicas),
            "replicas must be in 1..=shards (got {replicas} over {shards})"
        );
        Self {
            dim,
            shards: (0..shards).map(|_| StoreShard::new()).collect(),
            replicas,
            distinct: 0,
            version: 0,
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Replication factor.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Primary shard of sample `idx`.
    fn primary(&self, idx: usize) -> usize {
        jump_hash(mix64(idx as u64), self.shards.len())
    }

    /// The shards holding sample `idx`: the primary plus the next
    /// `replicas - 1` shards (mod N).
    fn targets(&self, idx: usize) -> impl Iterator<Item = usize> {
        let n = self.shards.len();
        let primary = self.primary(idx);
        (0..self.replicas).map(move |r| (primary + r) % n)
    }

    /// Checks the `store.shard.unavailable` chaos site for one shard
    /// query; a tripped shard contributes nothing to the merge and the
    /// replicas are expected to cover for it.
    fn shard_available(&self, _shard: usize) -> bool {
        if explainti_faults::triggered("store.shard.unavailable") {
            explainti_obs::counter!("store.shard.unavailable", 1);
            false
        } else {
            true
        }
    }

    /// True when any shard currently reports unavailable (admin probe;
    /// consumes one `store.shard.unavailable` trigger per shard).
    pub fn probe_unavailable(&self) -> Option<usize> {
        (0..self.shards.len()).find(|&s| !self.shard_available(s))
    }

    /// Per-shard `(stored, tombstones)` sizes, shard order.
    pub fn shard_sizes(&self) -> Vec<(usize, usize)> {
        self.shards.iter().map(|s| (s.stored(), s.tombstones())).collect()
    }

    /// Total tombstones across shards.
    pub fn tombstones(&self) -> usize {
        self.shards.iter().map(StoreShard::tombstones).sum()
    }

    /// Stores (or replaces) the embedding of sample `idx` on every
    /// replica shard. Offline path: the indexes pick the write up on the
    /// next [`Self::rebuild_index`].
    ///
    /// # Panics
    /// Panics if the embedding is not a `1 x dim` row.
    pub fn set(&mut self, idx: usize, embedding: Tensor, label: usize) {
        assert_eq!(embedding.shape(), (1, self.dim), "embedding shape mismatch");
        if !self.shards[self.primary(idx)].entries.contains_key(&idx) {
            self.distinct += 1;
        }
        let targets: Vec<usize> = self.targets(idx).collect();
        for t in targets {
            self.shards[t].set(idx, embedding.clone(), label);
        }
    }

    /// Stores sample `idx` and makes it retrievable immediately: every
    /// replica shard inserts it into its live HNSW graph (no rebuild).
    ///
    /// # Panics
    /// Panics if the embedding is not a `1 x dim` row.
    pub fn insert_online(&mut self, idx: usize, embedding: Tensor, label: usize) {
        assert_eq!(embedding.shape(), (1, self.dim), "embedding shape mismatch");
        if !self.shards[self.primary(idx)].entries.contains_key(&idx) {
            self.distinct += 1;
        }
        let targets: Vec<usize> = self.targets(idx).collect();
        for t in targets {
            self.shards[t].insert_online(idx, embedding.clone(), label);
        }
        explainti_obs::set_gauge("store.tombstones", self.tombstones() as f64);
    }

    /// Removes sample `idx` from every replica shard (tombstoning it in
    /// live indexes). Returns false when the sample was not stored.
    pub fn remove(&mut self, idx: usize) -> bool {
        let targets: Vec<usize> = self.targets(idx).collect();
        let mut hit = false;
        for t in targets {
            hit |= self.shards[t].remove(idx);
        }
        if hit {
            self.distinct -= 1;
        }
        explainti_obs::set_gauge("store.tombstones", self.tombstones() as f64);
        hit
    }

    /// The stored embedding of sample `idx`, if any.
    pub fn get(&self, idx: usize) -> Option<&Tensor> {
        let n = self.shards.len();
        let primary = self.primary(idx);
        (0..self.replicas)
            .map(|r| (primary + r) % n)
            .find_map(|t| self.shards[t].entries.get(&idx).map(|(e, _)| e))
    }

    /// Label recorded with the stored embedding.
    pub fn label(&self, idx: usize) -> Option<usize> {
        let n = self.shards.len();
        let primary = self.primary(idx);
        (0..self.replicas)
            .map(|r| (primary + r) % n)
            .find_map(|t| self.shards[t].entries.get(&idx).map(|(_, l)| *l))
    }

    /// Whether sample `idx` has a stored embedding.
    pub fn has(&self, idx: usize) -> bool {
        self.get(idx).is_some()
    }

    /// Number of distinct stored embeddings (replicas counted once).
    pub fn stored(&self) -> usize {
        self.distinct
    }

    /// Rebuild version (increases on every [`Self::rebuild_index`]).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Rebuilds every shard's HNSW index over its stored embeddings.
    /// Call after a refresh pass (every `refresh_epochs` epochs, per the
    /// paper).
    pub fn rebuild_index(&mut self) {
        let _span = explainti_obs::span!("store.rebuild_index");
        for shard in &mut self.shards {
            if !shard.rebuild() {
                break;
            }
        }
        self.version += 1;
        explainti_obs::set_gauge("store.indexed_embeddings", self.stored() as f64);
        explainti_obs::set_gauge("store.shards", self.shards.len() as f64);
        explainti_obs::set_gauge("store.tombstones", self.tombstones() as f64);
    }

    /// Top-`k` most similar stored samples to `query`, optionally
    /// excluding one index (the query sample itself during training).
    ///
    /// Fans the query out over every shard (on the global pool when
    /// sharded) and merges the per-shard lists deterministically:
    /// similarity descending, id ascending, duplicates from replica
    /// shards collapsed first-wins. N=1 routes through the same merge.
    pub fn top_k(&self, query: &Tensor, k: usize, exclude: Option<usize>) -> Vec<Neighbor> {
        if k == 0 || self.distinct == 0 {
            return Vec::new();
        }
        let fetch = k + usize::from(exclude.is_some());
        let n = self.shards.len();
        // Availability is decided on the calling thread so counted
        // failpoint policies (`times(1)`, `every(2)`) stay deterministic
        // under pool fan-out.
        let available: Vec<bool> = (0..n).map(|s| self.shard_available(s)).collect();
        let slices = query.as_slice();
        let per_shard: Vec<Vec<Neighbor>> = if n == 1 {
            vec![if available[0] { self.shards[0].top_k_local(slices, fetch) } else { Vec::new() }]
        } else {
            explainti_pool::global().map(n, |s| {
                if available[s] {
                    self.shards[s].top_k_local(slices, fetch)
                } else {
                    Vec::new()
                }
            })
        };
        let mut merged: Vec<Neighbor> = per_shard.into_iter().flatten().collect();
        merged.sort_by(order_neighbors);
        let mut seen = std::collections::BTreeSet::new();
        merged.retain(|nb| Some(nb.id) != exclude && seen.insert(nb.id));
        merged.truncate(k);
        merged
    }

    /// Quantized twin of [`Self::top_k`]: the query is quantized once,
    /// every shard scores against its int8 sidecar, and the merge is the
    /// same deterministic order (similarity descending, id ascending,
    /// first-wins dedup). Availability semantics match `top_k`.
    pub fn top_k_quantized(
        &self,
        query: &Tensor,
        k: usize,
        exclude: Option<usize>,
    ) -> Vec<Neighbor> {
        if k == 0 || self.distinct == 0 {
            return Vec::new();
        }
        let fetch = k + usize::from(exclude.is_some());
        let n = self.shards.len();
        // Availability on the calling thread, as in `top_k`, so counted
        // failpoint policies stay deterministic under pool fan-out.
        let available: Vec<bool> = (0..n).map(|s| self.shard_available(s)).collect();
        let qf = query.as_slice();
        let qq = QuantEntry::from_f32(qf);
        let per_shard: Vec<Vec<Neighbor>> = if n == 1 {
            vec![if available[0] {
                self.shards[0].top_k_local_quantized(qf, &qq, fetch)
            } else {
                Vec::new()
            }]
        } else {
            explainti_pool::global().map(n, |s| {
                if available[s] {
                    self.shards[s].top_k_local_quantized(qf, &qq, fetch)
                } else {
                    Vec::new()
                }
            })
        };
        let mut merged: Vec<Neighbor> = per_shard.into_iter().flatten().collect();
        merged.sort_by(order_neighbors);
        let mut seen = std::collections::BTreeSet::new();
        merged.retain(|nb| Some(nb.id) != exclude && seen.insert(nb.id));
        merged.truncate(k);
        merged
    }
}

impl ExplanationStore for EmbeddingStore {
    fn dim(&self) -> usize {
        EmbeddingStore::dim(self)
    }
    fn set(&mut self, idx: usize, embedding: Tensor, label: usize) {
        EmbeddingStore::set(self, idx, embedding, label)
    }
    fn remove(&mut self, idx: usize) -> bool {
        EmbeddingStore::remove(self, idx)
    }
    fn get(&self, idx: usize) -> Option<&Tensor> {
        EmbeddingStore::get(self, idx)
    }
    fn label(&self, idx: usize) -> Option<usize> {
        EmbeddingStore::label(self, idx)
    }
    fn stored(&self) -> usize {
        EmbeddingStore::stored(self)
    }
    fn top_k(&self, query: &Tensor, k: usize, exclude: Option<usize>) -> Vec<Neighbor> {
        EmbeddingStore::top_k(self, query, k, exclude)
    }
    fn rebuild_index(&mut self) {
        EmbeddingStore::rebuild_index(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: Vec<f32>) -> Tensor {
        Tensor::row(v)
    }

    #[test]
    fn set_get_roundtrip() {
        let mut q = EmbeddingStore::new(4, 2);
        q.set(1, row(vec![1.0, 0.0]), 7);
        assert!(q.has(1));
        assert!(!q.has(0));
        assert_eq!(q.label(1), Some(7));
        assert_eq!(q.stored(), 1);
    }

    #[test]
    fn top_k_without_index_falls_back_to_scan() {
        let mut q = EmbeddingStore::new(3, 2);
        q.set(0, row(vec![1.0, 0.0]), 0);
        q.set(1, row(vec![0.0, 1.0]), 1);
        q.set(2, row(vec![0.9, 0.1]), 0);
        let res = q.top_k(&row(vec![1.0, 0.0]), 2, None);
        assert_eq!(res[0].id, 0);
        assert_eq!(res[1].id, 2);
    }

    #[test]
    fn exclusion_drops_the_query_sample() {
        let mut q = EmbeddingStore::new(3, 2);
        q.set(0, row(vec![1.0, 0.0]), 0);
        q.set(1, row(vec![0.99, 0.01]), 0);
        q.rebuild_index();
        let res = q.top_k(&row(vec![1.0, 0.0]), 1, Some(0));
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].id, 1);
    }

    #[test]
    fn rebuild_bumps_version_and_indexes_all() {
        let mut q = EmbeddingStore::new(10, 2);
        for i in 0..10 {
            q.set(i, row(vec![i as f32, 1.0]), i);
        }
        assert_eq!(q.version(), 0);
        q.rebuild_index();
        assert_eq!(q.version(), 1);
        let res = q.top_k(&row(vec![9.0, 1.0]), 3, None);
        assert_eq!(res.len(), 3);
        assert_eq!(res[0].id, 9);
    }

    #[test]
    fn empty_store_returns_nothing() {
        let q = EmbeddingStore::new(5, 3);
        assert!(q.top_k(&row(vec![1.0, 0.0, 0.0]), 4, None).is_empty());
    }

    fn fill(q: &mut EmbeddingStore, n: usize, dim: usize) {
        // Deterministic but unordered-looking vectors.
        for i in 0..n {
            let v: Vec<f32> = (0..dim)
                .map(|d| ((mix64((i * dim + d) as u64) % 1000) as f32 / 500.0) - 1.0)
                .collect();
            q.set(i, row(v), i % 5);
        }
    }

    #[test]
    fn sharded_merge_is_byte_identical_to_single_shard() {
        let (n, dim, k) = (257, 8, 7);
        let mut single = EmbeddingStore::with_shards(dim, 1, 1);
        let mut sharded = EmbeddingStore::with_shards(dim, 4, 1);
        let mut replicated = EmbeddingStore::with_shards(dim, 4, 2);
        fill(&mut single, n, dim);
        fill(&mut sharded, n, dim);
        fill(&mut replicated, n, dim);
        single.rebuild_index();
        sharded.rebuild_index();
        replicated.rebuild_index();
        for probe in [0usize, 31, 100, 256] {
            let query = single.get(probe).unwrap().clone();
            let a = single.top_k(&query, k, Some(probe));
            let b = sharded.top_k(&query, k, Some(probe));
            let c = replicated.top_k(&query, k, Some(probe));
            let bits = |v: &Vec<Neighbor>| {
                v.iter().map(|nb| (nb.id, nb.similarity.to_bits())).collect::<Vec<_>>()
            };
            assert_eq!(bits(&a), bits(&b), "1-shard vs 4-shard merge diverged");
            assert_eq!(bits(&a), bits(&c), "replicated merge diverged");
        }
    }

    // Failpoint-driven coverage (shard outage + replica failover) lives
    // in `tests/sharded_store.rs`: the failpoint registry is global, so
    // those tests need their own process.

    #[test]
    fn online_insert_is_retrievable_without_rebuild() {
        let dim = 4;
        let mut q = EmbeddingStore::with_shards(dim, 4, 2);
        fill(&mut q, 32, dim);
        q.rebuild_index();
        let version = q.version();
        q.insert_online(1000, row(vec![1.0, 0.0, 0.0, 0.0]), 3);
        assert_eq!(q.version(), version, "online insert must not rebuild");
        assert_eq!(q.label(1000), Some(3));
        let res = q.top_k(&row(vec![1.0, 0.0, 0.0, 0.0]), 1, None);
        assert_eq!(res[0].id, 1000);

        assert!(q.remove(1000));
        assert!(!q.remove(1000));
        let res = q.top_k(&row(vec![1.0, 0.0, 0.0, 0.0]), 3, None);
        assert!(res.iter().all(|nb| nb.id != 1000), "removed sample still retrieved");
        assert_eq!(q.stored(), 32);
    }

    #[test]
    fn tombstone_buildup_triggers_compaction() {
        let dim = 4;
        let mut q = EmbeddingStore::with_shards(dim, 2, 1);
        fill(&mut q, 60, dim);
        q.rebuild_index();
        for i in 0..40 {
            q.remove(i);
        }
        // COMPACT_RATIO at 0.3 with COMPACT_MIN 8: 40 removals over two
        // shards must have compacted both back under the threshold.
        let total: usize = q.shard_sizes().iter().map(|&(_, t)| t).sum();
        for (stored, tomb) in q.shard_sizes() {
            assert!(
                tomb < COMPACT_MIN || (tomb as f64) <= COMPACT_RATIO * stored.max(1) as f64,
                "shard kept {tomb} tombstones over {stored} live entries (total {total})"
            );
        }
        assert_eq!(q.stored(), 20);
    }

    #[test]
    fn quantized_top_k_matches_f32_ranking() {
        let (n, dim, k) = (120, 16, 5);
        let mut q = EmbeddingStore::with_shards(dim, 3, 2);
        fill(&mut q, n, dim);
        q.rebuild_index();
        for probe in [0usize, 17, 63, 119] {
            let query = q.get(probe).unwrap().clone();
            let exact = q.top_k(&query, k, Some(probe));
            let approx = q.top_k_quantized(&query, k, Some(probe));
            assert_eq!(exact.len(), approx.len());
            // int8 similarity error is bounded (~1e-2 per pair): when the
            // f32 winner leads by more than that bound the quantized path
            // must agree; inside the bound a near-tie may flip, but the
            // winner it picks has to be within the bound of the true best.
            const Q8_TOL: f32 = 0.02;
            let margin = exact[0].similarity - exact.get(1).map_or(0.0, |nb| nb.similarity);
            if margin > Q8_TOL {
                assert_eq!(exact[0].id, approx[0].id, "top-1 disagreement at probe {probe}");
            } else {
                let winner = q.get(approx[0].id).unwrap();
                let true_sim = explainti_nn::simd::cosine(query.as_slice(), winner.as_slice());
                assert!(
                    exact[0].similarity - true_sim < Q8_TOL,
                    "quantized top-1 {} is not a near-tie of {} at probe {probe}",
                    approx[0].id,
                    exact[0].id
                );
            }
            let exact_ids: std::collections::BTreeSet<usize> =
                exact.iter().map(|nb| nb.id).collect();
            let approx_sims: BTreeMap<usize, f32> =
                approx.iter().map(|nb| (nb.id, nb.similarity)).collect();
            let overlap = approx.iter().filter(|nb| exact_ids.contains(&nb.id)).count();
            assert!(overlap * 10 >= k * 8, "top-k overlap too low: {overlap}/{k}");
            for nb in &exact {
                if let Some(s) = approx_sims.get(&nb.id) {
                    assert!((nb.similarity - s).abs() < 0.02, "similarity drift at {}", nb.id);
                }
            }
        }
    }

    #[test]
    fn quantized_top_k_respects_replica_dedup_and_exclude() {
        let dim = 8;
        let mut q = EmbeddingStore::with_shards(dim, 4, 3);
        fill(&mut q, 64, dim);
        q.rebuild_index();
        let query = q.get(5).unwrap().clone();
        let res = q.top_k_quantized(&query, 6, Some(5));
        let mut ids: Vec<usize> = res.iter().map(|nb| nb.id).collect();
        assert!(!ids.contains(&5), "excluded sample retrieved");
        ids.dedup();
        assert_eq!(ids.len(), res.len(), "replica duplicates leaked through merge");
    }

    #[test]
    fn jump_hash_is_stable_and_spread() {
        // Consistency: growing 4 → 5 buckets moves only ~1/5 of keys.
        let n = 10_000u64;
        let moved = (0..n).filter(|&i| jump_hash(mix64(i), 4) != jump_hash(mix64(i), 5)).count();
        assert!((moved as f64) < 0.3 * n as f64, "jump hash moved {moved}/{n} keys");
        // Spread: no bucket takes more than twice its fair share.
        let mut counts = [0usize; 4];
        for i in 0..n {
            counts[jump_hash(mix64(i), 4)] += 1;
        }
        for c in counts {
            assert!(c < n as usize / 2, "bucket skew: {counts:?}");
        }
    }
}
