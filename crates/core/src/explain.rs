//! Multi-view explanation types — the `Z` of Definition 1/2.
//!
//! Everything is `serde`-serialisable so the verification front-end
//! (ExplainTI⁺ in the paper, `examples/verification_queue.rs` here) can
//! consume explanation bundles as JSON.

use serde::{Deserialize, Serialize};

/// One local explanation: a sliding window (pairwise windows for the
/// relation task) with its relevance score `RS` (Eq. 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalSpan {
    /// Window start position in the token sequence.
    pub start: usize,
    /// Window length (the configured `k`).
    pub window: usize,
    /// Start of the paired window in the second segment (relation task).
    pub pair_start: Option<usize>,
    /// Decoded window text (both windows joined for pairs).
    pub text: String,
    /// Relevance score, normalised over all windows of the sample.
    pub relevance: f32,
}

/// One global explanation: an influential training sample (Eq. 4).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GlobalInfluence {
    /// Index of the training sample in the task's sample list.
    pub sample: usize,
    /// Influence score `IS`, normalised over the retrieved top-K.
    pub influence: f32,
    /// The training sample's label.
    pub label: usize,
}

/// One structural explanation: an attended graph neighbour (Eq. 5).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StructuralNeighbor {
    /// Graph node (= sample index) of the neighbour.
    pub node: usize,
    /// Attention score `AS`, normalised over the sampled neighbours.
    pub attention: f32,
    /// The neighbour's label.
    pub label: usize,
}

/// The multi-view explanation bundle.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Explanation {
    /// Local view, sorted by descending relevance.
    pub local: Vec<LocalSpan>,
    /// Global view, sorted by descending influence.
    pub global: Vec<GlobalInfluence>,
    /// Structural view, sorted by descending attention (duplicates from
    /// with-replacement sampling are merged).
    pub structural: Vec<StructuralNeighbor>,
}

impl Explanation {
    /// The top-`k` local spans.
    pub fn top_local(&self, k: usize) -> &[LocalSpan] {
        &self.local[..k.min(self.local.len())]
    }

    /// The top-`k` *non-overlapping* local spans: walks the relevance
    /// ranking and skips windows that overlap an already-selected one, so
    /// the shown evidence covers `k` distinct regions rather than `k`
    /// shifts of the same phrase. This is what the verification UI and
    /// the sufficiency evaluation display.
    pub fn top_local_diverse(&self, k: usize) -> Vec<&LocalSpan> {
        let mut picked: Vec<&LocalSpan> = Vec::with_capacity(k);
        for span in &self.local {
            if picked.len() >= k {
                break;
            }
            let overlaps = picked.iter().any(|p| {
                let disjoint = |a: &LocalSpan, s1: usize, b: &LocalSpan, s2: usize| {
                    s1 + a.window <= s2 || s2 + b.window <= s1
                };
                let first = !disjoint(p, p.start, span, span.start);
                let second = match (p.pair_start, span.pair_start) {
                    (Some(ps), Some(ss)) => !disjoint(p, ps, span, ss),
                    _ => false,
                };
                first || second
            });
            if !overlaps {
                picked.push(span);
            }
        }
        picked
    }

    /// The top-`k` global influences.
    pub fn top_global(&self, k: usize) -> &[GlobalInfluence] {
        &self.global[..k.min(self.global.len())]
    }

    /// The top-`k` structural neighbours.
    pub fn top_structural(&self, k: usize) -> &[StructuralNeighbor] {
        &self.structural[..k.min(self.structural.len())]
    }
}

/// A prediction together with its explanations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted label index.
    pub label: usize,
    /// Softmax confidence of the predicted label.
    pub confidence: f32,
    /// Full label distribution (softmax of the final logits).
    pub probs: Vec<f32>,
    /// Multi-view explanations for the prediction.
    pub explanation: Explanation,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_never_exceeds_length() {
        let e = Explanation {
            local: vec![LocalSpan {
                start: 0,
                window: 4,
                pair_start: None,
                text: "x".into(),
                relevance: 1.0,
            }],
            global: vec![],
            structural: vec![],
        };
        assert_eq!(e.top_local(5).len(), 1);
        assert_eq!(e.top_global(3).len(), 0);
    }

    #[test]
    fn diverse_selection_skips_overlaps() {
        let span = |start: usize, relevance: f32| LocalSpan {
            start,
            window: 4,
            pair_start: None,
            text: String::new(),
            relevance,
        };
        let e = Explanation {
            // Ranked: 10, 11 (overlaps 10), 2, 12 (overlaps 10/11), 20.
            local: vec![span(10, 0.5), span(11, 0.3), span(2, 0.1), span(12, 0.06), span(20, 0.04)],
            global: vec![],
            structural: vec![],
        };
        let picked = e.top_local_diverse(3);
        let starts: Vec<usize> = picked.iter().map(|s| s.start).collect();
        assert_eq!(starts, vec![10, 2, 20]);
    }

    #[test]
    fn diverse_selection_checks_pair_windows_too() {
        let span = |start: usize, pair: usize, relevance: f32| LocalSpan {
            start,
            window: 4,
            pair_start: Some(pair),
            text: String::new(),
            relevance,
        };
        let e = Explanation {
            // Same first window region, overlapping pair windows.
            local: vec![span(1, 16, 0.6), span(8, 17, 0.4), span(8, 24, 0.2)],
            global: vec![],
            structural: vec![],
        };
        let picked = e.top_local_diverse(3);
        // Second span overlaps the first in the pair region? No: first
        // windows 1..5 vs 8..12 are disjoint, pair windows 16..20 vs
        // 17..21 overlap -> skipped; third (8..12, 24..28) overlaps
        // nothing kept except window one? 8..12 disjoint from 1..5,
        // 24..28 disjoint from 16..20 -> kept.
        let starts: Vec<(usize, Option<usize>)> =
            picked.iter().map(|s| (s.start, s.pair_start)).collect();
        assert_eq!(starts, vec![(1, Some(16)), (8, Some(24))]);
    }

    #[test]
    fn serialises_to_json() {
        let p = Prediction {
            label: 2,
            confidence: 0.9,
            probs: vec![0.05, 0.05, 0.9],
            explanation: Explanation::default(),
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: Prediction = serde_json::from_str(&json).unwrap();
        assert_eq!(back.label, 2);
    }
}
