//! Task data preparation: serialised samples aligned with column graphs.
//!
//! Sample `i` of a task corresponds to node `i` of that task's column
//! graph (the alignment `explainti-table` guarantees), which is what lets
//! the SE module translate sampled graph neighbours into embedding-store
//! lookups.

use crate::config::TaskKind;
use explainti_corpus::{Dataset, Split};
use explainti_table::ColumnGraph;
use explainti_tokenizer::{encode_column, encode_column_pair, Encoded, Tokenizer};

/// One serialised training/evaluation instance.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Fixed-length token sequence.
    pub encoded: Encoded,
    /// Ground-truth label.
    pub label: usize,
    /// Which split the sample belongs to.
    pub split: Split,
}

/// All samples of one task plus its graph and split indices.
pub struct TaskData {
    /// The task this data serves.
    pub kind: TaskKind,
    /// Samples in graph-node order.
    pub samples: Vec<Sample>,
    /// Number of label classes.
    pub num_classes: usize,
    /// The column (pair) graph over *all* samples.
    pub graph: ColumnGraph,
    /// Train-sample indices.
    pub train_idx: Vec<usize>,
    /// Validation-sample indices.
    pub valid_idx: Vec<usize>,
    /// Test-sample indices.
    pub test_idx: Vec<usize>,
    /// Human-readable label names.
    pub label_names: Vec<String>,
}

impl TaskData {
    /// Serialises the column-type task of `dataset`.
    pub fn prepare_type(dataset: &Dataset, tok: &Tokenizer, max_seq: usize, use_pp: bool) -> Self {
        let _span = explainti_obs::span!("data.tokenize.type");
        let (graph, refs) = ColumnGraph::build_type(&dataset.collection);
        let annotated = dataset.collection.annotated_columns();
        debug_assert_eq!(refs.len(), annotated.len());
        let samples: Vec<Sample> = annotated
            .iter()
            .map(|(cref, label)| {
                let table = &dataset.collection.tables[cref.table];
                let col = &table.columns[cref.col];
                let cells = if use_pp { col.unique_cells() } else { col.cell_refs() };
                Sample {
                    encoded: encode_column(tok, &table.title, &col.header, &cells, max_seq),
                    label: *label,
                    split: dataset.table_split[cref.table],
                }
            })
            .collect();
        let (train_idx, valid_idx, test_idx) = split_indices(&samples);
        Self {
            kind: TaskKind::Type,
            num_classes: dataset.collection.type_labels.len(),
            label_names: dataset.collection.type_labels.clone(),
            samples,
            graph,
            train_idx,
            valid_idx,
            test_idx,
        }
    }

    /// Serialises the column-relation task of `dataset`.
    pub fn prepare_relation(
        dataset: &Dataset,
        tok: &Tokenizer,
        max_seq: usize,
        use_pp: bool,
    ) -> Self {
        let _span = explainti_obs::span!("data.tokenize.relation");
        let (graph, refs) = ColumnGraph::build_relation(&dataset.collection);
        let annotated = dataset.collection.annotated_pairs();
        debug_assert_eq!(refs.len(), annotated.len());
        let samples: Vec<Sample> = annotated
            .iter()
            .map(|(pref, label)| {
                let table = &dataset.collection.tables[pref.table];
                let (s, o) = (&table.columns[pref.subject], &table.columns[pref.object]);
                let (cs, co) = if use_pp {
                    (s.unique_cells(), o.unique_cells())
                } else {
                    (s.cell_refs(), o.cell_refs())
                };
                Sample {
                    encoded: encode_column_pair(
                        tok,
                        &table.title,
                        &s.header,
                        &cs,
                        &o.header,
                        &co,
                        max_seq,
                    ),
                    label: *label,
                    split: dataset.table_split[pref.table],
                }
            })
            .collect();
        let (train_idx, valid_idx, test_idx) = split_indices(&samples);
        Self {
            kind: TaskKind::Relation,
            num_classes: dataset.collection.relation_labels.len(),
            label_names: dataset.collection.relation_labels.clone(),
            samples,
            graph,
            train_idx,
            valid_idx,
            test_idx,
        }
    }

    /// Sample indices for a split.
    pub fn indices(&self, split: Split) -> &[usize] {
        match split {
            Split::Train => &self.train_idx,
            Split::Valid => &self.valid_idx,
            Split::Test => &self.test_idx,
        }
    }
}

fn split_indices(samples: &[Sample]) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut train = Vec::new();
    let mut valid = Vec::new();
    let mut test = Vec::new();
    for (i, s) in samples.iter().enumerate() {
        match s.split {
            Split::Train => train.push(i),
            Split::Valid => valid.push(i),
            Split::Test => test.push(i),
        }
    }
    (train, valid, test)
}

/// Builds the tokenizer vocabulary from the *training* tables only (no
/// test leakage into the vocabulary).
pub fn build_tokenizer(dataset: &Dataset, max_vocab: usize) -> Tokenizer {
    let _span = explainti_obs::span!("data.build_tokenizer");
    let mut texts: Vec<String> = Vec::new();
    for (ti, table) in dataset.collection.tables.iter().enumerate() {
        if dataset.table_split[ti] != Split::Train {
            continue;
        }
        texts.push(table.title.clone());
        for col in &table.columns {
            texts.push(col.header.clone());
            for cell in &col.cells {
                texts.push(cell.clone());
            }
        }
    }
    Tokenizer::train(texts.iter().map(String::as_str), max_vocab)
}

#[cfg(test)]
mod tests {
    use super::*;
    use explainti_corpus::{generate_wiki, WikiConfig};

    fn dataset() -> Dataset {
        generate_wiki(&WikiConfig { num_tables: 60, seed: 13, ..Default::default() })
    }

    #[test]
    fn type_task_aligns_samples_with_graph() {
        let d = dataset();
        let tok = build_tokenizer(&d, 2048);
        let t = TaskData::prepare_type(&d, &tok, 32, false);
        assert_eq!(t.samples.len(), t.graph.num_nodes());
        assert_eq!(t.samples.len(), t.train_idx.len() + t.valid_idx.len() + t.test_idx.len());
    }

    #[test]
    fn relation_task_aligns_samples_with_graph() {
        let d = dataset();
        let tok = build_tokenizer(&d, 2048);
        let t = TaskData::prepare_relation(&d, &tok, 32, false);
        assert_eq!(t.samples.len(), t.graph.num_nodes());
        assert!(t.num_classes >= 2);
        for s in &t.samples {
            assert!(s.label < t.num_classes);
        }
    }

    #[test]
    fn pp_changes_serialisation_of_duplicated_cells() {
        let mut d = dataset();
        // Force duplicate cells into the first annotated column.
        let (cref, _) = d.collection.annotated_columns()[0];
        let col = &mut d.collection.tables[cref.table].columns[cref.col];
        col.cells = vec!["dup".into(); 6];
        let tok = build_tokenizer(&d, 2048);
        let plain = TaskData::prepare_type(&d, &tok, 32, false);
        let pp = TaskData::prepare_type(&d, &tok, 32, true);
        assert!(pp.samples[0].encoded.len < plain.samples[0].encoded.len);
    }

    #[test]
    fn tokenizer_uses_only_training_tables() {
        let mut d = dataset();
        // Inject a unique word into a test table; it must not enter vocab.
        let test_table = d.table_split.iter().position(|&s| s == Split::Test).unwrap();
        d.collection.tables[test_table].title = "zzzuniquemarker".to_string();
        let tok = build_tokenizer(&d, 4096);
        assert!(tok.id("zzzuniquemarker").is_none());
    }
}
