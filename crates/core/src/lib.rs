//! # explainti-core
//!
//! The ExplainTI framework (ICDE 2023): explainable table interpretation
//! with multi-view explanations.
//!
//! Pipeline: tables are serialised to sequences and column graphs
//! (`explainti-table`), a pre-trained transformer encoder
//! (`explainti-encoder`) is fine-tuned multi-task (Algorithm 5), and every
//! prediction carries three explanation views —
//!
//! * **local** (Algorithm 1): relevance-scored sliding windows,
//! * **global** (Algorithm 2): top-K influential training samples via an
//!   HNSW-indexed embedding store,
//! * **structural** (Algorithm 4): graph-attention over column-graph
//!   neighbours, which also feeds the final classifier (Eq. 9).
//!
//! ## Quickstart
//!
//! ```no_run
//! use explainti_core::{ExplainTi, ExplainTiConfig, TaskKind};
//! use explainti_corpus::{generate_wiki, Split, WikiConfig};
//!
//! let dataset = generate_wiki(&WikiConfig::default());
//! let cfg = ExplainTiConfig::bert_like(2048, 32);
//! let mut model = ExplainTi::new(&dataset, cfg);
//! model.train();
//! let f1 = model.evaluate(TaskKind::Type, Split::Test);
//! let prediction = model.predict(TaskKind::Type, 0);
//! println!("{f1} — top local explanation: {:?}", prediction.explanation.top_local(1));
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod data;
pub mod explain;
pub mod generation;
pub mod model;
pub mod persist;
pub mod store;
pub mod train;

pub use config::{ExplainTiConfig, LeMode, LeScoring, SeAggregation, TaskKind};
pub use data::{build_tokenizer, Sample, TaskData};
pub use explain::{Explanation, GlobalInfluence, LocalSpan, Prediction, StructuralNeighbor};
pub use generation::{Generation, GenerationHandle};
pub use model::{ExplainTi, TaskState};
pub use persist::{
    decode_weights, encode_weights, fnv1a64, Manifest, ManifestFile, PersistError, MANIFEST_NAME,
    SNAPSHOT_FORMAT_VERSION,
};
pub use store::{EmbeddingStore, ExplanationStore, StoreShard};
pub use train::{EpochLog, TrainReport};
