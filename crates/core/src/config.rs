//! ExplainTI hyper-parameters and ablation switches.

use explainti_encoder::{EncoderConfig, Variant};
use serde::{Deserialize, Serialize};

/// Which table-interpretation task a dataset/graph/heads bundle serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Column type prediction.
    Type,
    /// Column relation prediction.
    Relation,
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskKind::Type => write!(f, "type"),
            TaskKind::Relation => write!(f, "relation"),
        }
    }
}

/// How the local-explanations module enumerates explainable concepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LeMode {
    /// Fixed-size sliding windows (the paper's choice for tables).
    #[default]
    SlidingWindow,
    /// Marker-delimited segments — the closest analogue of SelfExplain's
    /// constituent spans, used to reproduce the SelfExplain baseline
    /// (tables lack syntax, so constituent parsing degenerates to coarse
    /// field segments; cf. Section III-F).
    Segments,
}

/// How SE aggregates sampled neighbour embeddings (ablation of DESIGN.md
/// §5: the paper argues attention beats plain pooling because neighbours
/// contribute unequally).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeAggregation {
    /// Dot-product graph attention (Eq. 5, the paper's choice).
    #[default]
    Attention,
    /// Uniform mean pooling over the sampled neighbours.
    MeanPooling,
}

/// How LE scores a window's relevance (ablation of DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LeScoring {
    /// KL divergence between window and full distributions (Eq. 3).
    #[default]
    KlDivergence,
    /// Probability drop on the predicted class.
    LogitDrop,
}

/// Full configuration of an ExplainTI model.
///
/// Defaults mirror the paper's Section IV-A settings scaled to a single
/// CPU core: `α`/`β` regularisers, window size `k`, top-`K` influential
/// samples, SE sampling size `r`, and the embedding-store refresh period.
#[derive(Debug, Clone)]
pub struct ExplainTiConfig {
    /// Encoder architecture (BERT-like or RoBERTa-like).
    pub encoder: EncoderConfig,
    /// Weight of the local-explanations loss (`α` in Eq. 11).
    pub alpha: f32,
    /// Weight of the global-explanations loss (`β` in Eq. 11).
    pub beta: f32,
    /// LE sliding-window size (`k`; paper uses 8 at seq-len 64, we default
    /// to 4 at seq-len 32 — the same fraction).
    pub window: usize,
    /// LE concept enumeration mode (sliding windows vs segments).
    pub le_mode: LeMode,
    /// LE relevance scoring function.
    pub le_scoring: LeScoring,
    /// SE neighbour aggregation.
    pub se_aggregation: SeAggregation,
    /// Stride between pairwise windows in the relation task (the paper
    /// enumerates every pair; a stride bounds the quadratic blow-up).
    pub pair_stride: usize,
    /// Number of influential samples retrieved by GE (`K`).
    pub top_k: usize,
    /// SE neighbour sampling size (`r`).
    pub sample_r: usize,
    /// Fine-tuning epochs (per task; the trainer alternates tasks).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Peak learning rate with linear decay (paper: 5e-5 for BERT-base;
    /// the small encoder wants a larger rate).
    pub lr: f32,
    /// Refresh the embedding store `Q` every this many epochs (paper: 5).
    pub refresh_epochs: usize,
    /// Enable the local-explanations module (ablation `w/o LE`).
    pub use_le: bool,
    /// Enable the global-explanations module (ablation `w/o GE`).
    pub use_ge: bool,
    /// Enable the structural-explanations module (ablation `w/o SE`).
    pub use_se: bool,
    /// Enable the PP pre-processing step (deduplicate cell values).
    pub use_pp: bool,
    /// RNG seed for initialisation, dropout, sampling.
    pub seed: u64,
    /// Number of embedding-store shards the GE store `Q` is partitioned
    /// across (consistent hash of sample id; 1 = the unsharded layout).
    pub store_shards: usize,
    /// Replication factor of the store: each sample is written to this
    /// many consecutive shards. Must be in `1..=store_shards`.
    pub store_replicas: usize,
    /// Run inference (encoder forward + GE similarity) on the int8
    /// symmetric-quantized path. Training always stays f32; the
    /// quantized twin is rebuilt from the f32 weights on demand.
    pub quantized: bool,
}

impl ExplainTiConfig {
    /// Paper-default configuration on a BERT-like encoder.
    pub fn bert_like(vocab_size: usize, max_seq: usize) -> Self {
        Self::with_encoder(EncoderConfig::bert_like(vocab_size, max_seq))
    }

    /// Paper-default configuration on a RoBERTa-like encoder.
    pub fn roberta_like(vocab_size: usize, max_seq: usize) -> Self {
        Self::with_encoder(EncoderConfig::roberta_like(vocab_size, max_seq))
    }

    /// Wraps an explicit encoder configuration with paper defaults.
    pub fn with_encoder(encoder: EncoderConfig) -> Self {
        Self {
            encoder,
            alpha: 0.10,
            beta: 0.10,
            window: 4,
            le_mode: LeMode::SlidingWindow,
            le_scoring: LeScoring::KlDivergence,
            se_aggregation: SeAggregation::Attention,
            pair_stride: 2,
            top_k: 10,
            sample_r: 16,
            epochs: 8,
            batch_size: 16,
            lr: 2e-3,
            refresh_epochs: 1,
            use_le: true,
            use_ge: true,
            use_se: true,
            use_pp: false,
            seed: 0xe271,
            store_shards: 1,
            store_replicas: 1,
            quantized: false,
        }
    }

    /// Sets the embedding-store shard layout.
    pub fn with_store_layout(mut self, shards: usize, replicas: usize) -> Self {
        self.store_shards = shards;
        self.store_replicas = replicas;
        self
    }

    /// Enables the int8 quantized inference path.
    pub fn with_quantized(mut self, quantized: bool) -> Self {
        self.quantized = quantized;
        self
    }

    /// Ablation helper: disables a module by Table III row name
    /// (`"le"`, `"ge"`, `"se"`).
    pub fn without(mut self, module: &str) -> Self {
        match module {
            "le" => self.use_le = false,
            "ge" => self.use_ge = false,
            "se" => self.use_se = false,
            other => panic!("unknown ablation module {other:?}"),
        }
        self
    }

    /// The encoder variant name used in report rows.
    pub fn variant_name(&self) -> &'static str {
        match self.encoder.variant {
            Variant::BertLike => "BERT",
            Variant::RobertaLike => "RoBERTa",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_flip_flags() {
        let cfg = ExplainTiConfig::bert_like(100, 32);
        assert!(cfg.use_le && cfg.use_ge && cfg.use_se);
        let no_se = cfg.clone().without("se");
        assert!(!no_se.use_se && no_se.use_le);
    }

    #[test]
    #[should_panic(expected = "unknown ablation")]
    fn bad_ablation_panics() {
        let _ = ExplainTiConfig::bert_like(100, 32).without("xx");
    }

    #[test]
    fn variant_names() {
        assert_eq!(ExplainTiConfig::bert_like(10, 16).variant_name(), "BERT");
        assert_eq!(ExplainTiConfig::roberta_like(10, 16).variant_name(), "RoBERTa");
    }
}
