//! Model checkpointing: save and restore all trainable weights, plus the
//! crash-safe model-directory snapshot protocol.
//!
//! The binary weight format is deliberately simple — magic, version,
//! weight count, little-endian `f32`s — so checkpoints stay portable
//! across builds. A checkpoint carries *weights only*: the loader must
//! construct the model with the same dataset and configuration first
//! (construction order defines the parameter layout), which mirrors how
//! pre-trained LM checkpoints work.
//!
//! ## Snapshot atomicity (DESIGN.md §11)
//!
//! `save_to_dir` treats the model directory as durable production state,
//! not a scratch directory. Every artifact is written with
//! write-to-temp → fsync → atomic rename, and a `MANIFEST.json` carrying
//! the snapshot format version plus per-file sizes and FNV-1a 64
//! checksums is written **last** (with the same protocol). A crash at any
//! point therefore leaves either the previous complete snapshot (manifest
//! still describes the old files) or a detectably torn one — never a
//! silently wrong model. `load_from_dir` refuses to load anything the
//! manifest does not vouch for, returning a typed [`PersistError`].
//!
//! Failpoint sites (`explainti-faults`) bracket every write and rename so
//! the crash matrix in `crates/core/tests/crash_recovery.rs` can prove
//! that property for each interleaving.

use crate::config::ExplainTiConfig;
use crate::model::ExplainTi;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use explainti_corpus::Dataset;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"EXPLTI01";

/// Snapshot directory format version recorded in `MANIFEST.json`.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// Manifest file name, written last so its presence certifies a complete
/// snapshot.
pub const MANIFEST_NAME: &str = "MANIFEST.json";

/// Why a model directory could not be saved or loaded.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem operation failed (includes injected
    /// failpoint trips, which simulate crashes/IO errors).
    Io(io::Error),
    /// The snapshot is incomplete: the manifest is missing, or a file the
    /// manifest promises does not exist. Typical of a crash mid-save.
    TornSnapshot {
        /// What exactly is missing or inconsistent.
        detail: String,
    },
    /// A file exists but its bytes do not match the manifest (checksum or
    /// size mismatch, unparsable content, wrong format version).
    Corrupt {
        /// The offending file name.
        file: String,
        /// What failed to verify.
        detail: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot io error: {e}"),
            PersistError::TornSnapshot { detail } => {
                write!(f, "torn snapshot (refusing to load): {detail}")
            }
            PersistError::Corrupt { file, detail } => {
                write!(f, "corrupt snapshot file {file}: {detail}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// FNV-1a 64-bit — tiny, dependency-free, and adequate for detecting torn
/// or bit-flipped snapshot files (not an adversarial integrity check).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// One artifact's entry in `MANIFEST.json`. The checksum is hex-encoded
/// because the vendored JSON layer stores numbers as `f64` (exact only to
/// 2^53).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ManifestFile {
    /// File name relative to the snapshot directory.
    pub name: String,
    /// File size in bytes.
    pub bytes: u64,
    /// FNV-1a 64 checksum of the file contents, lowercase hex.
    pub fnv1a64: String,
}

/// `MANIFEST.json`: written last, verified first.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// Snapshot directory layout version ([`SNAPSHOT_FORMAT_VERSION`]).
    pub format_version: u32,
    /// Every artifact in the snapshot, with size and checksum.
    pub files: Vec<ManifestFile>,
}

/// Returns an injected-fault IO error when the failpoint `site` trips.
fn failpoint(site: &str) -> Result<(), PersistError> {
    if explainti_faults::triggered(site) {
        return Err(PersistError::Io(io::Error::other(format!("failpoint {site} tripped"))));
    }
    Ok(())
}

/// Writes one artifact crash-safely: temp file, fsync, atomic rename.
/// `short` names the failpoint family (`persist.before_write.{short}`,
/// `persist.after_write.{short}`, `persist.after_rename.{short}`); each
/// site simulates a crash at that boundary by erroring out, leaving the
/// directory exactly as a real crash would.
fn write_artifact(dir: &Path, name: &str, short: &str, data: &[u8]) -> Result<(), PersistError> {
    failpoint(&format!("persist.before_write.{short}"))?;
    let tmp = dir.join(format!(".{name}.tmp"));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(data)?;
        f.sync_all()?;
    }
    failpoint(&format!("persist.after_write.{short}"))?;
    std::fs::rename(&tmp, dir.join(name))?;
    failpoint(&format!("persist.after_rename.{short}"))?;
    Ok(())
}

/// Fsyncs the directory itself so renames are durable (best-effort: not
/// every filesystem supports opening a directory for sync).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Encodes a flat weight vector into the checkpoint format.
pub fn encode_weights(weights: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(MAGIC.len() + 8 + weights.len() * 4);
    buf.put_slice(MAGIC);
    buf.put_u64_le(weights.len() as u64);
    for &w in weights {
        buf.put_f32_le(w);
    }
    buf.freeze()
}

/// Decodes a checkpoint produced by [`encode_weights`].
pub fn decode_weights(mut data: &[u8]) -> io::Result<Vec<f32>> {
    if data.len() < MAGIC.len() + 8 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "checkpoint too short"));
    }
    if &data[..MAGIC.len()] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad checkpoint magic"));
    }
    data.advance(MAGIC.len());
    let n = data.get_u64_le() as usize;
    if data.remaining() != n * 4 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "checkpoint payload mismatch: header says {n} weights, body has {} bytes",
                data.remaining()
            ),
        ));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(data.get_f32_le());
    }
    Ok(out)
}

impl ExplainTi {
    /// Snapshot of every trainable weight (encoder + all heads).
    pub fn export_all_weights(&self) -> Vec<f32> {
        self.store().to_flat()
    }

    /// Restores a snapshot from [`Self::export_all_weights`].
    ///
    /// # Panics
    /// Panics if the snapshot does not match the model layout.
    pub fn import_all_weights(&mut self, weights: &[f32]) {
        self.store_mut().load_flat(weights);
    }

    /// Writes a checkpoint of all weights to disk.
    pub fn save_weights(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, encode_weights(&self.export_all_weights()))
    }

    /// Loads a checkpoint from disk into this model.
    ///
    /// Fails when the file is corrupt or the weight count does not match
    /// (i.e. the model was built with a different dataset/configuration).
    pub fn load_weights(&mut self, path: &Path) -> io::Result<()> {
        let data = std::fs::read(path)?;
        self.load_weight_bytes(&data)
    }

    /// In-memory variant of [`Self::load_weights`] (the snapshot loader
    /// verifies checksums over bytes it has already read).
    pub fn load_weight_bytes(&mut self, data: &[u8]) -> io::Result<()> {
        let weights = decode_weights(data)?;
        if weights.len() != self.num_weights() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint has {} weights but the model expects {}",
                    weights.len(),
                    self.num_weights()
                ),
            ));
        }
        self.import_all_weights(&weights);
        Ok(())
    }

    /// Writes the full model-directory layout (`corpus.json`,
    /// `variant.txt`, `weights.bin`, `MANIFEST.json`) that
    /// [`Self::load_from_dir`], the CLI and the inference server all
    /// consume. The corpus snapshot is required because tokenizer and
    /// parameter layouts derive deterministically from it.
    ///
    /// Crash-safe: each artifact goes through write-to-temp + fsync +
    /// atomic rename, and the checksummed manifest is written last — a
    /// crash anywhere leaves the previous complete snapshot loadable or a
    /// detectably torn directory, never a silently mixed one.
    pub fn save_to_dir(&self, dir: &Path, dataset: &Dataset) -> Result<(), PersistError> {
        let _span = explainti_obs::span!("persist.save_dir");
        std::fs::create_dir_all(dir)?;
        let corpus = serde_json::to_string(dataset)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))?;
        let variant = match self.cfg.encoder.variant {
            explainti_encoder::Variant::BertLike => "bert",
            explainti_encoder::Variant::RobertaLike => "roberta",
        };
        let weights = encode_weights(&self.export_all_weights());

        let artifacts: [(&str, &str, &[u8]); 3] = [
            ("corpus.json", "corpus", corpus.as_bytes()),
            ("variant.txt", "variant", variant.as_bytes()),
            ("weights.bin", "weights", &weights),
        ];
        let mut manifest = Manifest { format_version: SNAPSHOT_FORMAT_VERSION, files: Vec::new() };
        for (name, short, data) in artifacts {
            write_artifact(dir, name, short, data)?;
            manifest.files.push(ManifestFile {
                name: name.to_string(),
                bytes: data.len() as u64,
                fnv1a64: format!("{:016x}", fnv1a64(data)),
            });
        }
        let manifest_json = serde_json::to_string_pretty(&manifest)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))?;
        write_artifact(dir, MANIFEST_NAME, "manifest", manifest_json.as_bytes())?;
        sync_dir(dir);
        Ok(())
    }

    /// Rebuilds a model from a directory written by [`Self::save_to_dir`]
    /// (or the `train` CLI command): verifies the manifest, reads the
    /// corpus snapshot, picks the recorded encoder variant, loads the
    /// weight checkpoint, and refreshes every task's embedding store so
    /// GE/SE retrievals match the loaded weights. Returns the dataset
    /// alongside the model because serving needs the label names.
    ///
    /// Refuses to load torn or corrupt snapshots with a typed error:
    /// every file must be present, match its manifest size and FNV-1a 64
    /// checksum, and parse — otherwise the previous snapshot (if the
    /// manifest still describes it) is what gets loaded, by construction
    /// of [`Self::save_to_dir`].
    pub fn load_from_dir(dir: &Path) -> Result<(ExplainTi, Dataset), PersistError> {
        Self::load_from_dir_with(dir, 1, 1)
    }

    /// [`Self::load_from_dir`] with an explicit embedding-store layout:
    /// the loaded model's GE store is partitioned over `shards` with
    /// each sample on `replicas` consecutive shards. The snapshot format
    /// is layout-agnostic (the store is rebuilt from the weights), so
    /// any snapshot can be loaded under any layout.
    pub fn load_from_dir_with(
        dir: &Path,
        shards: usize,
        replicas: usize,
    ) -> Result<(ExplainTi, Dataset), PersistError> {
        let _span = explainti_obs::span!("persist.load_dir");
        let manifest_path = dir.join(MANIFEST_NAME);
        let manifest_text = match std::fs::read_to_string(&manifest_path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(PersistError::TornSnapshot {
                    detail: format!(
                        "{MANIFEST_NAME} missing from {dir:?} — incomplete save or \
                         pre-manifest snapshot; re-run `train` to produce one"
                    ),
                });
            }
            Err(e) => return Err(e.into()),
        };
        let manifest: Manifest = serde_json::from_str(&manifest_text).map_err(|e| {
            PersistError::Corrupt { file: MANIFEST_NAME.to_string(), detail: format!("{e}") }
        })?;
        if manifest.format_version != SNAPSHOT_FORMAT_VERSION {
            return Err(PersistError::Corrupt {
                file: MANIFEST_NAME.to_string(),
                detail: format!(
                    "format_version {} (this build reads {SNAPSHOT_FORMAT_VERSION})",
                    manifest.format_version
                ),
            });
        }

        let mut verified: std::collections::HashMap<String, Vec<u8>> =
            std::collections::HashMap::new();
        for entry in &manifest.files {
            let path = dir.join(&entry.name);
            let mut data = match std::fs::read(&path) {
                Ok(d) => d,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    return Err(PersistError::TornSnapshot {
                        detail: format!("{} listed in manifest but missing on disk", entry.name),
                    });
                }
                Err(e) => return Err(e.into()),
            };
            // Chaos site: simulate silent media corruption of this
            // artifact after it was read back.
            let short = entry.name.split('.').next().unwrap_or(&entry.name);
            if explainti_faults::triggered(&format!("persist.load.corrupt.{short}")) {
                if let Some(b) = data.first_mut() {
                    *b ^= 0xff;
                }
            }
            if data.len() as u64 != entry.bytes {
                return Err(PersistError::Corrupt {
                    file: entry.name.clone(),
                    detail: format!(
                        "size mismatch: manifest says {} bytes, file has {}",
                        entry.bytes,
                        data.len()
                    ),
                });
            }
            let sum = format!("{:016x}", fnv1a64(&data));
            if sum != entry.fnv1a64 {
                return Err(PersistError::Corrupt {
                    file: entry.name.clone(),
                    detail: format!(
                        "checksum mismatch: manifest {} != actual {sum}",
                        entry.fnv1a64
                    ),
                });
            }
            verified.insert(entry.name.clone(), data);
        }
        let take = |verified: &mut std::collections::HashMap<String, Vec<u8>>,
                    name: &str|
         -> Result<Vec<u8>, PersistError> {
            verified.remove(name).ok_or_else(|| PersistError::TornSnapshot {
                detail: format!("{name} absent from manifest"),
            })
        };

        let corpus_bytes = take(&mut verified, "corpus.json")?;
        let corpus_text = String::from_utf8(corpus_bytes).map_err(|e| PersistError::Corrupt {
            file: "corpus.json".to_string(),
            detail: format!("not UTF-8: {e}"),
        })?;
        let dataset: Dataset = serde_json::from_str(&corpus_text).map_err(|e| {
            PersistError::Corrupt { file: "corpus.json".to_string(), detail: format!("{e}") }
        })?;
        let variant_bytes = take(&mut verified, "variant.txt")?;
        let roberta =
            std::str::from_utf8(&variant_bytes).map(|v| v.trim() == "roberta") == Ok(true);
        // The vocabulary cap and sequence length are the fixed CLI-wide
        // model-directory convention (see `ExplainTiConfig::bert_like`).
        let cfg = if roberta {
            ExplainTiConfig::roberta_like(2048, 32)
        } else {
            ExplainTiConfig::bert_like(2048, 32)
        }
        .with_store_layout(shards, replicas);
        let mut model = ExplainTi::new(&dataset, cfg);
        let weight_bytes = take(&mut verified, "weights.bin")?;
        model.load_weight_bytes(&weight_bytes).map_err(|e| PersistError::Corrupt {
            file: "weights.bin".to_string(),
            detail: format!("{e}"),
        })?;
        // Chaos site: the GE/ANN store is rebuilt (not persisted); when a
        // drill marks it unavailable, serve predictions with `global: []`
        // instead of failing the whole load.
        if explainti_faults::triggered("persist.load.ge") {
            model.set_degraded(true);
            explainti_obs::add_counter("persist.load.degraded", 1);
        } else {
            for task in 0..model.tasks().len() {
                model.refresh_store(task);
            }
        }
        Ok((model, dataset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExplainTiConfig;
    use crate::TaskKind;
    use explainti_corpus::{generate_wiki, WikiConfig};

    #[test]
    fn encode_decode_roundtrip() {
        let weights = vec![1.0f32, -2.5, 0.0, 3.25e-8];
        let bytes = encode_weights(&weights);
        assert_eq!(decode_weights(&bytes).unwrap(), weights);
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let mut bytes = encode_weights(&[1.0]).to_vec();
        bytes[0] = b'X';
        assert!(decode_weights(&bytes).is_err());
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let bytes = encode_weights(&[1.0, 2.0]);
        assert!(decode_weights(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn save_load_restores_predictions() {
        let d = generate_wiki(&WikiConfig { num_tables: 40, seed: 77, ..Default::default() });
        let mut cfg = ExplainTiConfig::bert_like(2048, 24);
        cfg.epochs = 1;
        cfg.use_se = false; // deterministic predictions
        let mut a = ExplainTi::new(&d, cfg.clone());
        a.train();
        let before = a.predict(TaskKind::Type, 0);

        let dir = std::env::temp_dir().join("explainti-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");
        a.save_weights(&path).unwrap();

        let mut b = ExplainTi::new(&d, cfg);
        b.load_weights(&path).unwrap();
        let after = b.predict(TaskKind::Type, 0);
        assert_eq!(before.label, after.label);
        assert_eq!(before.probs, after.probs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_layout_is_rejected() {
        let d = generate_wiki(&WikiConfig { num_tables: 30, seed: 78, ..Default::default() });
        let cfg = ExplainTiConfig::bert_like(2048, 24);
        let mut m = ExplainTi::new(&d, cfg);
        let dir = std::env::temp_dir().join("explainti-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.bin");
        std::fs::write(&path, encode_weights(&[0.0; 7])).unwrap();
        assert!(m.load_weights(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = Manifest {
            format_version: SNAPSHOT_FORMAT_VERSION,
            files: vec![ManifestFile {
                name: "weights.bin".to_string(),
                bytes: 1234,
                fnv1a64: format!("{:016x}", fnv1a64(b"hello")),
            }],
        };
        let text = serde_json::to_string(&m).unwrap();
        let back: Manifest = serde_json::from_str(&text).unwrap();
        assert_eq!(back.format_version, m.format_version);
        assert_eq!(back.files.len(), 1);
        assert_eq!(back.files[0].name, "weights.bin");
        assert_eq!(back.files[0].bytes, 1234);
        assert_eq!(back.files[0].fnv1a64, m.files[0].fnv1a64);
    }

    #[test]
    fn missing_manifest_is_a_torn_snapshot() {
        let dir = std::env::temp_dir().join("explainti-no-manifest");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::remove_file(dir.join(MANIFEST_NAME)).ok();
        match ExplainTi::load_from_dir(&dir) {
            Err(PersistError::TornSnapshot { .. }) => {}
            Err(e) => panic!("expected TornSnapshot, got {e}"),
            Ok(_) => panic!("expected TornSnapshot, got a loaded model"),
        }
    }
}
