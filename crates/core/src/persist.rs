//! Model checkpointing: save and restore all trainable weights.
//!
//! The binary format is deliberately simple — magic, version, weight
//! count, little-endian `f32`s — so checkpoints stay portable across
//! builds. A checkpoint carries *weights only*: the loader must construct
//! the model with the same dataset and configuration first (construction
//! order defines the parameter layout), which mirrors how pre-trained LM
//! checkpoints work.

use crate::config::ExplainTiConfig;
use crate::model::ExplainTi;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use explainti_corpus::Dataset;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 8] = b"EXPLTI01";

/// Encodes a flat weight vector into the checkpoint format.
pub fn encode_weights(weights: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(MAGIC.len() + 8 + weights.len() * 4);
    buf.put_slice(MAGIC);
    buf.put_u64_le(weights.len() as u64);
    for &w in weights {
        buf.put_f32_le(w);
    }
    buf.freeze()
}

/// Decodes a checkpoint produced by [`encode_weights`].
pub fn decode_weights(mut data: &[u8]) -> io::Result<Vec<f32>> {
    if data.len() < MAGIC.len() + 8 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "checkpoint too short"));
    }
    if &data[..MAGIC.len()] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad checkpoint magic"));
    }
    data.advance(MAGIC.len());
    let n = data.get_u64_le() as usize;
    if data.remaining() != n * 4 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "checkpoint payload mismatch: header says {n} weights, body has {} bytes",
                data.remaining()
            ),
        ));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(data.get_f32_le());
    }
    Ok(out)
}

impl ExplainTi {
    /// Snapshot of every trainable weight (encoder + all heads).
    pub fn export_all_weights(&self) -> Vec<f32> {
        self.store().to_flat()
    }

    /// Restores a snapshot from [`Self::export_all_weights`].
    ///
    /// # Panics
    /// Panics if the snapshot does not match the model layout.
    pub fn import_all_weights(&mut self, weights: &[f32]) {
        self.store_mut().load_flat(weights);
    }

    /// Writes a checkpoint of all weights to disk.
    pub fn save_weights(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, encode_weights(&self.export_all_weights()))
    }

    /// Loads a checkpoint from disk into this model.
    ///
    /// Fails when the file is corrupt or the weight count does not match
    /// (i.e. the model was built with a different dataset/configuration).
    pub fn load_weights(&mut self, path: &Path) -> io::Result<()> {
        let data = std::fs::read(path)?;
        let weights = decode_weights(&data)?;
        if weights.len() != self.num_weights() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint has {} weights but the model expects {}",
                    weights.len(),
                    self.num_weights()
                ),
            ));
        }
        self.import_all_weights(&weights);
        Ok(())
    }

    /// Writes the full model-directory layout (`corpus.json`,
    /// `variant.txt`, `weights.bin`) that [`Self::load_from_dir`], the
    /// CLI and the inference server all consume. The corpus snapshot is
    /// required because tokenizer and parameter layouts derive
    /// deterministically from it.
    pub fn save_to_dir(&self, dir: &Path, dataset: &Dataset) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let corpus = serde_json::to_string(dataset)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))?;
        std::fs::write(dir.join("corpus.json"), corpus)?;
        let variant = match self.cfg.encoder.variant {
            explainti_encoder::Variant::BertLike => "bert",
            explainti_encoder::Variant::RobertaLike => "roberta",
        };
        std::fs::write(dir.join("variant.txt"), variant)?;
        self.save_weights(&dir.join("weights.bin"))
    }

    /// Rebuilds a model from a directory written by [`Self::save_to_dir`]
    /// (or the `train` CLI command): reads the corpus snapshot, picks the
    /// recorded encoder variant, loads the weight checkpoint, and
    /// refreshes every task's embedding store so GE/SE retrievals match
    /// the loaded weights. Returns the dataset alongside the model
    /// because serving needs the label names.
    pub fn load_from_dir(dir: &Path) -> io::Result<(ExplainTi, Dataset)> {
        let _span = explainti_obs::span!("persist.load_dir");
        let corpus_path = dir.join("corpus.json");
        let text = std::fs::read_to_string(&corpus_path)?;
        let dataset: Dataset = serde_json::from_str(&text).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("parse {corpus_path:?}: {e}"))
        })?;
        let roberta = std::fs::read_to_string(dir.join("variant.txt"))
            .map(|v| v.trim() == "roberta")
            .unwrap_or(false);
        // The vocabulary cap and sequence length are the fixed CLI-wide
        // model-directory convention (see `ExplainTiConfig::bert_like`).
        let cfg = if roberta {
            ExplainTiConfig::roberta_like(2048, 32)
        } else {
            ExplainTiConfig::bert_like(2048, 32)
        };
        let mut model = ExplainTi::new(&dataset, cfg);
        model.load_weights(&dir.join("weights.bin"))?;
        for task in 0..model.tasks().len() {
            model.refresh_store(task);
        }
        Ok((model, dataset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExplainTiConfig;
    use crate::TaskKind;
    use explainti_corpus::{generate_wiki, WikiConfig};

    #[test]
    fn encode_decode_roundtrip() {
        let weights = vec![1.0f32, -2.5, 0.0, 3.25e-8];
        let bytes = encode_weights(&weights);
        assert_eq!(decode_weights(&bytes).unwrap(), weights);
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let mut bytes = encode_weights(&[1.0]).to_vec();
        bytes[0] = b'X';
        assert!(decode_weights(&bytes).is_err());
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let bytes = encode_weights(&[1.0, 2.0]);
        assert!(decode_weights(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn save_load_restores_predictions() {
        let d = generate_wiki(&WikiConfig { num_tables: 40, seed: 77, ..Default::default() });
        let mut cfg = ExplainTiConfig::bert_like(2048, 24);
        cfg.epochs = 1;
        cfg.use_se = false; // deterministic predictions
        let mut a = ExplainTi::new(&d, cfg.clone());
        a.train();
        let before = a.predict(TaskKind::Type, 0);

        let dir = std::env::temp_dir().join("explainti-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");
        a.save_weights(&path).unwrap();

        let mut b = ExplainTi::new(&d, cfg);
        b.load_weights(&path).unwrap();
        let after = b.predict(TaskKind::Type, 0);
        assert_eq!(before.label, after.label);
        assert_eq!(before.probs, after.probs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_layout_is_rejected() {
        let d = generate_wiki(&WikiConfig { num_tables: 30, seed: 78, ..Default::default() });
        let cfg = ExplainTiConfig::bert_like(2048, 24);
        let mut m = ExplainTi::new(&d, cfg);
        let dir = std::env::temp_dir().join("explainti-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.bin");
        std::fs::write(&path, encode_weights(&[0.0; 7])).unwrap();
        assert!(m.load_weights(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
