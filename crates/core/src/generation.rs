//! Versioned model generations for zero-downtime hot swap (DESIGN.md §15).
//!
//! A [`Generation`] bundles one immutable model + label set under a
//! monotonically increasing id. The serving layer keeps the live
//! generation behind a [`GenerationHandle`]; a swap loads the new
//! generation off to the side (from the crash-safe snapshot machinery)
//! and then replaces the `Arc` atomically. Requests snapshot the `Arc`
//! once at dispatch, so in-flight work finishes on the generation it
//! started on while new requests see the new one — no draining, no
//! downtime.

use crate::ExplainTi;
use explainti_sync::{classes, OrderedRwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One immutable model generation.
pub struct Generation {
    /// The model serving this generation.
    pub model: Arc<ExplainTi>,
    /// Class labels of the primary (column-type) task.
    pub labels: Vec<String>,
    /// Monotonic generation id, starting at 1 for the boot generation.
    pub id: u64,
}

/// Atomically swappable pointer to the live [`Generation`].
pub struct GenerationHandle {
    current: OrderedRwLock<Arc<Generation>>,
    next_id: AtomicU64,
}

impl GenerationHandle {
    /// Wraps the boot model as generation 1.
    pub fn new(model: Arc<ExplainTi>, labels: Vec<String>) -> Self {
        Self {
            current: OrderedRwLock::new(
                &classes::CORE_GENERATION,
                Arc::new(Generation { model, labels, id: 1 }),
            ),
            next_id: AtomicU64::new(2),
        }
    }

    /// Snapshots the live generation. Callers hold the returned `Arc`
    /// for the duration of their request; a concurrent swap does not
    /// affect them.
    pub fn current(&self) -> Arc<Generation> {
        self.current.read().clone()
    }

    /// Installs `model` as the next generation and returns
    /// `(previous_id, new_id)`. The previous generation stays alive
    /// until the last in-flight request drops its `Arc`.
    pub fn swap(&self, model: Arc<ExplainTi>, labels: Vec<String>) -> (u64, u64) {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let fresh = Arc::new(Generation { model, labels, id });
        let mut live = self.current.write();
        let previous = live.id;
        *live = fresh;
        (previous, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExplainTiConfig;
    use explainti_corpus::{generate_wiki, WikiConfig};

    fn tiny() -> Arc<ExplainTi> {
        let dataset = generate_wiki(&WikiConfig { num_tables: 4, seed: 99, ..Default::default() });
        Arc::new(ExplainTi::new(&dataset, ExplainTiConfig::bert_like(512, 16)))
    }

    #[test]
    fn swap_preserves_in_flight_generation() {
        let handle = GenerationHandle::new(tiny(), vec!["a".into()]);
        let held = handle.current();
        assert_eq!(held.id, 1);
        let (prev, next) = handle.swap(tiny(), vec!["b".into()]);
        assert_eq!((prev, next), (1, 2));
        // The held snapshot still serves generation 1.
        assert_eq!(held.id, 1);
        assert_eq!(held.labels, vec!["a".to_string()]);
        assert_eq!(handle.current().id, 2);
    }

    #[test]
    fn generation_ids_are_monotonic() {
        let handle = GenerationHandle::new(tiny(), Vec::new());
        let m = tiny();
        let (_, a) = handle.swap(m.clone(), Vec::new());
        let (prev, b) = handle.swap(m, Vec::new());
        assert_eq!(prev, a);
        assert!(b > a);
    }
}
