//! Multi-task, multi-view fine-tuning (Algorithm 5).
//!
//! Per epoch the trainer alternates over the registered tasks (type, then
//! relation), handling their imbalanced sizes naturally, exactly as the
//! paper describes. Per mini-batch sample it assembles the joint loss of
//! Eq. 11 — `L = L_S + α·L_L + β·L_G` — back-propagates, and steps AdamW
//! under a linearly decaying schedule. The embedding store `Q` is
//! initialised before the first epoch and refreshed every
//! `refresh_epochs` epochs. The epoch with the best validation
//! F1-weighted is restored at the end (the paper's model selection).

use crate::config::TaskKind;
use crate::model::ExplainTi;
use explainti_corpus::Split;
use explainti_metrics::F1Scores;
use explainti_nn::{AdamW, LinearSchedule};
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Per-epoch, per-task training log entry.
///
/// Serialises with durations as fractional seconds, so `--report-out`
/// files are plain JSON numbers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochLog {
    /// Epoch number (0-based).
    pub epoch: usize,
    /// The task trained in this entry.
    pub task: TaskKind,
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Validation F1 after the epoch.
    pub valid_f1: F1Scores,
    /// Wall-clock time spent training this task this epoch.
    pub elapsed: Duration,
}

/// Outcome of [`ExplainTi::train`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainReport {
    /// Per-epoch logs (one entry per task per epoch).
    pub epochs: Vec<EpochLog>,
    /// Total wall-clock training time (includes store refreshes).
    pub total_time: Duration,
    /// Epoch whose weights were kept (best mean validation F1-weighted).
    pub best_epoch: usize,
}

impl ExplainTi {
    /// Fine-tunes the model per Algorithm 5 and restores the best epoch.
    pub fn train(&mut self) -> TrainReport {
        // The span feeds telemetry; the `Instant` stays because
        // `TrainReport` is a functional output and must carry timings
        // even when telemetry is off.
        let _train_span = explainti_obs::span!("train.total");
        let t0 = Instant::now();
        let mut report = TrainReport::default();

        let needs_store = self.cfg.use_ge || self.cfg.use_se;
        let num_tasks = self.tasks.len();
        if needs_store {
            for task in 0..num_tasks {
                self.refresh_store(task);
            }
        }

        let total_steps: usize = self
            .tasks
            .iter()
            .map(|t| (t.data.train_idx.len() / self.cfg.batch_size.max(1) + 1) * self.cfg.epochs)
            .sum();
        let warmup = total_steps / 20 + 1;
        let mut opt = AdamW::new(LinearSchedule::new(self.cfg.lr, warmup, total_steps));

        let mut best_score = f64::NEG_INFINITY;
        let mut best_weights: Option<Vec<f32>> = None;
        let mut best_epoch = 0usize;

        for epoch in 0..self.cfg.epochs {
            let _epoch_span = explainti_obs::span!("train.epoch");
            if needs_store && epoch > 0 && epoch % self.cfg.refresh_epochs == 0 {
                for task in 0..num_tasks {
                    self.refresh_store(task);
                }
            }

            let mut epoch_score = 0.0f64;
            for task in 0..num_tasks {
                let _task_span = explainti_obs::span!("train.task");
                let t_task = Instant::now();
                let mut order = self.tasks[task].data.train_idx.clone();
                order.shuffle(&mut self.rng);
                let mut loss_sum = 0.0f32;
                let mut loss_count = 0usize;
                for batch in order.chunks(self.cfg.batch_size.max(1)) {
                    for &idx in batch {
                        loss_sum += self.train_step(task, idx);
                        loss_count += 1;
                    }
                    opt.step(&mut self.store);
                }
                let kind = self.tasks[task].data.kind;
                let valid_f1 = self.evaluate(kind, Split::Valid);
                epoch_score += valid_f1.weighted;
                report.epochs.push(EpochLog {
                    epoch,
                    task: kind,
                    train_loss: loss_sum / loss_count.max(1) as f32,
                    valid_f1,
                    elapsed: t_task.elapsed(),
                });
            }

            epoch_score /= num_tasks as f64;
            if epoch_score > best_score {
                best_score = epoch_score;
                best_weights = Some(self.store.to_flat());
                best_epoch = epoch;
            }
        }

        if let Some(w) = best_weights {
            self.store.load_flat(&w);
            // Stores were computed under the final-epoch weights; refresh
            // them so GE/SE retrievals match the restored encoder.
            if needs_store {
                for task in 0..num_tasks {
                    self.refresh_store(task);
                }
            }
        }
        report.best_epoch = best_epoch;
        report.total_time = t0.elapsed();
        report
    }

    /// One sample's forward/backward pass; returns the joint loss value.
    fn train_step(&mut self, task: usize, idx: usize) -> f32 {
        let _span = explainti_obs::span!("train.step");
        let label = self.tasks[task].data.samples[idx].label;
        let fwd = self.forward_sample(task, idx, true);
        let mut g = fwd.graph;
        // L_S (Eq. 10 — or Eq. 1's base loss when SE is ablated).
        let l_s = g.cross_entropy(fwd.final_logits, &[label]);
        let mut total = l_s;
        if let Some(ll) = fwd.l_l {
            // α · L_L (Eq. 7).
            let ce = g.cross_entropy(ll, &[label]);
            let scaled = g.scale(ce, self.cfg.alpha);
            total = g.add(total, scaled);
        }
        if let Some(lg) = fwd.l_g {
            // β · L_G (Eq. 8).
            let ce = g.cross_entropy(lg, &[label]);
            let scaled = g.scale(ce, self.cfg.beta);
            total = g.add(total, scaled);
        }
        let loss = g.value(total).as_slice()[0];
        g.backward(total);
        g.flush_grads(&mut self.store);
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExplainTiConfig;
    use explainti_corpus::{generate_wiki, WikiConfig};

    /// End-to-end smoke test: a tiny model on a tiny corpus must beat the
    /// majority-class baseline on the *training* split after training.
    #[test]
    fn training_learns_above_chance() {
        let d = generate_wiki(&WikiConfig { num_tables: 60, seed: 31, ..Default::default() });
        let mut cfg = ExplainTiConfig::bert_like(2048, 24);
        cfg.epochs = 2;
        cfg.top_k = 4;
        cfg.sample_r = 4;
        cfg.window = 3;
        let mut m = ExplainTi::new(&d, cfg);
        let report = m.train();
        assert_eq!(report.epochs.len(), 2 * 2); // two tasks, two epochs
        let f1 = m.evaluate(TaskKind::Type, explainti_corpus::Split::Train);
        assert!(f1.micro > 0.20, "train micro-F1 too low: {}", f1.micro);
        assert!(report.epochs.iter().all(|e| e.train_loss.is_finite()));
    }

    #[test]
    fn loss_decreases_across_epochs() {
        let d = generate_wiki(&WikiConfig { num_tables: 50, seed: 33, ..Default::default() });
        let mut cfg = ExplainTiConfig::bert_like(2048, 24);
        cfg.epochs = 3;
        cfg.use_ge = false;
        cfg.use_se = false;
        cfg.use_le = false;
        let mut m = ExplainTi::new(&d, cfg);
        let report = m.train();
        let type_losses: Vec<f32> = report
            .epochs
            .iter()
            .filter(|e| e.task == TaskKind::Type)
            .map(|e| e.train_loss)
            .collect();
        assert!(
            type_losses.last().unwrap() < type_losses.first().unwrap(),
            "loss did not decrease: {type_losses:?}"
        );
    }
}
