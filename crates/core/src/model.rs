//! The ExplainTI model: encoder + per-task heads + the three explanation
//! modules (Algorithms 1, 2 and 4 of the paper).
//!
//! Design notes on faithfulness to the paper:
//!
//! * **LE (Algorithm 1)** — each window's `t_j` is the mean embedding of
//!   the live positions *outside* the window ("the representation of the
//!   sample without each window", as Algorithm 1 describes), scored by
//!   `KL(softmax(s_j) ‖ softmax(logits))` and normalised into relevance
//!   scores `RS_j` (Eq. 3). `RS_j` enters the graph as a constant (no
//!   gradient through the KL), and the local logits are the RS-weighted
//!   sum of the window logits `s_j`; the paper aggregates the σ-activated
//!   scores — summing logits instead keeps the op set minimal (DESIGN.md).
//! * **GE (Algorithm 2)** — cosine influence scores (Eq. 4) are computed
//!   in-graph against ℓ2-normalised stored embeddings (norms detached), so
//!   the GE loss shapes the encoder, with retrieval through the HNSW
//!   index.
//! * **SE (Algorithm 4)** — dot-product attention over `r` neighbours
//!   sampled from the column graph, restricted to nodes present in the
//!   embedding store; the attended context is concatenated with `E_[CLS]`
//!   for the final classifier (Eq. 9). An isolated node falls back to
//!   attending to itself.

use crate::config::{ExplainTiConfig, TaskKind};
use crate::data::{build_tokenizer, TaskData};
use crate::explain::{Explanation, GlobalInfluence, LocalSpan, Prediction, StructuralNeighbor};
use crate::store::EmbeddingStore;
use explainti_corpus::{Dataset, Split};
use explainti_encoder::TransformerEncoder;
use explainti_metrics::{f1_scores, F1Scores};
use explainti_nn::{kl_divergence, softmax, Graph, Linear, NodeId, ParamStore, Tensor};
use explainti_tokenizer::Tokenizer;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Per-task classification heads (`W`, `W_l`, `W_g`, `W_s` in the paper).
pub(crate) struct TaskHeads {
    /// Base classifier over `E_[CLS]` (Eq. 1).
    pub w: Linear,
    /// Local-view scorer (Eq. 2).
    pub w_l: Linear,
    /// Global-view classifier (Eq. 8's `l_G`).
    pub w_g: Linear,
    /// Structural classifier over `[E_s ‖ E_[CLS]]` (Eq. 9).
    pub w_s: Linear,
}

/// One task's data, heads, and embedding store.
pub struct TaskState {
    /// Serialised samples, graph and splits.
    pub data: TaskData,
    pub(crate) heads: TaskHeads,
    /// The embedding store `Q` (training samples only).
    pub q: EmbeddingStore,
}

/// Result of one sample's forward pass, used by training and prediction.
pub(crate) struct SampleForward {
    pub graph: Graph,
    /// Final prediction logits (structural when SE is on, base otherwise).
    pub final_logits: NodeId,
    /// Local logits `l_L`, when LE is enabled and windows exist.
    pub l_l: Option<NodeId>,
    /// Global logits `l_G`, when GE is enabled and `Q` is non-empty.
    pub l_g: Option<NodeId>,
    pub local_spans: Vec<LocalSpan>,
    pub global_infl: Vec<GlobalInfluence>,
    pub structural: Vec<StructuralNeighbor>,
}

/// One sample's node ids and explanation bundles on a *shared* tape —
/// what [`ExplainTi::forward_encoded_in`] returns so batched inference
/// can forward many samples through one [`Graph`] (amortising the
/// parameter snapshots that dominate small-model forward cost).
pub(crate) struct ForwardViews {
    pub final_logits: NodeId,
    pub l_l: Option<NodeId>,
    pub l_g: Option<NodeId>,
    pub local_spans: Vec<LocalSpan>,
    pub global_infl: Vec<GlobalInfluence>,
    pub structural: Vec<StructuralNeighbor>,
}

/// The end-to-end ExplainTI model.
pub struct ExplainTi {
    /// Model configuration (ablation switches included).
    pub cfg: ExplainTiConfig,
    /// The tokenizer (vocabulary from the training split).
    pub tokenizer: Tokenizer,
    pub(crate) store: ParamStore,
    pub(crate) encoder: TransformerEncoder,
    /// int8 twin of the encoder, present when `cfg.quantized`. Built
    /// from the f32 weights and rebuilt whenever they change
    /// ([`Self::enable_quantized`], [`Self::refresh_store`]); inference
    /// forwards route through it, training never does.
    pub(crate) qenc: Option<explainti_encoder::QuantizedEncoder>,
    pub(crate) tasks: Vec<TaskState>,
    pub(crate) rng: SmallRng,
    /// Set when the GE/ANN store could not be (re)built at load time;
    /// serving continues with `global: []` and reports the flag through
    /// `/v1/healthz` and `/v1/metrics` (DESIGN.md §11).
    degraded: std::sync::atomic::AtomicBool,
}

impl ExplainTi {
    /// Builds a model over `dataset`. `cfg.encoder.vocab_size` is treated
    /// as a vocabulary *cap*; the actual size comes from the tokenizer.
    ///
    /// The relation task is registered only when the dataset annotates
    /// pairs (GitTables does not).
    pub fn new(dataset: &Dataset, mut cfg: ExplainTiConfig) -> Self {
        let tokenizer = build_tokenizer(dataset, cfg.encoder.vocab_size);
        cfg.encoder.vocab_size = tokenizer.vocab_size();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let encoder = TransformerEncoder::new(&mut store, cfg.encoder.clone(), &mut rng);
        let d = encoder.d_model();

        let mut tasks = Vec::new();
        let type_data =
            TaskData::prepare_type(dataset, &tokenizer, cfg.encoder.max_seq, cfg.use_pp);
        tasks.push(TaskState {
            heads: TaskHeads {
                w: Linear::new(&mut store, "type.w", d, type_data.num_classes, &mut rng),
                w_l: Linear::new(&mut store, "type.w_l", d, type_data.num_classes, &mut rng),
                w_g: Linear::new(&mut store, "type.w_g", d, type_data.num_classes, &mut rng),
                w_s: Linear::new(&mut store, "type.w_s", 2 * d, type_data.num_classes, &mut rng),
            },
            q: EmbeddingStore::with_shards(d, cfg.store_shards, cfg.store_replicas),
            data: type_data,
        });
        if !dataset.collection.annotated_pairs().is_empty() {
            let rel_data =
                TaskData::prepare_relation(dataset, &tokenizer, cfg.encoder.max_seq, cfg.use_pp);
            tasks.push(TaskState {
                heads: TaskHeads {
                    w: Linear::new(&mut store, "rel.w", d, rel_data.num_classes, &mut rng),
                    w_l: Linear::new(&mut store, "rel.w_l", d, rel_data.num_classes, &mut rng),
                    w_g: Linear::new(&mut store, "rel.w_g", d, rel_data.num_classes, &mut rng),
                    w_s: Linear::new(&mut store, "rel.w_s", 2 * d, rel_data.num_classes, &mut rng),
                },
                q: EmbeddingStore::with_shards(d, cfg.store_shards, cfg.store_replicas),
                data: rel_data,
            });
        }

        let qenc = cfg
            .quantized
            .then(|| explainti_encoder::QuantizedEncoder::from_encoder(&encoder, &store));
        Self {
            cfg,
            tokenizer,
            store,
            encoder,
            qenc,
            tasks,
            rng,
            degraded: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Switches inference onto the int8 quantized path: builds (or
    /// rebuilds) the quantized encoder twin from the current f32 weights
    /// and flips `cfg.quantized`. Call after loading or training weights;
    /// training itself always runs f32.
    pub fn enable_quantized(&mut self) {
        self.cfg.quantized = true;
        self.qenc =
            Some(explainti_encoder::QuantizedEncoder::from_encoder(&self.encoder, &self.store));
    }

    /// Whether the model is serving in degraded mode (GE/ANN store
    /// unavailable — global explanations come back empty).
    pub fn is_degraded(&self) -> bool {
        // ORDERING: Relaxed — degraded mode is a lone advisory flag; the
        // store publishes no other data, so no edge is needed.
        self.degraded.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Marks (or clears) degraded mode. `&self` so the serving layer can
    /// flip it on a shared `Arc<ExplainTi>`.
    pub fn set_degraded(&self, on: bool) {
        // ORDERING: Relaxed — lone flag, see `is_degraded`.
        self.degraded.store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// Registered tasks.
    pub fn tasks(&self) -> &[TaskState] {
        &self.tasks
    }

    /// Index of a task by kind, if registered.
    pub fn task_index(&self, kind: TaskKind) -> Option<usize> {
        self.tasks.iter().position(|t| t.data.kind == kind)
    }

    /// Total number of trainable weights (diagnostics).
    pub fn num_weights(&self) -> usize {
        self.store.num_weights()
    }

    pub(crate) fn store(&self) -> &ParamStore {
        &self.store
    }

    pub(crate) fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Masked-token pre-training of the encoder on the training-split
    /// serialisations (the stand-in for loading a published BERT/RoBERTa
    /// checkpoint; see DESIGN.md §2). Returns the final-epoch MLM loss.
    pub fn pretrain(&mut self, cfg: &explainti_encoder::mlm::PretrainConfig) -> f32 {
        let mut seqs = Vec::new();
        for task in &self.tasks {
            for &idx in &task.data.train_idx {
                seqs.push(task.data.samples[idx].encoded.clone());
            }
        }
        explainti_encoder::mlm::pretrain_mlm(
            &self.encoder,
            &mut self.store,
            &seqs,
            cfg,
            &mut self.rng,
        )
    }

    /// Exports the encoder weights (to share a pre-trained checkpoint
    /// across models built on the same tokenizer and encoder config).
    pub fn export_encoder(&self) -> Vec<f32> {
        self.encoder.export_weights(&self.store)
    }

    /// Imports encoder weights exported by [`Self::export_encoder`].
    pub fn load_encoder(&mut self, checkpoint: &[f32]) {
        self.encoder.import_weights(&mut self.store, checkpoint);
    }

    /// Runs the encoder over every training sample of `task` and rebuilds
    /// the embedding store `Q` (Algorithm 2's initialisation/refresh).
    ///
    /// Samples go through [`TransformerEncoder::embed_cls_batch`] in
    /// chunks so each chunk shares one tape (and one snapshot of the
    /// encoder weights) instead of re-materialising them per sample.
    pub fn refresh_store(&mut self, task: usize) {
        let _span = explainti_obs::span!("store.refresh");
        const CHUNK: usize = 32;
        let train: Vec<usize> = self.tasks[task].data.train_idx.clone();
        for chunk in train.chunks(CHUNK) {
            let encs: Vec<explainti_tokenizer::Encoded> = chunk
                .iter()
                .map(|&idx| self.tasks[task].data.samples[idx].encoded.clone())
                .collect();
            let cls = self.encoder.embed_cls_batch(&self.store, &encs, &mut self.rng);
            for (&idx, cls) in chunk.iter().zip(cls) {
                let label = self.tasks[task].data.samples[idx].label;
                self.tasks[task].q.set(idx, cls, label);
            }
        }
        self.tasks[task].q.rebuild_index();
        // Training epochs move the f32 weights; keep the int8 twin in
        // sync at the same cadence as the embedding store.
        if self.cfg.quantized {
            self.qenc =
                Some(explainti_encoder::QuantizedEncoder::from_encoder(&self.encoder, &self.store));
        }
    }

    /// Embeds one training sample of `task` and inserts it into the live
    /// store without an index rebuild: the online feedback path. The
    /// sample becomes retrievable by GE immediately (incremental HNSW
    /// insert on every replica shard).
    pub fn ingest_sample(&mut self, task: usize, idx: usize) {
        let enc = self.tasks[task].data.samples[idx].encoded.clone();
        let cls = self.encoder.embed_cls_batch(&self.store, &[enc], &mut self.rng);
        let label = self.tasks[task].data.samples[idx].label;
        if let Some(cls) = cls.into_iter().next() {
            self.tasks[task].q.insert_online(idx, cls, label);
        }
    }

    /// Evicts a sample from the store, tombstoning it in the live index
    /// so GE stops retrieving it. Returns false when it was not stored.
    pub fn evict_sample(&mut self, task: usize, idx: usize) -> bool {
        self.tasks[task].q.remove(idx)
    }

    /// Full forward pass over one sample, producing all logits and
    /// explanation bundles. Training advances the model RNG (dropout
    /// masks, SE neighbour draws); inference paths leave it untouched.
    pub(crate) fn forward_sample(
        &mut self,
        task: usize,
        sample_idx: usize,
        training: bool,
    ) -> SampleForward {
        let encoded = self.tasks[task].data.samples[sample_idx].encoded.clone();
        let mut rng = self.rng.clone();
        let fwd = self.forward_encoded(task, &encoded, Some(sample_idx), training, true, &mut rng);
        self.rng = rng;
        fwd
    }

    /// Logits-only forward (no LE/GE work): LE and GE contribute training
    /// losses and explanations but never the final logits, so evaluation
    /// sweeps skip them. [`Self::predict`] keeps the full bundle.
    fn forward_logits_only(&self, task: usize, sample_idx: usize) -> SampleForward {
        let encoded = &self.tasks[task].data.samples[sample_idx].encoded;
        let mut rng = self.inference_rng();
        self.forward_encoded(task, encoded, Some(sample_idx), false, false, &mut rng)
    }

    /// RNG for inference forwards. Inference never consumes randomness
    /// (dropout is off and SE's eval path derives its own per-node
    /// deterministic draw), but the forward signature threads one through
    /// for the training path, so hand it a fixed-seed throwaway.
    fn inference_rng(&self) -> SmallRng {
        SmallRng::seed_from_u64(self.cfg.seed)
    }

    /// Forward pass over an arbitrary encoded sequence on a fresh tape.
    /// See [`Self::forward_encoded_in`] for the `node` semantics.
    pub(crate) fn forward_encoded(
        &self,
        task: usize,
        encoded: &explainti_tokenizer::Encoded,
        node: Option<usize>,
        training: bool,
        with_views: bool,
        rng: &mut SmallRng,
    ) -> SampleForward {
        let mut g = Graph::new();
        let v = self.forward_encoded_in(&mut g, task, encoded, node, training, with_views, rng);
        SampleForward {
            graph: g,
            final_logits: v.final_logits,
            l_l: v.l_l,
            l_g: v.l_g,
            local_spans: v.local_spans,
            global_infl: v.global_infl,
            structural: v.structural,
        }
    }

    /// Forward pass over an arbitrary encoded sequence on a caller-owned
    /// (possibly shared) tape. `node` is the sample's column-graph node
    /// when it exists in the task data; ad-hoc inputs (e.g. freshly
    /// ingested CSV columns) pass `None`, in which case SE falls back to
    /// self-attention and GE retrieves without self-exclusion.
    ///
    /// Takes `&self`: the prediction path reads shared state only, so
    /// concurrent callers (the inference server's worker pool) can share
    /// one model behind an `Arc` without locking.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn forward_encoded_in(
        &self,
        g: &mut Graph,
        task: usize,
        encoded: &explainti_tokenizer::Encoded,
        node: Option<usize>,
        training: bool,
        with_views: bool,
        rng: &mut SmallRng,
    ) -> ForwardViews {
        let _span = explainti_obs::span!("model.forward");
        let kind = self.tasks[task].data.kind;
        // Inference may run the int8 twin; its output enters the tape as a
        // leaf (no encoder backprop — inference never calls backward).
        // Training always takes the f32 differentiable path.
        let emb = match (&self.qenc, training) {
            (Some(qenc), false) if self.cfg.quantized => {
                let t = explainti_nn::with_thread_arena(|arena| qenc.forward(encoded, arena));
                g.input(t)
            }
            _ => self.encoder.forward(g, &self.store, encoded, training, rng),
        };
        let cls = self.encoder.cls(g, emb);
        let cls_value = g.value(cls).clone();

        // Final prediction logits: the structural classifier (Eq. 9) when
        // SE is enabled, otherwise the base classifier over E_[CLS]
        // (Eq. 1). Computed first so LE's relevance scores compare window
        // distributions against the *actual* prediction distribution.
        let (final_logits, structural) = if self.cfg.use_se {
            self.structural_explanations(task, g, cls, &cls_value, node, training, rng)
        } else {
            let base = self.tasks[task].heads.w.forward(g, &self.store, cls);
            (base, Vec::new())
        };

        // --- LE: Algorithm 1 -------------------------------------------
        let (l_l, local_spans) = if self.cfg.use_le && with_views {
            self.local_explanations(task, g, emb, final_logits, encoded, kind)
        } else {
            (None, Vec::new())
        };

        // --- GE: Algorithm 2 -------------------------------------------
        let (l_g, global_infl) = if self.cfg.use_ge && with_views {
            self.global_explanations(task, g, cls, &cls_value, node, training)
        } else {
            (None, Vec::new())
        };

        ForwardViews { final_logits, l_l, l_g, local_spans, global_infl, structural }
    }

    /// Algorithm 1: sliding-window relevance scores and local logits.
    #[allow(clippy::too_many_arguments)]
    fn local_explanations(
        &self,
        task: usize,
        g: &mut Graph,
        emb: NodeId,
        reference_logits: NodeId,
        encoded: &explainti_tokenizer::Encoded,
        kind: TaskKind,
    ) -> (Option<NodeId>, Vec<LocalSpan>) {
        let _span = explainti_obs::span!("explain.le");
        let k = self.cfg.window;
        let len = encoded.len;
        // Enumerate concept anchors `(start, len, paired_start)`: sliding
        // windows for ExplainTI, marker-delimited segments for the
        // SelfExplain reproduction; pairwise anchors for relations.
        let mut anchors: Vec<(usize, usize, Option<usize>)> = Vec::new();
        match self.cfg.le_mode {
            crate::config::LeMode::Segments => {
                // Segments between special/marker tokens (ids < 8).
                let mut start = None;
                for pos in 1..len {
                    let special = encoded.ids[pos] < 8;
                    match (start, special) {
                        (None, false) => start = Some(pos),
                        (Some(s), true) => {
                            anchors.push((s, pos - s, None));
                            start = None;
                        }
                        _ => {}
                    }
                }
                if let Some(s) = start {
                    anchors.push((s, len - s, None));
                }
            }
            crate::config::LeMode::SlidingWindow => match kind {
                TaskKind::Type => {
                    let last = len.saturating_sub(k);
                    for j in 1..last {
                        anchors.push((j, k, None));
                    }
                }
                TaskKind::Relation => {
                    let second = encoded.second_start.unwrap_or(len / 2);
                    let stride = self.cfg.pair_stride.max(1);
                    let first_last = second.saturating_sub(k);
                    let last = len.saturating_sub(k);
                    let mut j = 1;
                    while j < first_last {
                        let mut js = second;
                        while js < last {
                            anchors.push((j, k, Some(js)));
                            js += stride;
                        }
                        j += stride;
                    }
                }
            },
        }
        if anchors.is_empty() {
            return (None, Vec::new());
        }

        let full_probs = softmax(g.value(reference_logits).as_slice());
        // Mean embedding over the live (non-pad) positions, used to build
        // each window's "input without the concept" representation.
        let live = g.rows_range(emb, 0, len);
        let all_mean = g.mean_rows(live);
        let mut window_nodes: Vec<NodeId> = Vec::with_capacity(anchors.len());
        let mut kls: Vec<f32> = Vec::with_capacity(anchors.len());
        for &(j, wlen, js) in &anchors {
            // Algorithm 1 describes t_j as "the representation of the
            // sample without each window"; we realise that literally as
            // the mean embedding over every live position *outside* the
            // window(s): t_j = (len·mean_all − k·mean_win) / (len − k).
            // Scoring the sample-minus-window distribution makes
            // KL(s_j ‖ logits) large exactly when the window carries the
            // prediction — the behaviour the paper's Fig 1/6 examples
            // show. (The paper's inline formula `mean(E_win) − E_CLS` is
            // a window-centric vector whose KL ranking anti-correlates
            // with relevance at our scale; see DESIGN.md.)
            let win = g.rows_range(emb, j, wlen);
            let win_mean = g.mean_rows(win);
            let (removed_mean, removed_count) = match js {
                Some(js) => {
                    let win2 = g.rows_range(emb, js, wlen);
                    let win2_mean = g.mean_rows(win2);
                    let sum = g.add(win_mean, win2_mean);
                    (g.scale(sum, 0.5), 2 * wlen)
                }
                None => (win_mean, wlen),
            };
            let remaining = len.saturating_sub(removed_count).max(1) as f32;
            let scaled_all = g.scale(all_mean, len as f32 / remaining);
            let scaled_win = g.scale(removed_mean, removed_count as f32 / remaining);
            let t = g.sub(scaled_all, scaled_win);
            let s = self.tasks[task].heads.w_l.forward(g, &self.store, t);
            let probs = softmax(g.value(s).as_slice());
            let score = match self.cfg.le_scoring {
                crate::config::LeScoring::KlDivergence => kl_divergence(&probs, &full_probs),
                crate::config::LeScoring::LogitDrop => {
                    let pred = full_probs
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    (full_probs[pred] - probs[pred]).abs()
                }
            };
            kls.push(score);
            window_nodes.push(s);
        }

        let tot: f32 = kls.iter().sum();
        let rs: Vec<f32> = if tot > 1e-12 {
            kls.iter().map(|k| k / tot).collect()
        } else {
            vec![1.0 / kls.len() as f32; kls.len()]
        };

        // l_L = Σ_j RS_j · s_j (relevance-weighted window logits).
        let mut l_l: Option<NodeId> = None;
        for (s, &w) in window_nodes.iter().zip(&rs) {
            let scaled = g.scale(*s, w);
            l_l = Some(match l_l {
                Some(acc) => g.add(acc, scaled),
                None => scaled,
            });
        }

        let mut spans: Vec<LocalSpan> = anchors
            .iter()
            .zip(&rs)
            .map(|(&(j, wlen, js), &relevance)| {
                let mut text = self.tokenizer.decode(&encoded.ids[j..j + wlen]);
                if let Some(js) = js {
                    text.push_str(" ⟷ ");
                    text.push_str(&self.tokenizer.decode(&encoded.ids[js..js + wlen]));
                }
                LocalSpan { start: j, window: wlen, pair_start: js, text, relevance }
            })
            .collect();
        spans.sort_by(|a, b| {
            b.relevance.partial_cmp(&a.relevance).unwrap_or(std::cmp::Ordering::Equal)
        });
        (l_l, spans)
    }

    /// Algorithm 2: top-K influential samples and global logits.
    fn global_explanations(
        &self,
        task: usize,
        g: &mut Graph,
        cls: NodeId,
        cls_value: &Tensor,
        node: Option<usize>,
        training: bool,
    ) -> (Option<NodeId>, Vec<GlobalInfluence>) {
        let _span = explainti_obs::span!("explain.ge");
        let exclude = if training { node } else { None };
        // The quantized path scores retrieval with int8 cosine; training
        // sticks to f32 so the GE loss sees the exact store similarities.
        let found = if self.cfg.quantized && !training {
            self.tasks[task].q.top_k_quantized(cls_value, self.cfg.top_k, exclude)
        } else {
            self.tasks[task].q.top_k(cls_value, self.cfg.top_k, exclude)
        };
        if found.is_empty() {
            return (None, Vec::new());
        }
        let d = self.encoder.d_model();
        let kn = found.len();
        let mut q_raw = Tensor::zeros(kn, d);
        let mut q_hat = Tensor::zeros(kn, d);
        for (r, n) in found.iter().enumerate() {
            let e = self.tasks[task].q.get(n.id).expect("retrieved neighbour must be stored");
            q_raw.row_slice_mut(r).copy_from_slice(e.as_slice());
            let norm = e.norm().max(1e-6);
            for (dst, &src) in q_hat.row_slice_mut(r).iter_mut().zip(e.as_slice()) {
                *dst = src / norm;
            }
        }
        // cos(E_CLS, q) with detached norms: (E/‖E‖) · q̂.
        let inv_norm = 1.0 / cls_value.norm().max(1e-6);
        let q_hat_n = g.input(q_hat);
        let q_raw_n = g.input(q_raw);
        let scaled_cls = g.scale(cls, inv_norm);
        let sims = g.matmul_nt(scaled_cls, q_hat_n);
        let is_node = g.softmax(sims);
        let e_g = g.matmul(is_node, q_raw_n);
        let l_g = self.tasks[task].heads.w_g.forward(g, &self.store, e_g);

        let is_values = g.value(is_node).as_slice().to_vec();
        let mut infl: Vec<GlobalInfluence> = found
            .iter()
            .zip(is_values)
            .map(|(n, influence)| GlobalInfluence {
                sample: n.id,
                influence,
                label: self.tasks[task].q.label(n.id).unwrap_or(usize::MAX),
            })
            .collect();
        infl.sort_by(|a, b| {
            b.influence.partial_cmp(&a.influence).unwrap_or(std::cmp::Ordering::Equal)
        });
        (Some(l_g), infl)
    }

    /// Algorithm 4: graph-attention aggregation and structural logits.
    #[allow(clippy::too_many_arguments)]
    fn structural_explanations(
        &self,
        task: usize,
        g: &mut Graph,
        cls: NodeId,
        cls_value: &Tensor,
        node: Option<usize>,
        training: bool,
        rng: &mut SmallRng,
    ) -> (NodeId, Vec<StructuralNeighbor>) {
        let _span = explainti_obs::span!("explain.se");
        let r = self.cfg.sample_r;
        let state = &self.tasks[task];
        let q = &state.q;
        // Training samples fresh neighbours per step (the paper's uniform
        // sampling); inference uses a per-node deterministic draw so
        // predictions are reproducible. Ad-hoc inputs (node = None) have
        // no graph node and fall through to the self-attention fallback.
        let sampled = match node {
            Some(sample_idx) => {
                let pred = |n: usize| n != sample_idx && q.has(n);
                if training {
                    state.data.graph.sample_neighbors(sample_idx, r, Some(&pred), rng)
                } else {
                    let mut eval_rng = SmallRng::seed_from_u64(
                        self.cfg.seed ^ (sample_idx as u64).wrapping_mul(0x9e3779b97f4a7c15),
                    );
                    state.data.graph.sample_neighbors(sample_idx, r, Some(&pred), &mut eval_rng)
                }
            }
            None => Vec::new(),
        };

        let d = self.encoder.d_model();
        let (neigh_matrix, ids): (Tensor, Vec<usize>) = if sampled.is_empty() {
            // Isolated or ad-hoc node: attend to the sample itself so
            // E_s = E_[CLS]; the structural view is reported empty.
            (cls_value.clone(), Vec::new())
        } else {
            let mut m = Tensor::zeros(sampled.len(), d);
            for (row, &n) in sampled.iter().enumerate() {
                m.row_slice_mut(row).copy_from_slice(self.tasks[task].q.get(n).unwrap().as_slice());
            }
            (m, sampled)
        };

        let n_node = g.input(neigh_matrix);
        // Eq. 5 uses raw dot products; post-layer-norm embeddings have
        // norm ~ sqrt(d), so raw dots saturate the softmax into a hard
        // (and noisy) max. Temperature-scaling by 1/d keeps the attention
        // soft enough to average out bad neighbours (noted in DESIGN.md).
        let (as_values_node, e_s) = match self.cfg.se_aggregation {
            crate::config::SeAggregation::Attention => {
                let scores = g.matmul_nt(cls, n_node);
                let scaled = g.scale(scores, 1.0 / d as f32);
                let as_node = g.softmax(scaled);
                let e_s = g.matmul(as_node, n_node);
                (as_node, e_s)
            }
            crate::config::SeAggregation::MeanPooling => {
                let rows = g.value(n_node).rows();
                let uniform = g.input(Tensor::full(1, rows, 1.0 / rows as f32));
                let e_s = g.mean_rows(n_node);
                (uniform, e_s)
            }
        };
        let as_node = as_values_node;
        let e_star = g.concat_cols(e_s, cls);
        let logits = self.tasks[task].heads.w_s.forward(g, &self.store, e_star);

        // Merge duplicate neighbours (with-replacement sampling) by
        // summing attention mass.
        let as_values = g.value(as_node).as_slice().to_vec();
        // BTreeMap, not HashMap: with a HashMap, ties on attention would
        // surface in hash order and the SE ranking would differ run to run.
        let mut merged: std::collections::BTreeMap<usize, f32> = std::collections::BTreeMap::new();
        for (&id, &a) in ids.iter().zip(&as_values) {
            *merged.entry(id).or_insert(0.0) += a;
        }
        let mut structural: Vec<StructuralNeighbor> = merged
            .into_iter()
            .map(|(node, attention)| StructuralNeighbor {
                node,
                attention,
                label: self.tasks[task].q.label(node).unwrap_or(usize::MAX),
            })
            .collect();
        structural.sort_by(|a, b| {
            b.attention
                .partial_cmp(&a.attention)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.node.cmp(&b.node))
        });
        (logits, structural)
    }

    /// Serialises an ad-hoc column with the model's tokenizer, ready for
    /// [`Self::predict_encoded`] / [`Self::predict_encoded_batch`]. The
    /// serving path calls this up front so cache keys and queued jobs
    /// carry the encoded form.
    pub fn encode_ad_hoc_column(
        &self,
        title: &str,
        header: &str,
        cells: &[&str],
    ) -> explainti_tokenizer::Encoded {
        explainti_tokenizer::encode_column(
            &self.tokenizer,
            title,
            header,
            cells,
            self.cfg.encoder.max_seq,
        )
    }

    /// Predicts the type of an *ad-hoc* column that is not part of the
    /// dataset (e.g. freshly ingested from CSV): the column is serialised
    /// with the model's tokenizer, LE and GE work as usual, and SE falls
    /// back to self-attention because the column has no graph node.
    ///
    /// Takes `&self` — the prediction path is shared-state-safe, so an
    /// `Arc<ExplainTi>` serves concurrent predictions without locking.
    pub fn predict_column(&self, title: &str, header: &str, cells: &[&str]) -> Prediction {
        let encoded = self.encode_ad_hoc_column(title, header, cells);
        self.predict_encoded(&encoded)
    }

    /// Predicts one pre-encoded ad-hoc column (type task) with full
    /// multi-view explanations.
    pub fn predict_encoded(&self, encoded: &explainti_tokenizer::Encoded) -> Prediction {
        let task = self.task_index(TaskKind::Type).expect("type task not registered");
        let mut rng = self.inference_rng();
        let fwd = self.forward_encoded(task, encoded, None, false, true, &mut rng);
        Self::prediction_from(fwd)
    }

    /// Predicts a micro-batch of pre-encoded ad-hoc columns (type task)
    /// through **one shared tape**, so the encoder's weight snapshots
    /// amortise across the batch — the entry point the inference server's
    /// batching collector drains into. Results are in input order and
    /// identical to per-sample [`Self::predict_encoded`] calls.
    pub fn predict_encoded_batch(&self, encs: &[explainti_tokenizer::Encoded]) -> Vec<Prediction> {
        let _span = explainti_obs::span!("model.predict_batch");
        let task = self.task_index(TaskKind::Type).expect("type task not registered");
        let pool = explainti_pool::global();
        let chunks = pool.threads().min(encs.len());
        if chunks <= 1 {
            return self.predict_encoded_chunk(task, encs);
        }
        // Per-sequence forwards are independent (each chunk gets its own
        // tape; `inference_rng` is a fixed-seed throwaway that inference
        // never advances), so splitting the batch across the pool yields
        // byte-identical predictions to the serial path in input order.
        let chunk_len = encs.len().div_ceil(chunks);
        let slices: Vec<&[explainti_tokenizer::Encoded]> = encs.chunks(chunk_len).collect();
        explainti_obs::set_gauge("model.predict_batch.chunks", slices.len() as f64);
        pool.map(slices.len(), |i| self.predict_encoded_chunk(task, slices[i]))
            .into_iter()
            .flatten()
            .collect()
    }

    /// Single-tape worker for [`Self::predict_encoded_batch`]: one shared
    /// graph per chunk so the encoder's weight snapshots amortise.
    fn predict_encoded_chunk(
        &self,
        task: usize,
        encs: &[explainti_tokenizer::Encoded],
    ) -> Vec<Prediction> {
        let mut rng = self.inference_rng();
        let mut g = Graph::new();
        encs.iter()
            .map(|enc| {
                let v = self.forward_encoded_in(&mut g, task, enc, None, false, true, &mut rng);
                Self::prediction_from_views(&g, v)
            })
            .collect()
    }

    /// Predicts one sample with full multi-view explanations.
    pub fn predict(&self, kind: TaskKind, sample_idx: usize) -> Prediction {
        let task = self.task_index(kind).expect("task not registered");
        let encoded = &self.tasks[task].data.samples[sample_idx].encoded;
        let mut rng = self.inference_rng();
        let fwd = self.forward_encoded(task, encoded, Some(sample_idx), false, true, &mut rng);
        Self::prediction_from(fwd)
    }

    fn prediction_from(fwd: SampleForward) -> Prediction {
        let views = ForwardViews {
            final_logits: fwd.final_logits,
            l_l: fwd.l_l,
            l_g: fwd.l_g,
            local_spans: fwd.local_spans,
            global_infl: fwd.global_infl,
            structural: fwd.structural,
        };
        Self::prediction_from_views(&fwd.graph, views)
    }

    fn prediction_from_views(g: &Graph, views: ForwardViews) -> Prediction {
        let logits = g.value(views.final_logits).as_slice().to_vec();
        let probs = softmax(&logits);
        let label = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        Prediction {
            label,
            confidence: probs[label],
            probs,
            explanation: Explanation {
                local: views.local_spans,
                global: views.global_infl,
                structural: views.structural,
            },
        }
    }

    /// Evaluates F1 over a split of a task.
    pub fn evaluate(&self, kind: TaskKind, split: Split) -> F1Scores {
        let _span = explainti_obs::span!("evaluate");
        let task = self.task_index(kind).expect("task not registered");
        let indices = self.tasks[task].data.indices(split).to_vec();
        let num_classes = self.tasks[task].data.num_classes;
        let mut preds = Vec::with_capacity(indices.len());
        let mut actual = Vec::with_capacity(indices.len());
        for idx in indices {
            let fwd = self.forward_logits_only(task, idx);
            let logits = fwd.graph.value(fwd.final_logits);
            preds.push(logits.argmax_row(0));
            actual.push(self.tasks[task].data.samples[idx].label);
        }
        f1_scores(&preds, &actual, num_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explainti_corpus::{generate_wiki, WikiConfig};

    fn model() -> ExplainTi {
        let d = generate_wiki(&WikiConfig { num_tables: 50, seed: 21, ..Default::default() });
        let cfg = ExplainTiConfig::bert_like(2048, 32);
        ExplainTi::new(&d, cfg)
    }

    #[test]
    fn registers_both_wiki_tasks() {
        let m = model();
        assert_eq!(m.tasks().len(), 2);
        assert!(m.task_index(TaskKind::Type).is_some());
        assert!(m.task_index(TaskKind::Relation).is_some());
    }

    #[test]
    fn forward_produces_all_views_after_store_init() {
        let mut m = model();
        m.refresh_store(0);
        // Use a sample whose graph node has train-split neighbours so the
        // structural view is populated (isolated nodes legitimately fall
        // back to an empty structural view).
        let sample = (0..m.tasks[0].data.samples.len())
            .find(|&i| m.tasks[0].data.graph.neighbors(i).iter().any(|&n| m.tasks[0].q.has(n)))
            .expect("some sample has stored neighbours");
        let fwd = m.forward_sample(0, sample, false);
        assert!(fwd.l_l.is_some(), "LE missing");
        assert!(fwd.l_g.is_some(), "GE missing");
        assert!(!fwd.local_spans.is_empty());
        assert!(!fwd.global_infl.is_empty());
        assert!(!fwd.structural.is_empty());
        let c = m.tasks[0].data.num_classes;
        assert_eq!(fwd.graph.value(fwd.final_logits).shape(), (1, c));
    }

    #[test]
    fn relevance_scores_sum_to_one() {
        let mut m = model();
        m.refresh_store(0);
        let fwd = m.forward_sample(0, 3, false);
        let total: f32 = fwd.local_spans.iter().map(|s| s.relevance).sum();
        assert!((total - 1.0).abs() < 1e-4, "RS sum {total}");
    }

    #[test]
    fn influence_scores_sum_to_one_and_sorted() {
        let mut m = model();
        m.refresh_store(0);
        let fwd = m.forward_sample(0, 5, false);
        let total: f32 = fwd.global_infl.iter().map(|s| s.influence).sum();
        assert!((total - 1.0).abs() < 1e-4);
        for pair in fwd.global_infl.windows(2) {
            assert!(pair[0].influence >= pair[1].influence);
        }
    }

    #[test]
    fn attention_scores_sum_to_one() {
        let mut m = model();
        m.refresh_store(0);
        let fwd = m.forward_sample(0, 2, false);
        let total: f32 = fwd.structural.iter().map(|s| s.attention).sum();
        assert!((total - 1.0).abs() < 1e-4);
    }

    #[test]
    fn training_excludes_self_from_global_view() {
        let mut m = model();
        m.refresh_store(0);
        let train0 = m.tasks[0].data.train_idx[0];
        let fwd = m.forward_sample(0, train0, true);
        assert!(fwd.global_infl.iter().all(|g| g.sample != train0));
    }

    #[test]
    fn ablations_drop_their_views() {
        let d = generate_wiki(&WikiConfig { num_tables: 40, seed: 22, ..Default::default() });
        let cfg = ExplainTiConfig::bert_like(2048, 32).without("le").without("ge").without("se");
        let mut m = ExplainTi::new(&d, cfg);
        m.refresh_store(0);
        let fwd = m.forward_sample(0, 0, false);
        assert!(fwd.l_l.is_none());
        assert!(fwd.l_g.is_none());
        assert!(fwd.local_spans.is_empty());
        assert!(fwd.structural.is_empty());
    }

    #[test]
    fn prediction_probabilities_are_a_distribution() {
        let mut m = model();
        m.refresh_store(0);
        let p = m.predict(TaskKind::Type, 1);
        let total: f32 = p.probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-4);
        assert_eq!(
            p.label,
            p.probs.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0
        );
    }

    #[test]
    fn batched_adhoc_prediction_matches_single() {
        let mut m = model();
        m.refresh_store(0);
        let e1 = m.encode_ad_hoc_column("1994 world cup", "country", &["costa rica", "norway"]);
        let e2 = m.encode_ad_hoc_column("grand prix", "driver", &["senna", "prost"]);
        let singles = [m.predict_encoded(&e1), m.predict_encoded(&e2)];
        let batch = m.predict_encoded_batch(&[e1, e2]);
        assert_eq!(batch.len(), 2);
        for (b, s) in batch.iter().zip(&singles) {
            assert_eq!(b.label, s.label);
            assert_eq!(b.probs, s.probs);
            assert_eq!(b.explanation.local.len(), s.explanation.local.len());
            for (bl, sl) in b.explanation.local.iter().zip(&s.explanation.local) {
                assert_eq!(bl.start, sl.start);
                assert_eq!(bl.relevance, sl.relevance);
            }
        }
    }

    #[test]
    fn shared_model_predicts_concurrently() {
        let mut m = model();
        m.refresh_store(0);
        let expected = m.predict_column("geography", "city", &["barcelona", "kyoto"]);
        let shared = std::sync::Arc::new(m);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&shared);
                std::thread::spawn(move || {
                    m.predict_column("geography", "city", &["barcelona", "kyoto"])
                })
            })
            .collect();
        for h in handles {
            let p = h.join().unwrap();
            assert_eq!(p.label, expected.label);
            assert_eq!(p.probs, expected.probs);
        }
    }

    #[test]
    fn relation_forward_uses_pairwise_windows() {
        let mut m = model();
        m.refresh_store(1);
        let fwd = m.forward_sample(1, 0, false);
        assert!(!fwd.local_spans.is_empty());
        assert!(fwd.local_spans.iter().all(|s| s.pair_start.is_some()));
    }
}
