//! Sharded-store behaviour that needs its own process: failpoint-driven
//! replica failover (the failpoint registry is process-global, so these
//! drills can't live in the lib's parallel unit tests) and model-level
//! layout equivalence — a model served from a 4-shard replicated store
//! must predict and explain byte-identically to a single-shard one.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::{Mutex, MutexGuard};

use explainti_core::{EmbeddingStore, ExplainTi, ExplainTiConfig};
use explainti_corpus::{generate_wiki, WikiConfig};
use explainti_faults as faults;
use explainti_nn::Tensor;

fn lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// splitmix64 — deterministic pseudo-random fill values.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fill(q: &mut EmbeddingStore, n: usize, dim: usize) {
    for i in 0..n {
        let v: Vec<f32> =
            (0..dim).map(|d| ((mix((i * dim + d) as u64) % 1000) as f32 / 500.0) - 1.0).collect();
        q.set(i, Tensor::row(v), i % 5);
    }
}

fn query(dim: usize) -> Tensor {
    Tensor::row((0..dim).map(|d| ((mix(d as u64 + 9999) % 1000) as f32 / 500.0) - 1.0).collect())
}

#[test]
fn replicated_store_answers_identically_with_one_shard_down() {
    let _guard = lock();
    faults::clear_all();
    let (n, dim, k) = (120, 8, 6);
    let mut q = EmbeddingStore::with_shards(dim, 4, 2);
    fill(&mut q, n, dim);
    q.rebuild_index();

    let baseline = q.top_k(&query(dim), k, None);
    assert_eq!(baseline.len(), k);

    // One shard reports unavailable for one query: with two replicas the
    // remaining shards cover every sample, so the merged top-k is
    // byte-identical, not merely similar.
    faults::configure("store.shard.unavailable", faults::Policy::Times(1));
    let degraded = q.top_k(&query(dim), k, None);
    faults::clear_all();

    assert_eq!(baseline.len(), degraded.len());
    for (b, d) in baseline.iter().zip(&degraded) {
        assert_eq!(b.id, d.id);
        assert_eq!(b.similarity.to_bits(), d.similarity.to_bits(), "similarity drifted");
    }
    let hits = faults::hit_counts();
    assert!(
        hits.iter().any(|(site, n)| site == "store.shard.unavailable" && *n >= 1),
        "failover drill did not trip the failpoint: {hits:?}"
    );
}

#[test]
fn unreplicated_shard_loss_degrades_without_panicking() {
    let _guard = lock();
    faults::clear_all();
    let (n, dim, k) = (120, 8, 6);
    let mut q = EmbeddingStore::with_shards(dim, 4, 1);
    fill(&mut q, n, dim);
    q.rebuild_index();

    // No replicas: losing a shard loses its samples for this query. The
    // store must still answer cleanly with what the other shards hold.
    faults::configure("store.shard.unavailable", faults::Policy::Times(1));
    let degraded = q.top_k(&query(dim), k, None);
    faults::clear_all();
    assert!(degraded.len() <= k);
    assert!(!degraded.is_empty(), "three healthy shards must still answer");
}

#[test]
fn model_predictions_are_identical_across_store_layouts() {
    let d = generate_wiki(&WikiConfig { num_tables: 16, seed: 77, ..Default::default() });
    let build = |cfg: ExplainTiConfig| {
        let mut m = ExplainTi::new(&d, cfg);
        for t in 0..m.tasks().len() {
            m.refresh_store(t);
        }
        m
    };
    let single = build(ExplainTiConfig::bert_like(2048, 32));
    let sharded = build(ExplainTiConfig::bert_like(2048, 32).with_store_layout(4, 2));

    assert_eq!(single.tasks()[0].q.num_shards(), 1);
    assert_eq!(sharded.tasks()[0].q.num_shards(), 4);
    assert_eq!(single.tasks()[0].q.stored(), sharded.tasks()[0].q.stored());

    // Predictions — label, score, and all three explanation views — must
    // not depend on how the explanation store is partitioned.
    let columns: &[(&str, &str, &[&str])] = &[
        ("1994 world cup", "country", &["costa rica", "morocco", "norway"]),
        ("grand prix", "driver", &["senna", "prost"]),
        ("albums", "year", &["1994", "2001", "1987"]),
    ];
    for (title, header, cells) in columns {
        let a = single.predict_column(title, header, cells);
        let b = sharded.predict_column(title, header, cells);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "prediction diverged across store layouts for column {header:?}"
        );
    }
}

#[test]
fn online_ingest_and_evict_roundtrip_through_the_model() {
    let d = generate_wiki(&WikiConfig { num_tables: 8, seed: 31, ..Default::default() });
    let mut m = ExplainTi::new(&d, ExplainTiConfig::bert_like(2048, 32).with_store_layout(2, 2));
    for t in 0..m.tasks().len() {
        m.refresh_store(t);
    }
    let before = m.tasks()[0].q.stored();
    assert!(before > 0);
    assert!(m.tasks()[0].q.has(0));

    // Evict sample 0: gone from every replica, tombstoned in the index.
    assert!(m.evict_sample(0, 0));
    assert!(!m.tasks()[0].q.has(0));
    assert_eq!(m.tasks()[0].q.stored(), before - 1);
    // A second evict is a no-op.
    assert!(!m.evict_sample(0, 0));

    // Re-ingest: retrievable again without an index rebuild.
    m.ingest_sample(0, 0);
    assert!(m.tasks()[0].q.has(0));
    assert_eq!(m.tasks()[0].q.stored(), before);
    let emb = m.tasks()[0].q.get(0).expect("re-ingested embedding").clone();
    let top = m.tasks()[0].q.top_k(&emb, 1, None);
    assert_eq!(top.first().map(|n| n.id), Some(0), "online insert must be retrievable");
}
