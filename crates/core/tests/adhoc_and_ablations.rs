//! Integration tests for ad-hoc prediction and the design-choice
//! ablation switches.

use explainti_core::{ExplainTi, ExplainTiConfig, LeScoring, SeAggregation, TaskKind};
use explainti_corpus::{generate_wiki, WikiConfig};

fn dataset() -> explainti_corpus::Dataset {
    generate_wiki(&WikiConfig { num_tables: 60, seed: 2001, ..Default::default() })
}

#[test]
fn adhoc_column_prediction_works_without_graph_node() {
    let d = dataset();
    let mut cfg = ExplainTiConfig::bert_like(2048, 32);
    cfg.epochs = 2;
    let mut m = ExplainTi::new(&d, cfg);
    m.train();
    let p = m.predict_column("1994 world cup", "country", &["costa rica", "morocco", "norway"]);
    assert!(p.label < d.collection.type_labels.len());
    assert!((p.probs.iter().sum::<f32>() - 1.0).abs() < 1e-3);
    // LE and GE still produce explanations; SE has no graph node.
    assert!(!p.explanation.local.is_empty());
    assert!(!p.explanation.global.is_empty());
    assert!(p.explanation.structural.is_empty());
}

#[test]
fn adhoc_prediction_is_deterministic() {
    let d = dataset();
    let mut cfg = ExplainTiConfig::bert_like(2048, 32);
    cfg.epochs = 1;
    let mut m = ExplainTi::new(&d, cfg);
    m.train();
    let a = m.predict_column("geography", "city", &["barcelona", "kyoto"]);
    let b = m.predict_column("geography", "city", &["barcelona", "kyoto"]);
    assert_eq!(a.label, b.label);
    assert_eq!(a.probs, b.probs);
}

#[test]
fn mean_pooling_reports_uniform_attention() {
    let d = dataset();
    let mut cfg = ExplainTiConfig::bert_like(2048, 32);
    cfg.se_aggregation = SeAggregation::MeanPooling;
    let mut m = ExplainTi::new(&d, cfg);
    m.refresh_store(0);
    // Find a sample with at least two distinct neighbours.
    for idx in 0..m.tasks()[0].data.samples.len() {
        let p = m.predict(TaskKind::Type, idx);
        if p.explanation.structural.len() >= 2 {
            let a0 = p.explanation.structural[0].attention;
            let total: f32 = p.explanation.structural.iter().map(|n| n.attention).sum();
            assert!((total - 1.0).abs() < 1e-3);
            // Per-draw mass is uniform, so merged duplicates are integer
            // multiples of 1/r.
            let r = m.cfg.sample_r as f32;
            let quantum = 1.0 / r;
            let multiple = a0 / quantum;
            assert!(
                (multiple - multiple.round()).abs() < 1e-3,
                "attention {a0} is not a multiple of 1/r"
            );
            return;
        }
    }
    panic!("no sample with >= 2 structural neighbours");
}

#[test]
fn logit_drop_scoring_still_normalises() {
    let d = dataset();
    let mut cfg = ExplainTiConfig::bert_like(2048, 32);
    cfg.le_scoring = LeScoring::LogitDrop;
    let mut m = ExplainTi::new(&d, cfg);
    m.refresh_store(0);
    let p = m.predict(TaskKind::Type, 0);
    let total: f32 = p.explanation.local.iter().map(|s| s.relevance).sum();
    assert!((total - 1.0).abs() < 1e-3, "RS sum {total}");
}

#[test]
fn checkpoint_roundtrip_through_disk() {
    let d = dataset();
    let mut cfg = ExplainTiConfig::bert_like(2048, 32);
    cfg.epochs = 1;
    cfg.use_se = false;
    let mut m = ExplainTi::new(&d, cfg.clone());
    m.train();
    let dir = std::env::temp_dir().join("explainti-adhoc-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("w.bin");
    m.save_weights(&path).unwrap();

    let mut fresh = ExplainTi::new(&d, cfg);
    fresh.load_weights(&path).unwrap();
    assert_eq!(m.predict(TaskKind::Type, 0).label, fresh.predict(TaskKind::Type, 0).label);
    std::fs::remove_file(path).ok();
}
