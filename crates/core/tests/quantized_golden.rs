//! Golden tolerance suite for the int8 quantized inference path.
//!
//! Unlike `golden_explanations` (which pins the f32 path bitwise), the
//! quantized path is *approximate by construction*: per-row symmetric
//! int8 weights and activations, i32 accumulation, f32 dequantisation.
//! Its contract is therefore two-sided:
//!
//! 1. **Pinned bytes** — the quantized pipeline is still deterministic,
//!    so its own outputs are blessed bitwise into
//!    `tests/golden/quantized.json` and must not drift between commits.
//! 2. **Tolerance vs f32** — on the seed corpus the quantized
//!    probabilities stay within `1e-2` max-abs of the f32 twin, top-1
//!    type/relation predictions agree, and split accuracy drops no more
//!    than 0.5 points (the Table V error-budget argument, DESIGN.md §16).
//!
//! Re-bless after an intentional change:
//!
//! ```text
//! EXPLAINTI_BLESS=1 cargo test -p explainti-core --test quantized_golden
//! git diff crates/core/tests/golden/quantized.json  # review!
//! ```

use explainti_core::{ExplainTi, ExplainTiConfig, TaskKind};
use explainti_corpus::{generate_wiki, Split, WikiConfig};
use serde::Serialize;
use std::path::PathBuf;

const SEED: u64 = 4242;
const TABLES: usize = 16;

/// Max-abs probability divergence the int8 path may show vs f32
/// (measured ≈ 3.5e-3 on the seed corpus; gate leaves ~3× headroom).
const PROB_TOL: f32 = 1e-2;

/// Maximum accuracy (micro-F1) the quantized path may lose, in points.
const DRIFT_POINTS: f64 = 0.5;

fn corpus() -> explainti_corpus::Dataset {
    generate_wiki(&WikiConfig { num_tables: TABLES, seed: SEED, ..Default::default() })
}

fn build(quantized: bool) -> ExplainTi {
    let cfg = ExplainTiConfig::bert_like(2048, 32).with_quantized(quantized);
    let mut model = ExplainTi::new(&corpus(), cfg);
    for task in 0..model.tasks().len() {
        model.refresh_store(task);
    }
    model
}

fn probes(model: &ExplainTi, kind: TaskKind, n: usize) -> Vec<usize> {
    let task = model.task_index(kind).expect("task registered");
    model.tasks()[task].data.train_idx.iter().copied().take(n).collect()
}

// ---- pinned quantized bytes -------------------------------------------

#[derive(Serialize)]
struct GoldenSample {
    sample: usize,
    label: usize,
    /// `f32::to_bits` of every class probability, as hex.
    prob_bits: Vec<String>,
    /// LE: (window start, relevance bits) in ranked order.
    local: Vec<(usize, String)>,
    /// GE: (training-sample id, influence bits) in ranked order.
    global: Vec<(usize, String)>,
    /// SE: (neighbour node, attention bits) in ranked order.
    structural: Vec<(usize, String)>,
}

#[derive(Serialize)]
struct Golden {
    corpus_seed: u64,
    num_tables: usize,
    samples: Vec<GoldenSample>,
}

fn bits(x: f32) -> String {
    format!("{:08x}", x.to_bits())
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/quantized.json")
}

fn current() -> Golden {
    let model = build(true);
    let mut samples = Vec::new();
    for idx in probes(&model, TaskKind::Type, 3) {
        let pred = model.predict(TaskKind::Type, idx);
        samples.push(GoldenSample {
            sample: idx,
            label: pred.label,
            prob_bits: pred.probs.iter().map(|&p| bits(p)).collect(),
            local: pred.explanation.local.iter().map(|s| (s.start, bits(s.relevance))).collect(),
            global: pred.explanation.global.iter().map(|g| (g.sample, bits(g.influence))).collect(),
            structural: pred
                .explanation
                .structural
                .iter()
                .map(|n| (n.node, bits(n.attention)))
                .collect(),
        });
    }
    Golden { corpus_seed: SEED, num_tables: TABLES, samples }
}

#[test]
fn quantized_explanations_match_golden() {
    let got = serde_json::to_string_pretty(&current()).unwrap() + "\n";
    let path = golden_path();
    if std::env::var("EXPLAINTI_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with EXPLAINTI_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "quantized output drifted from {}; if the change is intentional, re-bless with \
         EXPLAINTI_BLESS=1 and review the diff",
        path.display()
    );
}

// ---- tolerance vs the f32 twin ----------------------------------------

#[test]
fn quantized_probs_track_f32_within_tolerance() {
    let f32_model = build(false);
    let q_model = build(true);
    for kind in [TaskKind::Type, TaskKind::Relation] {
        if f32_model.task_index(kind).is_none() {
            continue;
        }
        let mut max_err = 0.0f32;
        for idx in probes(&f32_model, kind, 8) {
            let pf = f32_model.predict(kind, idx);
            let pq = q_model.predict(kind, idx);
            assert_eq!(pf.probs.len(), pq.probs.len());
            for (a, b) in pf.probs.iter().zip(&pq.probs) {
                max_err = max_err.max((a - b).abs());
            }
            assert_eq!(
                pf.label, pq.label,
                "{kind} sample {idx}: quantized top-1 flipped ({} → {})",
                pf.label, pq.label
            );
        }
        assert!(
            max_err <= PROB_TOL,
            "{kind}: quantized max-abs prob error {max_err} exceeds {PROB_TOL}"
        );
    }
}

#[test]
fn quantized_views_rank_like_f32() {
    // Scores differ within tolerance, but what gets *explained* — the
    // top-ranked window, neighbour, and graph node — must not change.
    let f32_model = build(false);
    let q_model = build(true);
    for idx in probes(&f32_model, TaskKind::Type, 3) {
        let pf = f32_model.predict(TaskKind::Type, idx);
        let pq = q_model.predict(TaskKind::Type, idx);
        assert_eq!(
            pf.explanation.local.first().map(|s| s.start),
            pq.explanation.local.first().map(|s| s.start),
            "sample {idx}: LE top window moved"
        );
        assert_eq!(
            pf.explanation.global.first().map(|g| g.sample),
            pq.explanation.global.first().map(|g| g.sample),
            "sample {idx}: GE top neighbour moved"
        );
        assert_eq!(
            pf.explanation.structural.first().map(|n| n.node),
            pq.explanation.structural.first().map(|n| n.node),
            "sample {idx}: SE top node moved"
        );
    }
}

#[test]
fn quantized_accuracy_drift_is_bounded() {
    // The xeval gate: across whole splits (not just probe samples) the
    // quantized path may not lose more than DRIFT_POINTS of accuracy.
    let f32_model = build(false);
    let q_model = build(true);
    for split in [Split::Train, Split::Test] {
        let ef = f32_model.evaluate(TaskKind::Type, split);
        let eq = q_model.evaluate(TaskKind::Type, split);
        let drop_points = (ef.micro - eq.micro) * 100.0;
        assert!(
            drop_points <= DRIFT_POINTS,
            "{split:?}: quantized micro-F1 dropped {drop_points:.3} points \
             (f32 {:.4} → q8 {:.4})",
            ef.micro,
            eq.micro
        );
    }
}
