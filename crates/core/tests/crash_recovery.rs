//! Crash-recovery matrix for the snapshot protocol (DESIGN.md §11).
//!
//! For every persist failpoint site, the invariant under test is:
//! a save that dies at that site leaves a directory from which
//! `load_from_dir` either (a) loads one of the two *complete* snapshots
//! that ever existed (the old one, or — when the crash lands after the
//! manifest rename — the new one), or (b) refuses with a typed
//! [`PersistError`]. It must never produce a silently mixed model.
//!
//! The failpoint registry is process-global, so every test here
//! serialises on one mutex (cargo runs `#[test]` fns of one binary on
//! parallel threads).

use explainti_core::{ExplainTi, ExplainTiConfig, PersistError, MANIFEST_NAME};
use explainti_corpus::{generate_wiki, Dataset, WikiConfig};
use explainti_faults as faults;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny_dataset() -> Dataset {
    generate_wiki(&WikiConfig { num_tables: 16, seed: 4242, ..Default::default() })
}

/// Builds a model with the fixed model-directory convention config
/// (`load_from_dir` always reconstructs with `bert_like(2048, 32)`).
fn build_model(d: &Dataset) -> ExplainTi {
    ExplainTi::new(d, ExplainTiConfig::bert_like(2048, 32))
}

/// A deterministic probe prediction: the full probability vector over an
/// ad-hoc column (the inference path is `&self` and RNG-free, so equal
/// weights ⇒ bitwise-equal probs).
fn fingerprint(m: &ExplainTi) -> Vec<f32> {
    m.predict_column("world cities", "city", &["london", "paris", "tokyo"]).probs
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("explainti-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Every failpoint site inside `save_to_dir`, in write order.
const SAVE_SITES: [&str; 12] = [
    "persist.before_write.corpus",
    "persist.after_write.corpus",
    "persist.after_rename.corpus",
    "persist.before_write.variant",
    "persist.after_write.variant",
    "persist.after_rename.variant",
    "persist.before_write.weights",
    "persist.after_write.weights",
    "persist.after_rename.weights",
    "persist.before_write.manifest",
    "persist.after_write.manifest",
    "persist.after_rename.manifest",
];

#[test]
fn crash_matrix_previous_snapshot_or_typed_error() {
    let _g = lock();
    faults::clear_all();
    let d = tiny_dataset();
    let model_a = build_model(&d);
    let fp_a = fingerprint(&model_a);

    // Model B: same layout, visibly different weights, so a loaded
    // fingerprint tells us exactly which snapshot generation we got.
    let mut model_b = build_model(&d);
    let perturbed: Vec<f32> = model_b.export_all_weights().iter().map(|w| w + 0.25).collect();
    model_b.import_all_weights(&perturbed);
    let fp_b = fingerprint(&model_b);
    assert_ne!(fp_a, fp_b, "probe prediction must distinguish the snapshots");

    let dir = test_dir("crash-matrix");
    let mut saw_old = 0;
    let mut saw_new = 0;
    let mut saw_error = 0;
    for site in SAVE_SITES {
        // Fresh, complete snapshot A before every interleaving, so each
        // site is tested independently.
        faults::clear_all();
        model_a.save_to_dir(&dir, &d).expect("clean save of snapshot A");

        faults::configure(site, faults::Policy::Always);
        let saved = model_b.save_to_dir(&dir, &d);
        faults::clear_all();
        assert!(saved.is_err(), "site {site}: injected fault must surface as an error");
        assert!(faults::hit_count(site) > 0, "site {site} never tripped");

        match ExplainTi::load_from_dir(&dir) {
            Ok((m, _)) => {
                let fp = fingerprint(&m);
                if fp == fp_a {
                    saw_old += 1;
                } else if fp == fp_b {
                    // Only a crash *after* the manifest rename commits the
                    // new snapshot; anywhere earlier, loading B would mean
                    // the old manifest vouched for new bytes.
                    assert_eq!(
                        site, "persist.after_rename.manifest",
                        "site {site}: new snapshot visible before the manifest committed"
                    );
                    saw_new += 1;
                } else {
                    panic!("site {site}: loaded a model matching neither snapshot");
                }
            }
            Err(PersistError::TornSnapshot { .. } | PersistError::Corrupt { .. }) => {
                saw_error += 1;
            }
            Err(PersistError::Io(e)) => panic!("site {site}: unexpected io error: {e}"),
        }
    }
    // The matrix must exercise all three legitimate outcomes: rollback
    // to A, detectably-torn, and (manifest-committed) roll-forward to B.
    assert!(saw_old > 0, "no site rolled back to the previous snapshot");
    assert!(saw_error > 0, "no site produced a typed torn/corrupt error");
    assert_eq!(saw_new, 1, "exactly the post-manifest site commits the new snapshot");
    assert_eq!(saw_old + saw_new + saw_error, SAVE_SITES.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_roundtrip_preserves_predictions_exactly() {
    let _g = lock();
    faults::clear_all();
    let d = tiny_dataset();
    let model = build_model(&d);
    let before = fingerprint(&model);

    let dir = test_dir("clean-roundtrip");
    model.save_to_dir(&dir, &d).unwrap();
    let (loaded, _) = ExplainTi::load_from_dir(&dir).unwrap();
    assert!(!loaded.is_degraded());
    assert_eq!(before, fingerprint(&loaded), "round-trip must be bit-exact");

    // Saving the loaded model again reproduces identical artifact bytes.
    let dir2 = test_dir("clean-roundtrip-2");
    loaded.save_to_dir(&dir2, &d).unwrap();
    for name in ["corpus.json", "variant.txt", "weights.bin", MANIFEST_NAME] {
        assert_eq!(
            std::fs::read(dir.join(name)).unwrap(),
            std::fs::read(dir2.join(name)).unwrap(),
            "{name} must be byte-identical across a save/load/save cycle"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();
}

#[test]
fn corrupt_read_failpoints_are_detected() {
    let _g = lock();
    faults::clear_all();
    let d = tiny_dataset();
    let model = build_model(&d);
    let dir = test_dir("corrupt-read");
    model.save_to_dir(&dir, &d).unwrap();

    // (The manifest itself is not in the loop: it is verified by parsing,
    // covered in `real_on_disk_damage_is_detected_without_failpoints`.)
    for short in ["corpus", "variant", "weights"] {
        faults::configure(&format!("persist.load.corrupt.{short}"), faults::Policy::Always);
        let res = ExplainTi::load_from_dir(&dir);
        faults::clear_all();
        match res {
            Err(PersistError::Corrupt { file, .. }) => {
                assert!(
                    file.to_lowercase().starts_with(&short.to_lowercase()),
                    "corrupting {short} blamed {file}"
                );
            }
            Err(e) => panic!("corrupting {short}: wrong error kind: {e}"),
            Ok(_) => panic!("corrupting {short} went undetected"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn real_on_disk_damage_is_detected_without_failpoints() {
    let _g = lock();
    faults::clear_all();
    let d = tiny_dataset();
    let model = build_model(&d);
    let dir = test_dir("disk-damage");

    // Truncated weights file → checksum/size mismatch.
    model.save_to_dir(&dir, &d).unwrap();
    let weights_path = dir.join("weights.bin");
    let bytes = std::fs::read(&weights_path).unwrap();
    std::fs::write(&weights_path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(matches!(ExplainTi::load_from_dir(&dir), Err(PersistError::Corrupt { .. })));

    // Missing artifact → torn snapshot.
    model.save_to_dir(&dir, &d).unwrap();
    std::fs::remove_file(&weights_path).unwrap();
    assert!(matches!(ExplainTi::load_from_dir(&dir), Err(PersistError::TornSnapshot { .. })));

    // Unparsable manifest → corrupt manifest.
    model.save_to_dir(&dir, &d).unwrap();
    std::fs::write(dir.join(MANIFEST_NAME), b"{not json").unwrap();
    assert!(matches!(ExplainTi::load_from_dir(&dir), Err(PersistError::Corrupt { .. })));

    // A single flipped bit in the weights → corrupt, not a wrong model.
    model.save_to_dir(&dir, &d).unwrap();
    let mut bytes = std::fs::read(&weights_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&weights_path, &bytes).unwrap();
    assert!(matches!(ExplainTi::load_from_dir(&dir), Err(PersistError::Corrupt { .. })));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ge_store_failure_degrades_instead_of_failing() {
    let _g = lock();
    faults::clear_all();
    let d = tiny_dataset();
    let model = build_model(&d);
    let dir = test_dir("degraded-load");
    model.save_to_dir(&dir, &d).unwrap();

    faults::configure("persist.load.ge", faults::Policy::Always);
    let loaded = ExplainTi::load_from_dir(&dir);
    faults::clear_all();
    let (m, _) = loaded.expect("a GE-store failure must not fail the whole load");
    assert!(m.is_degraded(), "degraded flag must be set");
    let pred = m.predict_column("world cities", "city", &["london", "paris"]);
    assert!(
        pred.explanation.global.is_empty(),
        "degraded mode serves predictions with empty global explanations"
    );
    assert!(!pred.probs.is_empty(), "the prediction itself still works");
    std::fs::remove_dir_all(&dir).ok();
}
