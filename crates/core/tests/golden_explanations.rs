//! Golden regression test pinning *explanation semantics* — LE window
//! relevance (KL-derived) scores and GE top-K neighbour ids — for a
//! fixed-seed tiny corpus, so kernel rewrites and refactors can't
//! silently change what the model explains (PR 3's golden-JSON pattern,
//! extended from wire bytes to explanation content).
//!
//! Floats are pinned via `f32::to_bits` hex, so the comparison is
//! bitwise: the PR 3 kernels are byte-identical across thread counts by
//! construction, and this test keeps them that way end-to-end.
//!
//! To re-bless after an *intentional* semantic change:
//!
//! ```text
//! EXPLAINTI_BLESS=1 cargo test -p explainti-core --test golden_explanations
//! git diff crates/core/tests/golden/explanations.json  # review!
//! ```

use explainti_core::{ExplainTi, ExplainTiConfig, TaskKind};
use explainti_corpus::{generate_wiki, WikiConfig};
use serde::Serialize;
use std::path::PathBuf;

/// One probe sample's pinned explanation facts.
#[derive(Serialize)]
struct GoldenSample {
    sample: usize,
    label: usize,
    /// `f32::to_bits` of every class probability, as hex.
    prob_bits: Vec<String>,
    /// LE: (window start, relevance bits) in ranked order.
    local: Vec<(usize, String)>,
    /// GE: (training-sample id, influence bits) in ranked order.
    global: Vec<(usize, String)>,
    /// SE: (neighbour node, attention bits) in ranked order.
    structural: Vec<(usize, String)>,
}

#[derive(Serialize)]
struct Golden {
    corpus_seed: u64,
    num_tables: usize,
    samples: Vec<GoldenSample>,
}

fn bits(x: f32) -> String {
    format!("{:08x}", x.to_bits())
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/explanations.json")
}

fn current() -> Golden {
    const SEED: u64 = 4242;
    const TABLES: usize = 16;
    let d = generate_wiki(&WikiConfig { num_tables: TABLES, seed: SEED, ..Default::default() });
    let mut model = ExplainTi::new(&d, ExplainTiConfig::bert_like(2048, 32));
    for task in 0..model.tasks().len() {
        model.refresh_store(task);
    }
    let task = model.task_index(TaskKind::Type).expect("type task registered");
    let probes = &model.tasks()[task].data.train_idx;
    let probes: Vec<usize> = probes.iter().copied().take(3).collect();
    let mut samples = Vec::new();
    for idx in probes {
        let pred = model.predict(TaskKind::Type, idx);
        samples.push(GoldenSample {
            sample: idx,
            label: pred.label,
            prob_bits: pred.probs.iter().map(|&p| bits(p)).collect(),
            local: pred.explanation.local.iter().map(|s| (s.start, bits(s.relevance))).collect(),
            global: pred.explanation.global.iter().map(|g| (g.sample, bits(g.influence))).collect(),
            structural: pred
                .explanation
                .structural
                .iter()
                .map(|n| (n.node, bits(n.attention)))
                .collect(),
        });
    }
    Golden { corpus_seed: SEED, num_tables: TABLES, samples }
}

#[test]
fn explanations_match_golden() {
    let got = serde_json::to_string_pretty(&current()).unwrap() + "\n";
    let path = golden_path();
    if std::env::var("EXPLAINTI_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with EXPLAINTI_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "explanation output drifted from {}; if the change is intentional, re-bless with \
         EXPLAINTI_BLESS=1 and review the diff",
        path.display()
    );
}

#[test]
fn golden_probes_have_all_three_views() {
    // Guard against the golden silently pinning empty vectors (which
    // would let a broken LE/GE/SE pass the bitwise comparison above).
    let g = current();
    assert_eq!(g.samples.len(), 3);
    for s in &g.samples {
        assert!(!s.prob_bits.is_empty(), "sample {}: no probabilities", s.sample);
        assert!(!s.local.is_empty(), "sample {}: LE produced no windows", s.sample);
        assert!(!s.global.is_empty(), "sample {}: GE produced no neighbours", s.sample);
    }
    // Isolated graph nodes legitimately report an empty structural view,
    // but the probe set as a whole must exercise SE.
    assert!(
        g.samples.iter().any(|s| !s.structural.is_empty()),
        "no probe sample produced a structural view"
    );
}
