//! # explainti-metrics
//!
//! Classification metrics (F1-micro / -macro / -weighted, the triplet
//! reported in every table of the paper), confusion counting, wall-clock
//! timing helpers for the efficiency analysis (Table V), and plain-text
//! table rendering used by the bench binaries.

#![warn(missing_docs)]

pub mod report;

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The F1 triplet reported throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct F1Scores {
    /// Micro-averaged F1 (equals accuracy for single-label prediction).
    pub micro: f64,
    /// Macro-averaged F1 (unweighted mean over classes).
    pub macro_: f64,
    /// Support-weighted mean F1.
    pub weighted: f64,
}

impl F1Scores {
    /// Mean of the three scores (the paper's "average F1" summary).
    pub fn mean(&self) -> f64 {
        (self.micro + self.macro_ + self.weighted) / 3.0
    }
}

impl std::fmt::Display for F1Scores {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} / {:.3} / {:.3}", self.micro, self.macro_, self.weighted)
    }
}

/// Per-class confusion counts for single-label classification.
#[derive(Debug, Clone)]
pub struct Confusion {
    num_classes: usize,
    tp: Vec<usize>,
    fp: Vec<usize>,
    fn_: Vec<usize>,
    support: Vec<usize>,
    total: usize,
    correct: usize,
}

impl Confusion {
    /// Creates an empty confusion accumulator over `num_classes` labels.
    pub fn new(num_classes: usize) -> Self {
        Self {
            num_classes,
            tp: vec![0; num_classes],
            fp: vec![0; num_classes],
            fn_: vec![0; num_classes],
            support: vec![0; num_classes],
            total: 0,
            correct: 0,
        }
    }

    /// Records one prediction.
    ///
    /// # Panics
    /// Panics when either label is out of range.
    pub fn record(&mut self, predicted: usize, actual: usize) {
        assert!(predicted < self.num_classes, "predicted {predicted} out of range");
        assert!(actual < self.num_classes, "actual {actual} out of range");
        self.total += 1;
        self.support[actual] += 1;
        if predicted == actual {
            self.correct += 1;
            self.tp[actual] += 1;
        } else {
            self.fp[predicted] += 1;
            self.fn_[actual] += 1;
        }
    }

    /// Records a batch of `(predicted, actual)` pairs.
    pub fn record_all(&mut self, pairs: impl IntoIterator<Item = (usize, usize)>) {
        for (p, a) in pairs {
            self.record(p, a);
        }
    }

    /// Number of recorded predictions.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Plain accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.correct as f64 / self.total as f64
    }

    /// Per-class F1 (0 when the class has no predictions and no support).
    pub fn f1_per_class(&self) -> Vec<f64> {
        (0..self.num_classes)
            .map(|c| {
                let tp = self.tp[c] as f64;
                let denom = 2.0 * tp + self.fp[c] as f64 + self.fn_[c] as f64;
                if denom == 0.0 {
                    0.0
                } else {
                    2.0 * tp / denom
                }
            })
            .collect()
    }

    /// The paper's F1 triplet.
    ///
    /// F1-micro is computed from global TP/FP/FN (equal to accuracy for
    /// single-label tasks); F1-macro averages per-class F1 over classes
    /// with support; F1-weighted weights per-class F1 by support.
    ///
    /// Note: scikit-learn's `average="macro"` averages over the union of
    /// gold and *predicted* labels, so it additionally counts zero-F1
    /// classes that were predicted but never occur in the gold labels;
    /// this implementation's macro can therefore read slightly higher
    /// than sklearn's on the same predictions.
    pub fn f1(&self) -> F1Scores {
        let per_class = self.f1_per_class();
        let with_support: Vec<usize> =
            (0..self.num_classes).filter(|&c| self.support[c] > 0).collect();
        let macro_ = if with_support.is_empty() {
            0.0
        } else {
            with_support.iter().map(|&c| per_class[c]).sum::<f64>() / with_support.len() as f64
        };
        let weighted = if self.total == 0 {
            0.0
        } else {
            (0..self.num_classes).map(|c| per_class[c] * self.support[c] as f64).sum::<f64>()
                / self.total as f64
        };
        F1Scores { micro: self.accuracy(), macro_, weighted }
    }
}

/// One row of a per-class classification report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassReport {
    /// Class index.
    pub class: usize,
    /// Precision of the class.
    pub precision: f64,
    /// Recall of the class.
    pub recall: f64,
    /// F1 of the class.
    pub f1: f64,
    /// Number of gold samples of the class.
    pub support: usize,
}

impl Confusion {
    /// Per-class precision/recall/F1/support, in class order. Classes with
    /// neither support nor predictions are omitted.
    pub fn per_class_report(&self) -> Vec<ClassReport> {
        let f1 = self.f1_per_class();
        (0..self.num_classes)
            .filter(|&c| self.support[c] > 0 || self.tp[c] + self.fp[c] > 0)
            .map(|c| {
                let tp = self.tp[c] as f64;
                let predicted = tp + self.fp[c] as f64;
                let actual = tp + self.fn_[c] as f64;
                ClassReport {
                    class: c,
                    precision: if predicted > 0.0 { tp / predicted } else { 0.0 },
                    recall: if actual > 0.0 { tp / actual } else { 0.0 },
                    f1: f1[c],
                    support: self.support[c],
                }
            })
            .collect()
    }
}

/// Computes the F1 triplet directly from prediction/label slices.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn f1_scores(predicted: &[usize], actual: &[usize], num_classes: usize) -> F1Scores {
    assert_eq!(predicted.len(), actual.len(), "prediction/label length mismatch");
    let mut c = Confusion::new(num_classes);
    c.record_all(predicted.iter().copied().zip(actual.iter().copied()));
    c.f1()
}

/// Wall-clock stopwatch for the Table V efficiency analysis.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
    laps: Vec<(String, Duration)>,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    /// Starts a stopwatch.
    pub fn new() -> Self {
        Self { start: Instant::now(), laps: Vec::new() }
    }

    /// Records the elapsed time since the previous lap under `label` and
    /// restarts the lap timer.
    pub fn lap(&mut self, label: &str) -> Duration {
        let d = self.start.elapsed();
        self.laps.push((label.to_string(), d));
        self.start = Instant::now();
        d
    }

    /// Recorded laps.
    pub fn laps(&self) -> &[(String, Duration)] {
        &self.laps
    }
}

/// Formats a duration like the paper's Table V ("354.2m" / "9.5s").
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 60.0 {
        format!("{:.1}m", secs / 60.0)
    } else if secs >= 1.0 {
        format!("{secs:.1}s")
    } else {
        format!("{:.0}ms", secs * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_one() {
        let f1 = f1_scores(&[0, 1, 2], &[0, 1, 2], 3);
        assert_eq!(f1.micro, 1.0);
        assert_eq!(f1.macro_, 1.0);
        assert_eq!(f1.weighted, 1.0);
    }

    #[test]
    fn all_wrong_scores_zero() {
        let f1 = f1_scores(&[1, 2, 0], &[0, 1, 2], 3);
        assert_eq!(f1.micro, 0.0);
        assert_eq!(f1.macro_, 0.0);
        assert_eq!(f1.weighted, 0.0);
    }

    #[test]
    fn micro_equals_accuracy() {
        let preds = [0, 0, 1, 1, 2];
        let actual = [0, 1, 1, 1, 0];
        let f1 = f1_scores(&preds, &actual, 3);
        assert!((f1.micro - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn macro_is_hurt_by_rare_class_errors() {
        // Class 1 is rare and always wrong; class 0 is common and right.
        let preds = [0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        let actual = [0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let f1 = f1_scores(&preds, &actual, 2);
        assert!(f1.micro > 0.85);
        assert!(f1.macro_ < 0.55, "macro {}", f1.macro_);
        assert!(f1.weighted > f1.macro_);
    }

    #[test]
    fn macro_ignores_unsupported_classes() {
        // 5 classes but only 2 appear in the data.
        let f1 = f1_scores(&[0, 1], &[0, 1], 5);
        assert_eq!(f1.macro_, 1.0);
    }

    #[test]
    fn known_sklearn_example_matches() {
        // sklearn: y_true = [0,1,2,0,1,2], y_pred = [0,2,1,0,0,1]
        // micro = 1/3, macro = 0.2667, weighted = 0.2667
        let f1 = f1_scores(&[0, 2, 1, 0, 0, 1], &[0, 1, 2, 0, 1, 2], 3);
        assert!((f1.micro - 1.0 / 3.0).abs() < 1e-9);
        assert!((f1.macro_ - 0.26666667).abs() < 1e-6);
        assert!((f1.weighted - 0.26666667).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = f1_scores(&[0], &[0, 1], 2);
    }

    #[test]
    fn per_class_report_matches_hand_computation() {
        let mut c = Confusion::new(3);
        // class 0: 2 gold, 1 predicted right, 1 missed as class 1.
        c.record(0, 0);
        c.record(1, 0);
        // class 2: perfect.
        c.record(2, 2);
        let report = c.per_class_report();
        let r0 = report.iter().find(|r| r.class == 0).unwrap();
        assert_eq!(r0.support, 2);
        assert!((r0.precision - 1.0).abs() < 1e-9);
        assert!((r0.recall - 0.5).abs() < 1e-9);
        let r2 = report.iter().find(|r| r.class == 2).unwrap();
        assert!((r2.f1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_class_report_skips_absent_classes() {
        let mut c = Confusion::new(10);
        c.record(1, 1);
        let report = c.per_class_report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].class, 1);
    }

    #[test]
    fn stopwatch_laps_accumulate() {
        let mut sw = Stopwatch::new();
        sw.lap("a");
        sw.lap("b");
        assert_eq!(sw.laps().len(), 2);
        assert_eq!(sw.laps()[0].0, "a");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(90)), "1.5m");
        assert_eq!(fmt_duration(Duration::from_millis(2500)), "2.5s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5ms");
    }
}
