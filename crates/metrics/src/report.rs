//! Plain-text table rendering for the bench binaries.
//!
//! Every `table*`/`fig*` binary prints its reproduction in the same layout
//! as the paper's table, so EXPERIMENTS.md can juxtapose paper-vs-measured
//! rows directly.

/// A simple aligned text table.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["Method", "F1"]);
        t.row(["ExplainTI", "0.944"]);
        t.row(["TURL", "0.920"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Method"));
        assert!(lines[2].contains("0.944"));
        // Both data rows align the F1 column.
        let col = lines[2].find("0.944").unwrap();
        assert_eq!(lines[3].find("0.920").unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }
}
