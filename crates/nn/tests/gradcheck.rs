//! Finite-difference validation of every autograd backward rule.
//!
//! Each test builds a scalar loss through one or more ops, computes the
//! analytic parameter gradient via `Graph::backward`, and compares it to a
//! central finite difference. f32 arithmetic limits achievable precision,
//! so tolerances are relative with a small absolute floor.

use explainti_nn::{Graph, ParamStore, Tensor};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds a loss twice per weight (±eps) and compares the slope with the
/// analytic gradient flushed into the store.
fn check_grads<F>(store: &mut ParamStore, build: F, eps: f32, tol: f32)
where
    F: Fn(&mut Graph, &ParamStore) -> explainti_nn::NodeId,
{
    // Analytic gradients.
    store.zero_grads();
    let mut g = Graph::new();
    let loss = build(&mut g, store);
    assert_eq!(g.value(loss).shape(), (1, 1), "loss must be scalar");
    g.backward(loss);
    g.flush_grads(store);

    let ids: Vec<_> = store.ids().collect();
    for id in ids {
        let n = store.value(id).len();
        for i in 0..n {
            let analytic = store.grad(id).as_slice()[i];
            let orig = store.value(id).as_slice()[i];

            store.value_mut(id).as_mut_slice()[i] = orig + eps;
            let mut gp = Graph::new();
            let lp = build(&mut gp, store);
            let fp = gp.value(lp).as_slice()[0];

            store.value_mut(id).as_mut_slice()[i] = orig - eps;
            let mut gm = Graph::new();
            let lm = build(&mut gm, store);
            let fm = gm.value(lm).as_slice()[0];

            store.value_mut(id).as_mut_slice()[i] = orig;

            let numeric = (fp - fm) / (2.0 * eps);
            let diff = (numeric - analytic).abs();
            let scale = 1e-2 + tol * numeric.abs().max(analytic.abs());
            assert!(
                diff <= scale,
                "param {} [{i}]: numeric {numeric:.5} vs analytic {analytic:.5} (diff {diff:.5})",
                store.name(id),
            );
        }
    }
}

fn rng() -> SmallRng {
    SmallRng::seed_from_u64(20230417)
}

fn rand_tensor(r: usize, c: usize, rng: &mut SmallRng) -> Tensor {
    Tensor::from_vec(r, c, (0..r * c).map(|_| rng.gen_range(-0.9f32..0.9)).collect())
}

#[test]
fn gradcheck_linear_cross_entropy() {
    let mut r = rng();
    let mut store = ParamStore::new();
    let w = store.add("w", rand_tensor(4, 3, &mut r));
    let b = store.add("b", rand_tensor(1, 3, &mut r));
    let x = rand_tensor(2, 4, &mut r);
    check_grads(
        &mut store,
        |g, s| {
            let xn = g.input(x.clone());
            let wn = g.param(s, w);
            let bn = g.param(s, b);
            let h = g.matmul(xn, wn);
            let o = g.add_row(h, bn);
            g.cross_entropy(o, &[1, 2])
        },
        5e-3,
        0.05,
    );
}

#[test]
fn gradcheck_bce_with_logits() {
    let mut r = rng();
    let mut store = ParamStore::new();
    let w = store.add("w", rand_tensor(3, 4, &mut r));
    let x = rand_tensor(2, 3, &mut r);
    let targets = Tensor::from_vec(2, 4, vec![1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 1.0]);
    check_grads(
        &mut store,
        |g, s| {
            let xn = g.input(x.clone());
            let wn = g.param(s, w);
            let h = g.matmul(xn, wn);
            g.bce_with_logits(h, &targets)
        },
        5e-3,
        0.05,
    );
}

#[test]
fn gradcheck_softmax_mul_path() {
    let mut r = rng();
    let mut store = ParamStore::new();
    let w = store.add("w", rand_tensor(2, 3, &mut r));
    let scale = rand_tensor(2, 3, &mut r);
    check_grads(
        &mut store,
        |g, s| {
            let wn = g.param(s, w);
            let p = g.softmax(wn);
            let sn = g.input(scale.clone());
            let m = g.mul(p, sn);
            let row = g.mean_rows(m);
            // Reduce to a scalar with a second mean via matmul against ones.
            let ones = g.input(Tensor::from_vec(3, 1, vec![1.0; 3]));
            g.matmul(row, ones)
        },
        5e-3,
        0.05,
    );
}

#[test]
fn gradcheck_layer_norm() {
    let mut r = rng();
    let mut store = ParamStore::new();
    let x = store.add("x", rand_tensor(2, 4, &mut r));
    let gain = store.add("gain", rand_tensor(1, 4, &mut r));
    let bias = store.add("bias", rand_tensor(1, 4, &mut r));
    let sel = rand_tensor(2, 4, &mut r);
    check_grads(
        &mut store,
        |g, s| {
            let xn = g.param(s, x);
            let gn = g.param(s, gain);
            let bn = g.param(s, bias);
            let y = g.layer_norm(xn, gn, bn);
            let seln = g.input(sel.clone());
            let m = g.mul(y, seln);
            let row = g.mean_rows(m);
            let ones = g.input(Tensor::from_vec(4, 1, vec![1.0; 4]));
            g.matmul(row, ones)
        },
        1e-2,
        0.08,
    );
}

#[test]
fn gradcheck_gelu_tanh_sigmoid_relu() {
    let mut r = rng();
    let mut store = ParamStore::new();
    let w = store.add("w", rand_tensor(1, 6, &mut r));
    check_grads(
        &mut store,
        |g, s| {
            let wn = g.param(s, w);
            let a = g.gelu(wn);
            let b = g.tanh(a);
            let c = g.sigmoid(b);
            let d = g.relu(c);
            let ones = g.input(Tensor::from_vec(6, 1, vec![1.0; 6]));
            g.matmul(d, ones)
        },
        5e-3,
        0.05,
    );
}

#[test]
fn gradcheck_embedding_mean_pool() {
    let mut r = rng();
    let mut store = ParamStore::new();
    let table = store.add("emb", rand_tensor(5, 3, &mut r));
    let cls = store.add("cls", rand_tensor(3, 2, &mut r));
    check_grads(
        &mut store,
        |g, s| {
            let tn = g.param(s, table);
            let e = g.embedding(tn, &[0, 2, 2, 4]);
            let pooled = g.mean_rows(e);
            let wn = g.param(s, cls);
            let logits = g.matmul(pooled, wn);
            g.cross_entropy(logits, &[1])
        },
        5e-3,
        0.05,
    );
}

#[test]
fn gradcheck_matmul_nt_and_concat() {
    let mut r = rng();
    let mut store = ParamStore::new();
    let a = store.add("a", rand_tensor(2, 3, &mut r));
    let b = store.add("b", rand_tensor(2, 3, &mut r));
    check_grads(
        &mut store,
        |g, s| {
            let an = g.param(s, a);
            let bn = g.param(s, b);
            let nt = g.matmul_nt(an, bn); // 2x2
            let cat = g.concat_cols(nt, an); // 2x5
            let row = g.mean_rows(cat);
            let ones = g.input(Tensor::from_vec(5, 1, vec![1.0; 5]));
            g.matmul(row, ones)
        },
        5e-3,
        0.05,
    );
}

#[test]
fn gradcheck_rows_cols_slices() {
    let mut r = rng();
    let mut store = ParamStore::new();
    let a = store.add("a", rand_tensor(4, 6, &mut r));
    check_grads(
        &mut store,
        |g, s| {
            let an = g.param(s, a);
            let rowsl = g.rows_range(an, 1, 2); // 2x6
            let colsl = g.cols_range(rowsl, 2, 3); // 2x3
            let sm = g.softmax(colsl);
            let row = g.mean_rows(sm);
            let weights = g.input(Tensor::from_vec(3, 1, vec![0.2, -0.7, 1.3]));
            g.matmul(row, weights)
        },
        5e-3,
        0.05,
    );
}

#[test]
fn gradcheck_full_attention_block() {
    use explainti_nn::MultiHeadAttention;
    let mut r = rng();
    let mut store = ParamStore::new();
    let mha = MultiHeadAttention::new(&mut store, "attn", 4, 2, &mut r);
    let x = rand_tensor(3, 4, &mut r);
    check_grads(
        &mut store,
        |g, s| {
            let xn = g.input(x.clone());
            let y = mha.forward(g, s, xn, None);
            let cls = g.rows_range(y, 0, 1);
            g.cross_entropy(cls, &[2])
        },
        1e-2,
        0.10,
    );
}

#[test]
fn gradcheck_sub_scale_add_row() {
    let mut r = rng();
    let mut store = ParamStore::new();
    let a = store.add("a", rand_tensor(2, 3, &mut r));
    let b = store.add("b", rand_tensor(1, 3, &mut r));
    check_grads(
        &mut store,
        |g, s| {
            let an = g.param(s, a);
            let bn = g.param(s, b);
            let sum = g.add_row(an, bn);
            let scaled = g.scale(sum, 1.7);
            let diff = g.sub(scaled, an);
            let sm = g.softmax(diff);
            let row = g.mean_rows(sm);
            let w = g.input(Tensor::from_vec(3, 1, vec![1.0, -2.0, 0.5]));
            g.matmul(row, w)
        },
        5e-3,
        0.05,
    );
}
