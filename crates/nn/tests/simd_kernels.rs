//! Differential battery for the runtime-dispatched SIMD kernels.
//!
//! The contract under test (DESIGN.md §16): every dispatch arm of the f32
//! kernels — AVX2, NEON, and the 8-lane-unrolled scalar fallback — is
//! **bitwise equivalent**, so forcing the fallback on a SIMD host must
//! reproduce the exact same bytes, across every pool width, on shapes
//! chosen to stress the remainder handling (primes, degenerate rows, and
//! lengths that are not a multiple of the 8-wide vector).
//!
//! Tier forcing is process-global, so every test serialises on one mutex
//! and restores detection before releasing it.

use explainti_nn::simd::{self, SimdTier};
use explainti_nn::Tensor;
use explainti_pool::ThreadPool;
use std::sync::{Mutex, MutexGuard};

/// Serialises tier-mutating tests; the guard re-detects on drop so a
/// panicking test cannot leak a forced tier into the next one.
static TIER_LOCK: Mutex<()> = Mutex::new(());

struct TierGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl TierGuard {
    fn lock() -> Self {
        let guard = TIER_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        simd::reset_tier();
        Self(guard)
    }
}

impl Drop for TierGuard {
    fn drop(&mut self) {
        simd::reset_tier();
    }
}

/// Deterministic pseudo-random f32 in roughly [-1, 1): splitmix over the
/// flat index, so every shape gets a fixed but unstructured matrix.
fn val(seed: u64, i: usize) -> f32 {
    let mut z = seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((z >> 40) as f32 / 8_388_608.0) - 1.0
}

fn tensor(seed: u64, rows: usize, cols: usize) -> Tensor {
    Tensor::from_vec(rows, cols, (0..rows * cols).map(|i| val(seed, i)).collect())
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Shapes `(m, k, n)` covering the dispatch seams: degenerate (1×1×1,
/// empty-n), below the packing cutoff, prime everything, exact multiples
/// of 8, and just-off multiples that force every tail path.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (2, 3, 5),
    (7, 13, 11),
    (8, 8, 8),
    (8, 16, 0),
    (16, 31, 7),
    (17, 96, 29),
    (32, 64, 33),
    (61, 127, 37),
];

/// The SIMD tier the host would pick with no overrides. On a machine
/// without AVX2/NEON this is `Scalar` and the battery degenerates to a
/// self-comparison, which is still a valid (if weak) run.
fn detected() -> SimdTier {
    simd::reset_tier();
    simd::tier()
}

fn with_tier<R>(t: SimdTier, f: impl FnOnce() -> R) -> R {
    simd::force_tier(t);
    let r = f();
    simd::reset_tier();
    r
}

#[test]
fn matmul_simd_is_bitwise_equal_to_forced_scalar() {
    let _guard = TierGuard::lock();
    let native = detected();
    for &(m, k, n) in SHAPES {
        let a = tensor(11, m, k);
        let b = tensor(23, k, n);
        let fast = with_tier(native, || a.matmul(&b));
        let slow = with_tier(SimdTier::Scalar, || a.matmul(&b));
        assert_eq!(bits(&fast), bits(&slow), "matmul({m}x{k} · {k}x{n}) differs across tiers");
    }
}

#[test]
fn matmul_tn_simd_is_bitwise_equal_to_forced_scalar() {
    let _guard = TierGuard::lock();
    let native = detected();
    for &(m, k, n) in SHAPES {
        // tn computes selfᵀ·other: self is k×m, other k×n.
        let a = tensor(31, k, m);
        let b = tensor(43, k, n);
        let fast = with_tier(native, || a.matmul_tn(&b));
        let slow = with_tier(SimdTier::Scalar, || a.matmul_tn(&b));
        assert_eq!(bits(&fast), bits(&slow), "matmul_tn({k}x{m} ᵀ· {k}x{n}) differs across tiers");
    }
}

#[test]
fn matmul_nt_simd_is_bitwise_equal_to_forced_scalar() {
    let _guard = TierGuard::lock();
    let native = detected();
    for &(m, k, n) in SHAPES {
        // nt computes self·otherᵀ: self is m×k, other n×k.
        let a = tensor(53, m, k);
        let b = tensor(67, n, k);
        let fast = with_tier(native, || a.matmul_nt(&b));
        let slow = with_tier(SimdTier::Scalar, || a.matmul_nt(&b));
        assert_eq!(bits(&fast), bits(&slow), "matmul_nt({m}x{k} ·ᵀ {n}x{k}) differs across tiers");
    }
}

#[test]
fn kernels_are_bitwise_stable_across_pool_widths_and_tiers() {
    let _guard = TierGuard::lock();
    let native = detected();
    // Big enough to clear PAR_MIN_FLOPS so wide pools genuinely split it.
    let (m, k, n) = (96, 80, 72);
    let a = tensor(71, m, k);
    let b = tensor(73, k, n);
    let bt = tensor(73, n, k);
    let at = tensor(71, k, m);
    let mut reference: Option<(Vec<u32>, Vec<u32>, Vec<u32>)> = None;
    for tier in [native, SimdTier::Scalar] {
        for width in [1usize, 2, 4] {
            let pool = ThreadPool::new(width);
            let got = with_tier(tier, || {
                (
                    bits(&a.matmul_in(&b, &pool)),
                    bits(&at.matmul_tn_in(&b, &pool)),
                    bits(&a.matmul_nt_in(&bt, &pool)),
                )
            });
            match &reference {
                None => reference = Some(got),
                Some(want) => {
                    assert_eq!(want, &got, "kernel bytes changed at tier {:?} width {width}", tier);
                }
            }
        }
    }
}

#[test]
fn cosine_simd_is_bitwise_equal_to_forced_scalar() {
    let _guard = TierGuard::lock();
    let native = detected();
    for len in [1usize, 3, 7, 8, 9, 16, 31, 64, 127] {
        let a = tensor(83, 1, len);
        let b = tensor(97, 1, len);
        let fast = with_tier(native, || a.cosine(&b));
        let slow = with_tier(SimdTier::Scalar, || a.cosine(&b));
        assert_eq!(fast.to_bits(), slow.to_bits(), "cosine(len {len}) differs across tiers");
    }
}

#[test]
fn forced_fallback_arm_matches_packed_scalar_reference() {
    // The forced-fallback dispatch arm (`EXPLAINTI_NO_SIMD=1` routes here
    // too) must agree with the direct scalar kernels — i.e. forcing the
    // tier changes *which code runs*, never *what it computes*.
    let _guard = TierGuard::lock();
    let (m, k, n) = (17, 41, 13);
    let a = tensor(101, m, k);
    let b = tensor(103, k, n);
    let bt = tensor(103, n, k);
    let forced = with_tier(SimdTier::Scalar, || (a.matmul(&b), a.matmul_nt(&bt)));
    // Element-by-element reference straight off `dot_scalar`, the same
    // packed-panel order the kernels use.
    for i in 0..m {
        let a_row = &a.as_slice()[i * k..(i + 1) * k];
        for j in 0..n {
            let col: Vec<f32> = (0..k).map(|x| b.as_slice()[x * n + j]).collect();
            let want = simd::dot_scalar(a_row, &col);
            assert_eq!(
                forced.0.as_slice()[i * n + j].to_bits(),
                want.to_bits(),
                "forced-scalar matmul[{i},{j}] disagrees with dot_scalar"
            );
            let bt_row = &bt.as_slice()[j * k..(j + 1) * k];
            let want_nt = simd::dot_scalar(a_row, bt_row);
            assert_eq!(
                forced.1.as_slice()[i * n + j].to_bits(),
                want_nt.to_bits(),
                "forced-scalar matmul_nt[{i},{j}] disagrees with dot_scalar"
            );
        }
    }
}
