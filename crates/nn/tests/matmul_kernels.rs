//! Property tests for the blocked/parallel matmul kernels.
//!
//! Strategy: fill operands with values of the form `m / 64.0` where `m`
//! is an integer in `[-64, 64]`. Every product is then a multiple of
//! 2⁻¹² with magnitude ≤ 1, and every accumulated sum here (≤ 128
//! terms) is exactly representable in f32 — so the blocked kernels, the
//! naive references, and every pool width must produce *exactly* equal
//! results, and the 1e-6 tolerance the issue asks for is trivially met.

use explainti_nn::Tensor;
use explainti_pool::ThreadPool;

/// Deterministic exactly-representable fill (see module docs).
fn fill(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = || {
        // xorshift64*: cheap, dependency-free, good enough for fills.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let m = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 57) as i64 - 64;
        m.clamp(-64, 64) as f32 / 64.0
    };
    let data: Vec<f32> = (0..rows * cols).map(|_| next()).collect();
    Tensor::from_vec(rows, cols, data)
}

fn assert_exact_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert!(x.to_bits() == y.to_bits(), "{what}: element {i} differs: {x} vs {y}");
    }
}

fn assert_close(a: &Tensor, b: &Tensor, tol: f32, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert!((x - y).abs() <= tol, "{what}: element {i}: {x} vs {y}");
    }
}

/// Shapes chosen to stress every code path: the 1×1 degenerate case,
/// prime dimensions that never divide the row block evenly, tall-skinny
/// (rows ≫ cols), wide-flat (cols ≫ rows), the packing gate boundary
/// (8 rows), and a block-boundary straddler (33 > ROW_BLOCK = 32).
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (7, 11, 13),
    (97, 3, 101),
    (3, 97, 5),
    (129, 2, 2),
    (2, 2, 129),
    (8, 8, 8),
    (33, 17, 29),
    (64, 64, 64),
];

#[test]
fn blocked_matmul_matches_naive_reference() {
    for &(r, k, n) in SHAPES {
        let a = fill(r, k, 1);
        let b = fill(k, n, 2);
        assert_exact_eq(&a.matmul(&b), &a.matmul_naive(&b), &format!("matmul {r}x{k}x{n}"));
        // The issue's stated bound, in addition to the exact check.
        assert_close(&a.matmul(&b), &a.matmul_naive(&b), 1e-6, &format!("matmul tol {r}x{k}x{n}"));
    }
}

#[test]
fn blocked_matmul_tn_matches_naive_reference() {
    for &(r, k, n) in SHAPES {
        // A is (k x r) so Aᵀ·B is (r x k)ᵀ-shaped like the others.
        let a = fill(k, r, 3);
        let b = fill(k, n, 4);
        assert_exact_eq(
            &a.matmul_tn(&b),
            &a.matmul_tn_naive(&b),
            &format!("matmul_tn {k}x{r}x{n}"),
        );
    }
}

#[test]
fn blocked_matmul_nt_matches_naive_reference() {
    for &(r, k, n) in SHAPES {
        let a = fill(r, k, 5);
        let b = fill(n, k, 6);
        assert_exact_eq(
            &a.matmul_nt(&b),
            &a.matmul_nt_naive(&b),
            &format!("matmul_nt {r}x{k}x{n}"),
        );
    }
}

#[test]
fn pool_width_never_changes_results() {
    let one = ThreadPool::new(1);
    let four = ThreadPool::new(4);
    for &(r, k, n) in SHAPES {
        let a = fill(r, k, 7);
        let b = fill(k, n, 8);
        assert_exact_eq(
            &a.matmul_in(&b, &one),
            &a.matmul_in(&b, &four),
            &format!("matmul width {r}x{k}x{n}"),
        );
        let bt = fill(n, k, 9);
        assert_exact_eq(
            &a.matmul_nt_in(&bt, &one),
            &a.matmul_nt_in(&bt, &four),
            &format!("matmul_nt width {r}x{k}x{n}"),
        );
        let at = fill(k, r, 10);
        let b2 = fill(k, n, 11);
        assert_exact_eq(
            &at.matmul_tn_in(&b2, &one),
            &at.matmul_tn_in(&b2, &four),
            &format!("matmul_tn width {k}x{r}x{n}"),
        );
    }
}

#[test]
fn explicit_pool_matches_implicit_global_path() {
    // Big enough to clear the parallel-dispatch flop gate (1 << 18),
    // so the implicit path actually exercises the global pool.
    let four = ThreadPool::new(4);
    let a = fill(128, 64, 12);
    let b = fill(64, 64, 13);
    assert_exact_eq(&a.matmul(&b), &a.matmul_in(&b, &four), "global vs explicit");
}

#[test]
fn pool_scope_propagates_panics_instead_of_deadlocking() {
    let pool = ThreadPool::new(4);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.scope(16, |i| {
            if i == 11 {
                panic!("boom from task {i}");
            }
        });
    }));
    let err = caught.expect_err("scope should re-raise the task panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("boom"), "unexpected payload: {msg:?}");
    // The pool must stay usable after a propagated panic.
    let sum: usize = pool.map(8, |i| i).into_iter().sum();
    assert_eq!(sum, 28);
}
