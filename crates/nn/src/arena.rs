//! Bump arena for per-request tensor temporaries.
//!
//! Steady-state serving allocates the same scratch buffers (quantized
//! activations, i32 accumulators, f32 staging rows) on every request.
//! [`Arena`] hands out disjoint slices from a list of raw chunks and
//! recycles them wholesale on [`Arena::reset`], so after warm-up the
//! request path performs zero heap allocation. The per-thread entry
//! point is [`with_thread_arena`], which also publishes the arena's
//! capacity through the `nn.arena.bytes` gauge so tests can assert zero
//! steady-state growth.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::cell::{Cell, RefCell};

/// Alignment of every arena allocation and chunk base pointer — enough
/// for any f32/i32 SIMD load and a full cache line.
const ALIGN: usize = 64;

/// Minimum chunk size; doubles as the growth floor.
const MIN_CHUNK: usize = 64 * 1024;

/// One raw heap chunk. The pointer comes from `alloc_zeroed` with a
/// 64-byte-aligned layout and is freed in [`Arena::drop`].
struct Chunk {
    ptr: *mut u8,
    len: usize,
}

/// A bump allocator over byte chunks. `alloc_*` takes `&self` (interior
/// mutability) so several live slices can be carved from one arena;
/// `reset` takes `&mut self`, which the borrow checker uses to prove no
/// slice from a previous epoch outlives the reset.
///
/// `Arena` is `!Send`/`!Sync` (raw pointers), so all access is
/// single-threaded by construction.
pub struct Arena {
    chunks: RefCell<Vec<Chunk>>,
    /// Index of the chunk currently being bumped.
    cur: Cell<usize>,
    /// Bump offset inside the current chunk.
    off: Cell<usize>,
    /// Total capacity across all chunks, in bytes.
    cap: Cell<usize>,
}

impl Default for Arena {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        for chunk in self.chunks.get_mut().drain(..) {
            // SAFETY: every chunk was allocated in alloc_bytes with
            // exactly this layout and is freed exactly once here.
            unsafe {
                dealloc(chunk.ptr, Layout::from_size_align(chunk.len, ALIGN).unwrap());
            }
        }
    }
}

impl Arena {
    /// Creates an empty arena; the first allocation grows it.
    pub fn new() -> Self {
        Arena {
            chunks: RefCell::new(Vec::new()),
            cur: Cell::new(0),
            off: Cell::new(0),
            cap: Cell::new(0),
        }
    }

    /// Total bytes owned by the arena (capacity, not live bytes).
    pub fn capacity(&self) -> usize {
        self.cap.get()
    }

    /// Rewinds the bump pointer; all previously handed-out slices are
    /// dead (enforced at compile time by the `&mut self` receiver).
    /// Chunks are kept, so a reset arena reuses its memory.
    pub fn reset(&mut self) {
        self.cur.set(0);
        self.off.set(0);
    }

    /// Returns a fresh, 64-byte-aligned, disjoint pointer range of `len`
    /// bytes. Ranges handed out between two resets never overlap because
    /// the bump offset is monotone and chunk bases are distinct heap
    /// allocations.
    fn alloc_bytes(&self, len: usize) -> *mut u8 {
        let len = len.max(1);
        loop {
            let ci = self.cur.get();
            let (base, cap, have_next) = {
                let chunks = self.chunks.borrow();
                match chunks.get(ci) {
                    Some(c) => (c.ptr, c.len, ci + 1 < chunks.len()),
                    None => (std::ptr::null_mut(), 0, false),
                }
            };
            if !base.is_null() {
                let off = self.off.get();
                let aligned = off.div_ceil(ALIGN) * ALIGN;
                if aligned + len <= cap {
                    self.off.set(aligned + len);
                    // SAFETY: aligned + len <= cap, so the range is inside
                    // this chunk's allocation; the bump offset guarantees it
                    // was never handed out since the last reset, and reset
                    // requires &mut self so no borrow from a previous epoch
                    // is live.
                    return unsafe { base.add(aligned) };
                }
                if have_next {
                    self.cur.set(ci + 1);
                    self.off.set(0);
                    continue;
                }
            }
            // Need a new chunk. Only Chunk descriptors live in the Vec, so
            // pushing never moves or touches the raw chunk memory that
            // previously returned slices point into.
            let size = len.div_ceil(ALIGN).max(1) * ALIGN;
            let size = size.next_power_of_two().max(MIN_CHUNK);
            let layout = Layout::from_size_align(size, ALIGN).unwrap();
            // SAFETY: layout has non-zero size and valid power-of-two
            // alignment.
            let ptr = unsafe { alloc_zeroed(layout) };
            assert!(!ptr.is_null(), "arena chunk allocation failed");
            let mut chunks = self.chunks.borrow_mut();
            chunks.push(Chunk { ptr, len: size });
            self.cur.set(chunks.len() - 1);
            self.off.set(0);
            self.cap.set(self.cap.get() + size);
        }
    }

    /// Allocates a zero-initialised f32 slice from the arena.
    // The typed-arena shape: `&self` hands out `&mut` slices. Sound
    // because every call bumps past the returned range (regions are
    // disjoint) and `reset` takes `&mut self`, so no slice from a
    // previous epoch can still be live when memory is reused.
    #[allow(clippy::mut_from_ref)]
    pub fn alloc_f32(&self, len: usize) -> &mut [f32] {
        let p = self.alloc_bytes(len.max(1) * 4) as *mut f32;
        // SAFETY: alloc_bytes returned a fresh, 64-byte-aligned, disjoint
        // range of at least len*4 bytes; f32 has alignment 4 <= 64 and any
        // bit pattern is a valid f32. write_bytes re-zeroes memory reused
        // after a reset. The borrow is tied to &self and reset (&mut self)
        // cannot run while it is live.
        unsafe {
            std::ptr::write_bytes(p, 0, len);
            std::slice::from_raw_parts_mut(p, len)
        }
    }

    /// Allocates a zero-initialised i8 slice from the arena.
    #[allow(clippy::mut_from_ref)] // same disjoint-bump argument as alloc_f32
    pub fn alloc_i8(&self, len: usize) -> &mut [i8] {
        let p = self.alloc_bytes(len.max(1)) as *mut i8;
        // SAFETY: same argument as alloc_f32 (alignment 1, any bit
        // pattern valid).
        unsafe {
            std::ptr::write_bytes(p, 0, len);
            std::slice::from_raw_parts_mut(p, len)
        }
    }

    /// Allocates a zero-initialised i32 slice from the arena.
    #[allow(clippy::mut_from_ref)] // same disjoint-bump argument as alloc_f32
    pub fn alloc_i32(&self, len: usize) -> &mut [i32] {
        let p = self.alloc_bytes(len.max(1) * 4) as *mut i32;
        // SAFETY: same argument as alloc_f32 (alignment 4 <= 64, any bit
        // pattern valid).
        unsafe {
            std::ptr::write_bytes(p, 0, len);
            std::slice::from_raw_parts_mut(p, len)
        }
    }
}

thread_local! {
    static TL_ARENA: RefCell<Arena> = RefCell::new(Arena::new());
}

/// Runs `f` with this thread's arena, reset to empty on entry, and
/// publishes the arena capacity to the `nn.arena.bytes` gauge afterward.
/// Steady-state callers therefore see a constant gauge once the arena
/// has warmed up.
pub fn with_thread_arena<R>(f: impl FnOnce(&mut Arena) -> R) -> R {
    TL_ARENA.with(|cell| {
        let mut arena = cell.borrow_mut();
        arena.reset();
        let out = f(&mut arena);
        explainti_obs::set_gauge("nn.arena.bytes", arena.capacity() as f64);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_reset_reuse_capacity() {
        let mut a = Arena::new();
        for _ in 0..5 {
            let s = a.alloc_f32(1000);
            s[999] = 1.0;
            let cap = a.capacity();
            a.reset();
            let s2 = a.alloc_f32(1000);
            assert_eq!(s2[999], 0.0, "reused memory must be re-zeroed");
            assert_eq!(a.capacity(), cap, "reset must not grow capacity");
        }
    }

    #[test]
    fn alignment_is_64() {
        let a = Arena::new();
        for len in [1, 3, 17, 64, 100] {
            let s = a.alloc_i8(len);
            assert_eq!(s.as_ptr() as usize % ALIGN, 0);
            let f = a.alloc_f32(len);
            assert_eq!(f.as_ptr() as usize % ALIGN, 0);
            let i = a.alloc_i32(len);
            assert_eq!(i.as_ptr() as usize % ALIGN, 0);
        }
    }

    #[test]
    fn slices_are_disjoint() {
        let a = Arena::new();
        let x = a.alloc_f32(64);
        let y = a.alloc_f32(64);
        let z = a.alloc_i32(64);
        x.fill(1.0);
        y.fill(2.0);
        z.fill(3);
        assert!(x.iter().all(|v| *v == 1.0));
        assert!(y.iter().all(|v| *v == 2.0));
        assert!(z.iter().all(|v| *v == 3));
    }

    #[test]
    fn grows_across_chunks() {
        let a = Arena::new();
        let mut total = 0usize;
        for _ in 0..40 {
            let s = a.alloc_f32(8192);
            s[0] = 1.0;
            total += 8192 * 4;
        }
        assert!(a.capacity() >= total);
    }

    #[test]
    fn multi_chunk_reset_reuses_all_chunks() {
        let mut a = Arena::new();
        for _ in 0..40 {
            a.alloc_f32(8192);
        }
        let cap = a.capacity();
        a.reset();
        for _ in 0..40 {
            let s = a.alloc_f32(8192);
            assert_eq!(s[0], 0.0);
        }
        assert_eq!(a.capacity(), cap);
    }

    #[test]
    fn thread_arena_steady_state_capacity() {
        let first = with_thread_arena(|a| {
            a.alloc_f32(4096);
            a.alloc_i8(512);
            a.capacity()
        });
        for _ in 0..10 {
            let cap = with_thread_arena(|a| {
                a.alloc_f32(4096);
                a.alloc_i8(512);
                a.capacity()
            });
            assert_eq!(cap, first, "steady-state requests must not grow the arena");
        }
    }
}
