//! # explainti-nn
//!
//! From-scratch neural-network substrate for the ExplainTI (ICDE 2023)
//! reproduction: a dense 2-D [`Tensor`], tape-based reverse-mode autograd
//! ([`Graph`]), layer modules (linear, embedding, layer-norm, multi-head
//! attention, feed-forward, dropout), losses (cross-entropy, BCE-with-
//! logits) and optimizers (AdamW with linear decay, SGD).
//!
//! The paper fine-tunes BERT/RoBERTa; no mature Rust stack supports that
//! end-to-end, so this crate provides the encoder-agnostic machinery on
//! which `explainti-encoder` builds a small pre-trainable transformer.
//! Every backward rule is checked against central finite differences
//! (`tests/gradcheck.rs`).
//!
//! ## Example
//!
//! ```
//! use explainti_nn::{Graph, ParamStore, Tensor, AdamW, LinearSchedule};
//!
//! let mut store = ParamStore::new();
//! let w = store.add("w", Tensor::row(vec![0.0]));
//! let mut opt = AdamW::new(LinearSchedule::constant(0.05));
//! for _ in 0..100 {
//!     let mut g = Graph::new();
//!     let wn = g.param(&store, w);
//!     let t = g.input(Tensor::row(vec![1.0]));
//!     let d = g.sub(wn, t);
//!     let loss = g.mul(d, d);
//!     g.backward(loss);
//!     g.flush_grads(&mut store);
//!     opt.step(&mut store);
//! }
//! assert!((store.value(w).as_slice()[0] - 1.0).abs() < 0.1);
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod graph;
pub mod layers;
pub mod optim;
pub mod params;
pub mod quant;
pub mod simd;
pub mod tensor;

pub use arena::{with_thread_arena, Arena};
pub use graph::{Graph, NodeId};
pub use layers::{Dropout, Embedding, FeedForward, LayerNorm, Linear, MultiHeadAttention};
pub use optim::{AdamW, LinearSchedule, Sgd};
pub use params::{ParamId, ParamStore};
pub use quant::{cosine_q8, qmatmul_into, qmatmul_rows, quantize_row, QuantEntry, QuantizedMatrix};
pub use simd::SimdTier;
pub use tensor::{kl_divergence, softmax, softmax_into, Tensor};
