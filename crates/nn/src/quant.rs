//! int8 symmetric quantization for the inference path.
//!
//! Weights and activations are quantized per row: `scale = max|x| / 127`,
//! `q = round(x / scale)` clamped to `[-127, 127]`, accumulated in i32
//! and dequantized as `acc * scale_x * scale_w`. Training stays f32; only
//! inference matmuls and GE cosine scoring use this path. Integer
//! arithmetic is exact, so the SIMD and scalar arms of [`crate::simd::dot_i8`]
//! agree bit for bit and the quantization error model is purely the
//! rounding step (see DESIGN.md §16).

use crate::simd;
use crate::tensor::Tensor;

/// A per-row symmetrically quantized matrix. Rows are contiguous, so the
/// reduction axis of `x · Wᵀ` is a contiguous i8 slice per output column
/// when the weight matrix is stored transposed.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    /// Quantized values, row-major, `rows * cols` entries.
    pub q: Vec<i8>,
    /// One dequantization scale per row.
    pub scales: Vec<f32>,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns (the reduction axis length).
    pub cols: usize,
}

/// Quantizes one f32 row into `out_q` (same length), returning the scale.
/// All-zero rows get scale 0 (and all-zero codes), which dequantizes to
/// exact zeros.
pub fn quantize_row(row: &[f32], out_q: &mut [i8]) -> f32 {
    debug_assert_eq!(row.len(), out_q.len());
    let mut max_abs = 0.0f32;
    for v in row {
        let a = v.abs();
        if a > max_abs {
            max_abs = a;
        }
    }
    if max_abs == 0.0 {
        out_q.fill(0);
        return 0.0;
    }
    let scale = max_abs / 127.0;
    let inv = 127.0 / max_abs;
    for (o, v) in out_q.iter_mut().zip(row) {
        *o = (v * inv).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

impl QuantizedMatrix {
    /// Quantizes a tensor row-by-row.
    pub fn from_tensor(t: &Tensor) -> QuantizedMatrix {
        let (rows, cols) = (t.rows(), t.cols());
        let mut q = vec![0i8; rows * cols];
        let mut scales = vec![0.0f32; rows];
        for r in 0..rows {
            scales[r] = quantize_row(t.row_slice(r), &mut q[r * cols..(r + 1) * cols]);
        }
        QuantizedMatrix { q, scales, rows, cols }
    }

    /// Quantizes the **transpose** of a tensor (shape becomes
    /// `cols × rows`), so a weight matrix W of shape `in × out` is stored
    /// with each output column's weights contiguous.
    pub fn from_tensor_transposed(t: &Tensor) -> QuantizedMatrix {
        let (rows, cols) = (t.cols(), t.rows());
        let mut flat = vec![0.0f32; rows * cols];
        for r in 0..t.rows() {
            let src = t.row_slice(r);
            for c in 0..t.cols() {
                flat[c * cols + r] = src[c];
            }
        }
        let mut q = vec![0i8; rows * cols];
        let mut scales = vec![0.0f32; rows];
        for r in 0..rows {
            scales[r] =
                quantize_row(&flat[r * cols..(r + 1) * cols], &mut q[r * cols..(r + 1) * cols]);
        }
        QuantizedMatrix { q, scales, rows, cols }
    }

    /// Row `r` as an i8 slice.
    pub fn row(&self, r: usize) -> &[i8] {
        &self.q[r * self.cols..(r + 1) * self.cols]
    }
}

/// Quantized linear layer: `out[i][j] = dot_i8(xq_i, wt_j) * sx_i * sw_j + bias[j]`
/// where `wt` holds Wᵀ per-row-quantized. `x` is quantized per row on the
/// fly into arena-style scratch provided by the caller (`xq_scratch`,
/// at least `x.cols` long). Output is written into `out`
/// (`x.rows * wt.rows`, row-major). Increments the
/// `nn.kernel.dispatch.quantized` counter once per call.
pub fn qmatmul_into(
    x: &Tensor,
    wt: &QuantizedMatrix,
    bias: Option<&[f32]>,
    xq_scratch: &mut [i8],
    out: &mut [f32],
) {
    qmatmul_rows(x.as_slice(), x.rows(), x.cols(), wt, bias, xq_scratch, out);
}

/// Slice-based form of [`qmatmul_into`] for activations living in arena
/// scratch rather than a [`Tensor`]. `x` is `rows * cols` row-major.
#[allow(clippy::too_many_arguments)]
pub fn qmatmul_rows(
    x: &[f32],
    rows: usize,
    cols: usize,
    wt: &QuantizedMatrix,
    bias: Option<&[f32]>,
    xq_scratch: &mut [i8],
    out: &mut [f32],
) {
    assert!(x.len() >= rows * cols);
    assert_eq!(cols, wt.cols, "qmatmul dims: x cols != wt.cols");
    assert!(xq_scratch.len() >= cols);
    assert!(out.len() >= rows * wt.rows);
    explainti_obs::counter!("nn.kernel.dispatch.quantized", 1);
    let n_out = wt.rows;
    for i in 0..rows {
        let sx = quantize_row(&x[i * cols..(i + 1) * cols], &mut xq_scratch[..cols]);
        let out_row = &mut out[i * n_out..(i + 1) * n_out];
        if sx == 0.0 {
            match bias {
                Some(b) => out_row.copy_from_slice(&b[..n_out]),
                None => out_row.fill(0.0),
            }
            continue;
        }
        for (j, o) in out_row.iter_mut().enumerate() {
            let acc = simd::dot_i8(&xq_scratch[..cols], wt.row(j));
            let v = acc as f32 * sx * wt.scales[j];
            *o = match bias {
                Some(b) => v + b[j],
                None => v,
            };
        }
    }
}

/// A quantized embedding-store entry: codes, scale, and the **f32** L2
/// norm of the original vector (norms stay exact so only the dot is
/// approximated).
#[derive(Debug, Clone)]
pub struct QuantEntry {
    /// Per-element i8 codes.
    pub q: Vec<i8>,
    /// Dequantization scale.
    pub scale: f32,
    /// Exact f32 L2 norm of the original vector.
    pub norm: f32,
}

impl QuantEntry {
    /// Quantizes an f32 vector, keeping its exact norm.
    pub fn from_f32(v: &[f32]) -> QuantEntry {
        let mut q = vec![0i8; v.len()];
        let scale = quantize_row(v, &mut q);
        let mut sq = 0.0f32;
        for x in v {
            sq += x * x;
        }
        QuantEntry { q, scale, norm: sq.sqrt() }
    }
}

/// Cosine similarity between two quantized entries:
/// `(dot_i8 * scale_a * scale_b) / (norm_a * norm_b)`, 0 when either
/// norm underflows (mirrors the f32 zero-denominator guard).
pub fn cosine_q8(a: &QuantEntry, b: &QuantEntry) -> f32 {
    let denom = a.norm * b.norm;
    if denom <= f32::EPSILON {
        return 0.0;
    }
    let d = simd::dot_i8(&a.q, &b.q);
    (d as f32 * a.scale * b.scale) / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> Tensor {
        let mut m = Tensor::zeros(rows, cols);
        for r in 0..rows {
            let row = m.row_slice_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v = f(r, c);
            }
        }
        m
    }

    #[test]
    fn quantize_roundtrip_error_bounded() {
        let x: Vec<f32> = (0..37).map(|i| (i as f32 - 18.0) * 0.11).collect();
        let mut q = vec![0i8; x.len()];
        let s = quantize_row(&x, &mut q);
        let max_abs = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for (v, c) in x.iter().zip(&q) {
            let err = (v - *c as f32 * s).abs();
            assert!(err <= max_abs / 254.0 + 1e-6, "err {err} too large");
        }
    }

    #[test]
    fn zero_row_quantizes_to_zero() {
        let x = vec![0.0f32; 16];
        let mut q = vec![1i8; 16];
        let s = quantize_row(&x, &mut q);
        assert_eq!(s, 0.0);
        assert!(q.iter().all(|c| *c == 0));
    }

    #[test]
    fn qmatmul_close_to_f32() {
        let x = t(5, 24, |r, c| ((r * 7 + c * 3) % 13) as f32 * 0.1 - 0.6);
        let w = t(24, 9, |r, c| ((r * 5 + c * 11) % 17) as f32 * 0.05 - 0.4);
        let wt = QuantizedMatrix::from_tensor_transposed(&w);
        let mut scratch = vec![0i8; 24];
        let mut out = vec![0.0f32; 5 * 9];
        qmatmul_into(&x, &wt, None, &mut scratch, &mut out);
        let exact = x.matmul(&w);
        for i in 0..5 {
            for j in 0..9 {
                let e = exact.row_slice(i)[j];
                let got = out[i * 9 + j];
                // 24-long dot of values |v| <= ~1.3; per-element quant
                // error <= max/254 on each side.
                assert!((e - got).abs() < 0.05, "({i},{j}): {e} vs {got}");
            }
        }
    }

    #[test]
    fn cosine_q8_close_to_f32() {
        let a: Vec<f32> = (0..32).map(|i| ((i * 13 % 7) as f32 - 3.0) * 0.3).collect();
        let b: Vec<f32> = (0..32).map(|i| ((i * 29 % 11) as f32 - 5.0) * 0.2).collect();
        let qa = QuantEntry::from_f32(&a);
        let qb = QuantEntry::from_f32(&b);
        let approx = cosine_q8(&qa, &qb);
        let exact = crate::simd::cosine_scalar(&a, &b);
        assert!((approx - exact).abs() < 0.02, "{approx} vs {exact}");
    }

    #[test]
    fn cosine_q8_zero_guard() {
        let z = QuantEntry::from_f32(&[0.0; 8]);
        let a = QuantEntry::from_f32(&[1.0; 8]);
        assert_eq!(cosine_q8(&z, &a), 0.0);
    }
}
