//! Reusable layer modules built on [`Graph`](crate::graph::Graph).
//!
//! Each module registers its parameters in a [`ParamStore`] at construction
//! and replays them onto the tape with `forward`. This mirrors the usual
//! deep-learning module pattern while keeping ownership with the store.

use crate::graph::{Graph, NodeId};
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::Rng;

/// Dense affine layer `y = x W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a `in_dim x out_dim` weight (Xavier) and a zero bias.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut SmallRng,
    ) -> Self {
        let w = store.add_xavier(&format!("{name}.w"), in_dim, out_dim, rng);
        let b = store.add_zeros(&format!("{name}.b"), 1, out_dim);
        Self { w, b, in_dim, out_dim }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to a `rows x in_dim` node.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        let xw = g.matmul(x, w);
        g.add_row(xw, b)
    }
}

/// Token embedding table.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Registers a `vocab x dim` table initialised with small noise.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut SmallRng,
    ) -> Self {
        let table = store.add_normal(name, vocab, dim, 0.02, rng);
        Self { table, vocab, dim }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Gathers embeddings for `ids`, producing a `ids.len() x dim` node.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, ids: &[usize]) -> NodeId {
        let table = g.param(store, self.table);
        g.embedding(table, ids)
    }
}

/// Layer normalisation with learned gain and bias.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gain: ParamId,
    bias: ParamId,
}

impl LayerNorm {
    /// Registers gain (ones) and bias (zeros) rows of width `dim`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gain = store.add_ones(&format!("{name}.gain"), 1, dim);
        let bias = store.add_zeros(&format!("{name}.bias"), 1, dim);
        Self { gain, bias }
    }

    /// Normalises each row of `x`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let gain = g.param(store, self.gain);
        let bias = g.param(store, self.bias);
        g.layer_norm(x, gain, bias)
    }
}

/// Inverted-dropout helper owning its keep probability.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// Creates a dropout layer that zeroes activations with probability `p`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0,1)");
        Self { p }
    }

    /// Applies dropout when `training`; identity otherwise.
    pub fn forward(&self, g: &mut Graph, x: NodeId, training: bool, rng: &mut SmallRng) -> NodeId {
        if !training || self.p == 0.0 {
            return x;
        }
        let (rows, cols) = g.value(x).shape();
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let data =
            (0..rows * cols).map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 }).collect();
        let mask = Tensor::from_vec(rows, cols, data);
        g.dropout(x, &mask)
    }
}

/// Two-layer feed-forward block with GELU: `W2(gelu(W1 x))`.
#[derive(Debug, Clone)]
pub struct FeedForward {
    fc1: Linear,
    fc2: Linear,
}

impl FeedForward {
    /// Registers the expansion (`dim -> hidden`) and projection layers.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        hidden: usize,
        rng: &mut SmallRng,
    ) -> Self {
        Self {
            fc1: Linear::new(store, &format!("{name}.fc1"), dim, hidden, rng),
            fc2: Linear::new(store, &format!("{name}.fc2"), hidden, dim, rng),
        }
    }

    /// Applies the block.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let h = self.fc1.forward(g, store, x);
        let a = g.gelu(h);
        self.fc2.forward(g, store, a)
    }
}

/// Multi-head scaled-dot-product self-attention.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// Registers Q/K/V/O projections for `heads` heads over `dim` channels.
    ///
    /// # Panics
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut SmallRng,
    ) -> Self {
        assert_eq!(dim % heads, 0, "dim {dim} must divide into {heads} heads");
        Self {
            wq: Linear::new(store, &format!("{name}.wq"), dim, dim, rng),
            wk: Linear::new(store, &format!("{name}.wk"), dim, dim, rng),
            wv: Linear::new(store, &format!("{name}.wv"), dim, dim, rng),
            wo: Linear::new(store, &format!("{name}.wo"), dim, dim, rng),
            heads,
            head_dim: dim / heads,
        }
    }

    /// Self-attention over a `seq x dim` node.
    ///
    /// `pad_mask` marks positions to exclude as keys: entry `j` of the mask
    /// is `0.0` for real tokens and a large negative number for padding.
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: NodeId,
        pad_mask: Option<&[f32]>,
    ) -> NodeId {
        let seq = g.value(x).rows();
        let q = self.wq.forward(g, store, x);
        let k = self.wk.forward(g, store, x);
        let v = self.wv.forward(g, store, x);
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        let mask_node = pad_mask.map(|m| {
            assert_eq!(m.len(), seq, "pad mask length must equal sequence length");
            let mut rowsv = Vec::with_capacity(seq * seq);
            for _ in 0..seq {
                rowsv.extend_from_slice(m);
            }
            g.input(Tensor::from_vec(seq, seq, rowsv))
        });

        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let start = h * self.head_dim;
            let qh = g.cols_range(q, start, self.head_dim);
            let kh = g.cols_range(k, start, self.head_dim);
            let vh = g.cols_range(v, start, self.head_dim);
            let scores = g.matmul_nt(qh, kh);
            let scaled = g.scale(scores, scale);
            let masked = match mask_node {
                Some(m) => g.add(scaled, m),
                None => scaled,
            };
            let attn = g.softmax(masked);
            head_outputs.push(g.matmul(attn, vh));
        }
        let mut merged = head_outputs[0];
        for &h in &head_outputs[1..] {
            merged = g.concat_cols(merged, h);
        }
        self.wo.forward(g, store, merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn linear_shapes() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let lin = Linear::new(&mut store, "l", 4, 3, &mut r);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(2, 4));
        let y = lin.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (2, 3));
    }

    #[test]
    fn embedding_gathers_rows() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let emb = Embedding::new(&mut store, "e", 10, 4, &mut r);
        let mut g = Graph::new();
        let y = emb.forward(&mut g, &store, &[3, 3, 7]);
        assert_eq!(g.value(y).shape(), (3, 4));
        assert_eq!(g.value(y).row_slice(0), g.value(y).row_slice(1));
    }

    #[test]
    fn attention_output_shape_matches_input() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let mha = MultiHeadAttention::new(&mut store, "a", 8, 2, &mut r);
        let mut g = Graph::new();
        let x = g.input(Tensor::full(5, 8, 0.1));
        let y = mha.forward(&mut g, &store, x, None);
        assert_eq!(g.value(y).shape(), (5, 8));
    }

    #[test]
    fn attention_mask_suppresses_padded_keys() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let mha = MultiHeadAttention::new(&mut store, "a", 4, 1, &mut r);

        // Build an input where position 2 has a wildly different value; with
        // the pad mask active, changing it must not affect output rows 0-1
        // beyond numerical noise.
        let mask = vec![0.0, 0.0, -1e9];
        let mut g1 = Graph::new();
        let x1 = g1.input(Tensor::from_vec(
            3,
            4,
            vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 9.0, 9.0, 9.0, 9.0],
        ));
        let y1 = mha.forward(&mut g1, &store, x1, Some(&mask));

        let mut g2 = Graph::new();
        let x2 = g2.input(Tensor::from_vec(
            3,
            4,
            vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, -5.0, 3.0, -2.0, 1.0],
        ));
        let y2 = mha.forward(&mut g2, &store, x2, Some(&mask));

        for c in 0..4 {
            assert!((g1.value(y1).get(0, c) - g2.value(y2).get(0, c)).abs() < 1e-5);
            assert!((g1.value(y1).get(1, c) - g2.value(y2).get(1, c)).abs() < 1e-5);
        }
    }

    #[test]
    fn dropout_disabled_at_eval() {
        let mut g = Graph::new();
        let x = g.input(Tensor::full(2, 2, 1.0));
        let d = Dropout::new(0.5);
        let mut r = rng();
        let y = d.forward(&mut g, x, false, &mut r);
        assert_eq!(y, x);
    }

    #[test]
    fn dropout_preserves_expected_scale() {
        let mut g = Graph::new();
        let x = g.input(Tensor::full(1, 10_000, 1.0));
        let d = Dropout::new(0.3);
        let mut r = rng();
        let y = d.forward(&mut g, x, true, &mut r);
        let mean = g.value(y).mean();
        assert!((mean - 1.0).abs() < 0.05, "inverted dropout mean was {mean}");
    }

    #[test]
    fn feed_forward_round_trip_shape() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let ff = FeedForward::new(&mut store, "ff", 6, 12, &mut r);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(3, 6));
        let y = ff.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (3, 6));
    }
}
