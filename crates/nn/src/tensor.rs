//! Dense row-major 2-D tensor used throughout the reproduction.
//!
//! All ExplainTI computations operate on matrices whose rows are either
//! batch samples or sequence positions, so a rank-2 tensor (with rank-1
//! treated as a single row) keeps the autograd implementation small and
//! auditable. Shapes are checked eagerly; dimension mismatches panic with
//! the offending shapes, which turns silent numerical bugs into loud ones.

use std::fmt;

/// A dense, row-major `rows x cols` matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "tensor data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { data, rows, cols }
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { data: vec![0.0; rows * cols], rows, cols }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { data: vec![value; rows * cols], rows, cols }
    }

    /// Creates a 1 x n row vector.
    pub fn row(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self::from_vec(1, cols, data)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutably borrow one row as a slice.
    #[inline]
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Matrix product `self (r x k) * other (k x c) -> (r x c)`.
    ///
    /// Uses an i-k-j loop order so the inner loop streams both the output
    /// row and the right-hand-side row, which is the cache-friendly layout
    /// for row-major data.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        let n = other.cols;
        for i in 0..self.rows {
            let a_row = self.row_slice(i);
            let out_row = out.row_slice_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * n..k * n + n];
                for j in 0..n {
                    out_row[j] += a * b_row[j];
                }
            }
        }
        out
    }

    /// `self^T * other`, without materialising the transpose.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: {}x{} ^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.cols, other.cols);
        let n = other.cols;
        for k in 0..self.rows {
            let a_row = self.row_slice(k);
            let b_row = other.row_slice(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..i * n + n];
                for j in 0..n {
                    out_row[j] += a * b_row[j];
                }
            }
        }
        out
    }

    /// `self * other^T`, without materialising the transpose.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} * {}x{} ^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row_slice(i);
            let out_row = out.row_slice_mut(i);
            for (j, out_v) in out_row.iter_mut().enumerate() {
                let b_row = other.row_slice(j);
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += a_row[k] * b_row[k];
                }
                *out_v = acc;
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise in-place scaling.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Mean over every element.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Column-wise mean, producing a `1 x cols` row.
    pub fn mean_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        if self.rows == 0 {
            return out;
        }
        for r in 0..self.rows {
            let row = self.row_slice(r);
            for (o, &v) in out.data.iter_mut().zip(row) {
                *o += v;
            }
        }
        let inv = 1.0 / self.rows as f32;
        out.scale_assign(inv);
        out
    }

    /// L2 norm of the whole tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Cosine similarity between two flat tensors of identical length.
    pub fn cosine(&self, other: &Tensor) -> f32 {
        assert_eq!(self.len(), other.len(), "cosine length mismatch");
        let mut dot = 0.0f32;
        let mut na = 0.0f32;
        let mut nb = 0.0f32;
        for (&a, &b) in self.data.iter().zip(&other.data) {
            dot += a * b;
            na += a * a;
            nb += b * b;
        }
        let denom = na.sqrt() * nb.sqrt();
        if denom <= f32::EPSILON {
            0.0
        } else {
            dot / denom
        }
    }

    /// Extracts rows `[start, start + n)` into a new tensor.
    pub fn rows_range(&self, start: usize, n: usize) -> Tensor {
        assert!(
            start + n <= self.rows,
            "rows_range [{start}, {}) out of bounds for {} rows",
            start + n,
            self.rows
        );
        let begin = start * self.cols;
        let end = (start + n) * self.cols;
        Tensor::from_vec(n, self.cols, self.data[begin..end].to_vec())
    }

    /// Horizontal concatenation: `[self | other]`.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let cols = self.cols + other.cols;
        let mut out = Tensor::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.row_slice_mut(r)[..self.cols].copy_from_slice(self.row_slice(r));
            out.row_slice_mut(r)[self.cols..].copy_from_slice(other.row_slice(r));
        }
        out
    }

    /// Index of the largest element in a given row.
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row_slice(r);
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }
}

/// Numerically stable softmax of a slice, written into `out`.
pub fn softmax_into(xs: &[f32], out: &mut [f32]) {
    debug_assert_eq!(xs.len(), out.len());
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for (o, &x) in out.iter_mut().zip(xs) {
        let e = (x - max).exp();
        *o = e;
        sum += e;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for o in out.iter_mut() {
            *o *= inv;
        }
    }
}

/// Numerically stable softmax of a slice, returning a new vector.
pub fn softmax(xs: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; xs.len()];
    softmax_into(xs, &mut out);
    out
}

/// Kullback-Leibler divergence `KL(p || q)` between two distributions.
///
/// Both inputs must already be probability distributions; entries of `p`
/// that are zero contribute nothing, and `q` is floored at a small epsilon
/// for numerical safety (matching the paper's use of KL over softmax
/// outputs in Eq. 3).
pub fn kl_divergence(p: &[f32], q: &[f32]) -> f32 {
    debug_assert_eq!(p.len(), q.len());
    const EPS: f32 = 1e-8;
    let mut kl = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            kl += pi * (pi / qi.max(EPS)).ln();
        }
    }
    kl.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![1.0, 0.5, -1.0, 2.0, 0.0, 3.0]);
        let got = a.matmul_tn(&b);
        let want = a.transpose().matmul(&b);
        assert_eq!(got, want);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(4, 3, (0..12).map(|v| v as f32).collect());
        let got = a.matmul_nt(&b);
        let want = a.matmul(&b.transpose());
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_inputs() {
        let p = softmax(&[1000.0, 1001.0]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn kl_of_identical_distributions_is_zero() {
        let p = softmax(&[0.3, 1.5, -0.2]);
        assert!(kl_divergence(&p, &p).abs() < 1e-6);
    }

    #[test]
    fn kl_is_positive_for_different_distributions() {
        let p = softmax(&[3.0, 0.0, 0.0]);
        let q = softmax(&[0.0, 0.0, 3.0]);
        assert!(kl_divergence(&p, &q) > 0.1);
    }

    #[test]
    fn cosine_of_parallel_vectors_is_one() {
        let a = Tensor::row(vec![1.0, 2.0, 3.0]);
        let b = Tensor::row(vec![2.0, 4.0, 6.0]);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        let a = Tensor::row(vec![0.0, 0.0]);
        let b = Tensor::row(vec![1.0, 1.0]);
        assert_eq!(a.cosine(&b), 0.0);
    }

    #[test]
    fn mean_rows_averages_columns() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let m = a.mean_rows();
        assert_eq!(m.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn concat_cols_places_halves() {
        let a = Tensor::from_vec(2, 1, vec![1.0, 2.0]);
        let b = Tensor::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.as_slice(), &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn rows_range_extracts_middle() {
        let a = Tensor::from_vec(3, 2, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let b = a.rows_range(1, 1);
        assert_eq!(b.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn argmax_row_finds_peak() {
        let a = Tensor::from_vec(1, 4, vec![0.1, 0.9, 0.3, 0.2]);
        assert_eq!(a.argmax_row(0), 1);
    }
}
