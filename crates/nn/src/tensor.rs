//! Dense row-major 2-D tensor used throughout the reproduction.
//!
//! All ExplainTI computations operate on matrices whose rows are either
//! batch samples or sequence positions, so a rank-2 tensor (with rank-1
//! treated as a single row) keeps the autograd implementation small and
//! auditable. Shapes are checked eagerly; dimension mismatches panic with
//! the offending shapes, which turns silent numerical bugs into loud ones.
//!
//! ## Matmul kernels
//!
//! The three products (`A·B`, `Aᵀ·B`, `A·Bᵀ`) are blocked kernels: the
//! non-contiguous operand is packed into a transposed panel once, each
//! output row is then a run of contiguous fixed-order dot products or
//! axpy sweeps (now executed by the runtime-dispatched SIMD kernels in
//! [`crate::simd`], whose AVX2 and scalar arms are bitwise equivalent),
//! and row blocks are distributed over the shared [`explainti_pool`]
//! when the product is large enough to amortise dispatch. Every output
//! element is computed by exactly one task with an accumulation order
//! that depends only on the shapes — **results are byte-identical for
//! every thread count and every dispatch tier**, which the serve
//! integration tests, `tests/simd_kernels.rs`, and the `kernels` bench
//! binary all assert. The pre-existing single-threaded triple loops
//! survive as `matmul_naive`/`matmul_tn_naive`/`matmul_nt_naive`, the
//! references the property tests compare against.

use explainti_pool::ThreadPool;
use std::fmt;

/// Mul-adds below which a product is never parallelised: dispatching a
/// pool job costs a few microseconds, so the encoder's tiny per-token
/// products (32×32×32 ≈ 33k mul-adds) stay inline while batch-scale
/// products (≥ 64×64×64) fan out.
const PAR_MIN_FLOPS: usize = 1 << 18;

/// Output rows per pool task. Fixed — never derived from the thread
/// count — so how a product is split can never change what it computes.
const ROW_BLOCK: usize = 32;

/// Minimum output rows (for `matmul`) or columns (for `matmul_tn`)
/// before packing a transposed panel pays for itself; below it the
/// naive streaming kernels are both faster and allocation-free.
const PACK_MIN: usize = 8;

/// Records which kernel arm ran for one dispatched product. Called once
/// per packed-kernel invocation (after the naive-path early returns) so
/// the counters reflect actual SIMD-eligible work.
fn note_dispatch() {
    match crate::simd::tier() {
        crate::simd::SimdTier::Avx2 => explainti_obs::counter!("nn.kernel.dispatch.avx2", 1),
        crate::simd::SimdTier::Neon => explainti_obs::counter!("nn.kernel.dispatch.neon", 1),
        crate::simd::SimdTier::Scalar => explainti_obs::counter!("nn.kernel.dispatch.scalar", 1),
    }
}

/// Walks a block of output rows two at a time (odd leftover handled by
/// `one`), so the paired kernel can stream the shared packed panel once
/// per output-row pair. `bi` is the row index within the block.
fn paired_rows(
    rows_out: &mut [f32],
    n: usize,
    mut one: impl FnMut(usize, &mut [f32]),
    mut two: impl FnMut(usize, &mut [f32], &mut [f32]),
) {
    let mut chunks = rows_out.chunks_mut(n);
    let mut bi = 0;
    while let Some(out0) = chunks.next() {
        match chunks.next() {
            Some(out1) => {
                two(bi, out0, out1);
                bi += 2;
            }
            None => {
                one(bi, out0);
                bi += 1;
            }
        }
    }
}

/// A `*mut f32` that may cross threads.
///
/// # Safety contract (callers in this module)
/// Each pool task derives a slice from a **disjoint** row range of the
/// output buffer, and the pool's scope blocks until every task is done,
/// so no aliasing or dangling access is possible.
struct SendMut(*mut f32);
// SAFETY: every task writes only its own disjoint row range and the
// pool scope joins before the buffer is touched again (contract above).
unsafe impl Send for SendMut {}
// SAFETY: shared access is read-only pointer arithmetic; writes through
// the derived slices never overlap across tasks (contract above).
unsafe impl Sync for SendMut {}

impl SendMut {
    /// Method (not field) access so closures capture the `SendMut`
    /// wrapper itself rather than disjointly capturing the raw pointer.
    fn get(&self) -> *mut f32 {
        self.0
    }
}

/// Runs `body(row_start, row_end, out_rows)` over `[0, rows)` split
/// into fixed [`ROW_BLOCK`] chunks, in parallel when the product is
/// big enough, inline otherwise. `out` is the full `rows * cols`
/// output buffer; each invocation receives only its own rows.
fn for_row_blocks<F>(rows: usize, cols: usize, flops: usize, out: &mut [f32], body: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    debug_assert_eq!(out.len(), rows * cols);
    if flops < PAR_MIN_FLOPS || rows <= ROW_BLOCK {
        body(0, rows, out);
        return;
    }
    let pool = explainti_pool::global();
    if pool.threads() == 1 {
        body(0, rows, out);
        return;
    }
    for_row_blocks_in(&pool, rows, cols, out, body);
}

/// The parallel split itself, on an explicit pool (tests drive this
/// directly to compare widths).
fn for_row_blocks_in<F>(pool: &ThreadPool, rows: usize, cols: usize, out: &mut [f32], body: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    let blocks = rows.div_ceil(ROW_BLOCK);
    if blocks <= 1 {
        body(0, rows, out);
        return;
    }
    let _span = explainti_obs::span!("nn.kernel.par");
    let base = SendMut(out.as_mut_ptr());
    pool.scope(blocks, |b| {
        let start = b * ROW_BLOCK;
        let end = (start + ROW_BLOCK).min(rows);
        // SAFETY: blocks index disjoint row ranges of `out`, and
        // `scope` joins every task before `out`'s borrow ends.
        let rows_out = unsafe {
            std::slice::from_raw_parts_mut(base.get().add(start * cols), (end - start) * cols)
        };
        body(start, end, rows_out);
    });
}

/// A dense, row-major `rows x cols` matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "tensor data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { data, rows, cols }
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { data: vec![0.0; rows * cols], rows, cols }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { data: vec![value; rows * cols], rows, cols }
    }

    /// Creates a 1 x n row vector.
    pub fn row(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self::from_vec(1, cols, data)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutably borrow one row as a slice.
    #[inline]
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Matrix product `self (r x k) * other (k x c) -> (r x c)`.
    ///
    /// Blocked kernel: packs `otherᵀ` once so every output element is a
    /// contiguous fixed-order [`dot`], then splits output row blocks over
    /// the global pool when the product is large enough. Small products
    /// fall back to [`Tensor::matmul_naive`].
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.matmul_dispatch(other, None)
    }

    /// [`Tensor::matmul`] on an explicit pool, bypassing the size gate.
    /// Exists so the kernel property tests can compare pool widths; the
    /// result is byte-identical to `matmul` whenever shapes agree on the
    /// packing decision.
    pub fn matmul_in(&self, other: &Tensor, pool: &ThreadPool) -> Tensor {
        self.matmul_dispatch(other, Some(pool))
    }

    fn matmul_dispatch(&self, other: &Tensor, pool: Option<&ThreadPool>) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        if self.rows < PACK_MIN || other.cols == 0 {
            return self.matmul_naive(other);
        }
        note_dispatch();
        let bt = other.transpose();
        let n = other.cols;
        let mut out = Tensor::zeros(self.rows, n);
        let flops = self.rows * self.cols * n;
        let k = self.cols;
        let body = |start: usize, _end: usize, rows_out: &mut [f32]| {
            paired_rows(
                rows_out,
                n,
                |bi, out_row| {
                    crate::simd::row_times_rows(
                        self.row_slice(start + bi),
                        bt.as_slice(),
                        k,
                        out_row,
                    )
                },
                |bi, out0, out1| {
                    crate::simd::rows2_times_rows(
                        self.row_slice(start + bi),
                        self.row_slice(start + bi + 1),
                        bt.as_slice(),
                        k,
                        out0,
                        out1,
                    )
                },
            );
        };
        match pool {
            Some(p) => for_row_blocks_in(p, self.rows, n, &mut out.data, body),
            None => for_row_blocks(self.rows, n, flops, &mut out.data, body),
        }
        out
    }

    /// Reference `A·B` kernel: the original single-threaded i-k-j axpy
    /// loop. Kept as the ground truth the blocked kernel is tested
    /// against, and as the fast path for small products.
    pub fn matmul_naive(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        let n = other.cols;
        for i in 0..self.rows {
            let a_row = self.row_slice(i);
            let out_row = out.row_slice_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * n..k * n + n];
                for j in 0..n {
                    out_row[j] += a * b_row[j];
                }
            }
        }
        out
    }

    /// `self^T * other`, without materialising the transpose of the
    /// product. Packs `selfᵀ` once so each output row streams `other`
    /// with a fixed k-order axpy sweep; row blocks split over the pool.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        self.matmul_tn_dispatch(other, None)
    }

    /// [`Tensor::matmul_tn`] on an explicit pool (see [`Tensor::matmul_in`]).
    pub fn matmul_tn_in(&self, other: &Tensor, pool: &ThreadPool) -> Tensor {
        self.matmul_tn_dispatch(other, Some(pool))
    }

    fn matmul_tn_dispatch(&self, other: &Tensor, pool: Option<&ThreadPool>) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: {}x{} ^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        if other.cols < PACK_MIN {
            return self.matmul_tn_naive(other);
        }
        note_dispatch();
        let at = self.transpose();
        let n = other.cols;
        let mut out = Tensor::zeros(self.cols, n);
        let flops = self.rows * self.cols * n;
        let body = |start: usize, _end: usize, rows_out: &mut [f32]| {
            for (bi, out_row) in rows_out.chunks_mut(n).enumerate() {
                let at_row = at.row_slice(start + bi);
                for (k, &a) in at_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    crate::simd::axpy(a, other.row_slice(k), out_row);
                }
            }
        };
        match pool {
            Some(p) => for_row_blocks_in(p, self.cols, n, &mut out.data, body),
            None => for_row_blocks(self.cols, n, flops, &mut out.data, body),
        }
        out
    }

    /// Reference `Aᵀ·B` kernel: the original single-threaded k-outer
    /// axpy loop (ground truth + small-product fast path).
    pub fn matmul_tn_naive(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: {}x{} ^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.cols, other.cols);
        let n = other.cols;
        for k in 0..self.rows {
            let a_row = self.row_slice(k);
            let b_row = other.row_slice(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..i * n + n];
                for j in 0..n {
                    out_row[j] += a * b_row[j];
                }
            }
        }
        out
    }

    /// `self * other^T`, without materialising the transpose. Both
    /// operands are already row-major along the reduction axis, so no
    /// packing is needed: every output element is a fixed-order [`dot`]
    /// of two contiguous rows, with row blocks split over the pool.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        self.matmul_nt_dispatch(other, None)
    }

    /// [`Tensor::matmul_nt`] on an explicit pool (see [`Tensor::matmul_in`]).
    pub fn matmul_nt_in(&self, other: &Tensor, pool: &ThreadPool) -> Tensor {
        self.matmul_nt_dispatch(other, Some(pool))
    }

    fn matmul_nt_dispatch(&self, other: &Tensor, pool: Option<&ThreadPool>) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} * {}x{} ^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let n = other.rows;
        let mut out = Tensor::zeros(self.rows, n);
        if n == 0 {
            return out;
        }
        note_dispatch();
        let flops = self.rows * self.cols * n;
        let k = self.cols;
        let body = |start: usize, _end: usize, rows_out: &mut [f32]| {
            paired_rows(
                rows_out,
                n,
                |bi, out_row| {
                    crate::simd::row_times_rows(
                        self.row_slice(start + bi),
                        other.as_slice(),
                        k,
                        out_row,
                    )
                },
                |bi, out0, out1| {
                    crate::simd::rows2_times_rows(
                        self.row_slice(start + bi),
                        self.row_slice(start + bi + 1),
                        other.as_slice(),
                        k,
                        out0,
                        out1,
                    )
                },
            );
        };
        match pool {
            Some(p) => for_row_blocks_in(p, self.rows, n, &mut out.data, body),
            None => for_row_blocks(self.rows, n, flops, &mut out.data, body),
        }
        out
    }

    /// Reference `A·Bᵀ` kernel: the original single-threaded
    /// one-accumulator dot loop (ground truth for the property tests).
    pub fn matmul_nt_naive(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} * {}x{} ^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row_slice(i);
            let out_row = out.row_slice_mut(i);
            for (j, out_v) in out_row.iter_mut().enumerate() {
                let b_row = other.row_slice(j);
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += a_row[k] * b_row[k];
                }
                *out_v = acc;
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise in-place scaling.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Mean over every element.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Column-wise mean, producing a `1 x cols` row.
    pub fn mean_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        if self.rows == 0 {
            return out;
        }
        for r in 0..self.rows {
            let row = self.row_slice(r);
            for (o, &v) in out.data.iter_mut().zip(row) {
                *o += v;
            }
        }
        let inv = 1.0 / self.rows as f32;
        out.scale_assign(inv);
        out
    }

    /// L2 norm of the whole tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Cosine similarity between two flat tensors of identical length.
    /// Runs on the dispatched SIMD kernel ([`crate::simd::cosine`]);
    /// every arm is bitwise equal to the 8-lane scalar reference.
    pub fn cosine(&self, other: &Tensor) -> f32 {
        assert_eq!(self.len(), other.len(), "cosine length mismatch");
        crate::simd::cosine(&self.data, &other.data)
    }

    /// Extracts rows `[start, start + n)` into a new tensor.
    pub fn rows_range(&self, start: usize, n: usize) -> Tensor {
        assert!(
            start + n <= self.rows,
            "rows_range [{start}, {}) out of bounds for {} rows",
            start + n,
            self.rows
        );
        let begin = start * self.cols;
        let end = (start + n) * self.cols;
        Tensor::from_vec(n, self.cols, self.data[begin..end].to_vec())
    }

    /// Horizontal concatenation: `[self | other]`.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let cols = self.cols + other.cols;
        let mut out = Tensor::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.row_slice_mut(r)[..self.cols].copy_from_slice(self.row_slice(r));
            out.row_slice_mut(r)[self.cols..].copy_from_slice(other.row_slice(r));
        }
        out
    }

    /// Index of the largest element in a given row.
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row_slice(r);
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }
}

/// Numerically stable softmax of a slice, written into `out`.
pub fn softmax_into(xs: &[f32], out: &mut [f32]) {
    debug_assert_eq!(xs.len(), out.len());
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for (o, &x) in out.iter_mut().zip(xs) {
        let e = (x - max).exp();
        *o = e;
        sum += e;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for o in out.iter_mut() {
            *o *= inv;
        }
    }
}

/// Numerically stable softmax of a slice, returning a new vector.
pub fn softmax(xs: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; xs.len()];
    softmax_into(xs, &mut out);
    out
}

/// Kullback-Leibler divergence `KL(p || q)` between two distributions.
///
/// Both inputs must already be probability distributions; entries of `p`
/// that are zero contribute nothing, and `q` is floored at a small epsilon
/// for numerical safety (matching the paper's use of KL over softmax
/// outputs in Eq. 3).
pub fn kl_divergence(p: &[f32], q: &[f32]) -> f32 {
    debug_assert_eq!(p.len(), q.len());
    const EPS: f32 = 1e-8;
    let mut kl = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            kl += pi * (pi / qi.max(EPS)).ln();
        }
    }
    kl.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![1.0, 0.5, -1.0, 2.0, 0.0, 3.0]);
        let got = a.matmul_tn(&b);
        let want = a.transpose().matmul(&b);
        assert_eq!(got, want);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(4, 3, (0..12).map(|v| v as f32).collect());
        let got = a.matmul_nt(&b);
        let want = a.matmul(&b.transpose());
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_inputs() {
        let p = softmax(&[1000.0, 1001.0]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn kl_of_identical_distributions_is_zero() {
        let p = softmax(&[0.3, 1.5, -0.2]);
        assert!(kl_divergence(&p, &p).abs() < 1e-6);
    }

    #[test]
    fn kl_is_positive_for_different_distributions() {
        let p = softmax(&[3.0, 0.0, 0.0]);
        let q = softmax(&[0.0, 0.0, 3.0]);
        assert!(kl_divergence(&p, &q) > 0.1);
    }

    #[test]
    fn cosine_of_parallel_vectors_is_one() {
        let a = Tensor::row(vec![1.0, 2.0, 3.0]);
        let b = Tensor::row(vec![2.0, 4.0, 6.0]);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        let a = Tensor::row(vec![0.0, 0.0]);
        let b = Tensor::row(vec![1.0, 1.0]);
        assert_eq!(a.cosine(&b), 0.0);
    }

    #[test]
    fn mean_rows_averages_columns() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let m = a.mean_rows();
        assert_eq!(m.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn concat_cols_places_halves() {
        let a = Tensor::from_vec(2, 1, vec![1.0, 2.0]);
        let b = Tensor::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.as_slice(), &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn rows_range_extracts_middle() {
        let a = Tensor::from_vec(3, 2, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let b = a.rows_range(1, 1);
        assert_eq!(b.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn argmax_row_finds_peak() {
        let a = Tensor::from_vec(1, 4, vec![0.1, 0.9, 0.3, 0.2]);
        assert_eq!(a.argmax_row(0), 1);
    }
}
