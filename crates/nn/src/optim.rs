//! Optimizers and learning-rate schedules.
//!
//! The paper fine-tunes with AdamW at 5e-5 under a linearly decreasing
//! schedule; both are implemented here, plus plain SGD used by the simpler
//! baselines (Sherlock/Sato MLPs).

use crate::params::ParamStore;

/// Linearly decaying learning-rate schedule with optional warmup.
#[derive(Debug, Clone)]
pub struct LinearSchedule {
    base_lr: f32,
    warmup_steps: usize,
    total_steps: usize,
}

impl LinearSchedule {
    /// Creates a schedule that warms up for `warmup_steps` then decays
    /// linearly to zero at `total_steps`.
    pub fn new(base_lr: f32, warmup_steps: usize, total_steps: usize) -> Self {
        assert!(total_steps > 0, "total_steps must be positive");
        Self { base_lr, warmup_steps, total_steps }
    }

    /// Constant schedule (no warmup, no decay).
    pub fn constant(lr: f32) -> Self {
        Self { base_lr: lr, warmup_steps: 0, total_steps: usize::MAX }
    }

    /// Learning rate at a given step.
    pub fn lr_at(&self, step: usize) -> f32 {
        if step < self.warmup_steps {
            return self.base_lr * (step + 1) as f32 / self.warmup_steps.max(1) as f32;
        }
        if self.total_steps == usize::MAX {
            return self.base_lr;
        }
        let remaining = self.total_steps.saturating_sub(step) as f32;
        let span = self.total_steps.saturating_sub(self.warmup_steps).max(1) as f32;
        self.base_lr * (remaining / span).clamp(0.0, 1.0)
    }
}

/// AdamW with decoupled weight decay and global-norm gradient clipping.
#[derive(Debug, Clone)]
pub struct AdamW {
    schedule: LinearSchedule,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    clip_norm: Option<f32>,
    step: usize,
}

impl AdamW {
    /// Creates an AdamW optimizer with the paper's defaults
    /// (β₁=0.9, β₂=0.999, ε=1e-8, decay=0.01, clip=1.0).
    pub fn new(schedule: LinearSchedule) -> Self {
        Self {
            schedule,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            clip_norm: Some(1.0),
            step: 0,
        }
    }

    /// Overrides the weight decay coefficient.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Overrides (or disables, with `None`) global-norm clipping.
    pub fn with_clip_norm(mut self, clip: Option<f32>) -> Self {
        self.clip_norm = clip;
        self
    }

    /// Number of optimizer steps taken so far.
    pub fn steps_taken(&self) -> usize {
        self.step
    }

    /// Current learning rate (for logging).
    pub fn current_lr(&self) -> f32 {
        self.schedule.lr_at(self.step)
    }

    /// Applies one update from the gradients accumulated in `store`,
    /// then zeroes them.
    pub fn step(&mut self, store: &mut ParamStore) {
        let _span = explainti_obs::span!("optim.step");
        if let Some(clip) = self.clip_norm {
            let norm = store.grad_norm();
            if norm > clip {
                store.scale_grads(clip / norm);
            }
        }
        let lr = self.schedule.lr_at(self.step);
        self.step += 1;
        let t = self.step as i32;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        for id in store.ids().collect::<Vec<_>>() {
            let (value, m, v, grad, decay) = store.adam_state_mut(id);
            let wd = if decay { self.weight_decay } else { 0.0 };
            for i in 0..value.len() {
                let g = grad.as_slice()[i];
                let mi = self.beta1 * m.as_slice()[i] + (1.0 - self.beta1) * g;
                let vi = self.beta2 * v.as_slice()[i] + (1.0 - self.beta2) * g * g;
                m.as_mut_slice()[i] = mi;
                v.as_mut_slice()[i] = vi;
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                let w = value.as_slice()[i];
                value.as_mut_slice()[i] = w - lr * (mhat / (vhat.sqrt() + self.eps) + wd * w);
            }
        }
        store.zero_grads();
    }
}

/// Plain stochastic gradient descent (used by the Sherlock/Sato baselines).
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    clip_norm: Option<f32>,
}

impl Sgd {
    /// Creates an SGD optimizer with clipping at norm 5 (MLP-friendly).
    pub fn new(lr: f32) -> Self {
        Self { lr, clip_norm: Some(5.0) }
    }

    /// Applies one update and zeroes gradients.
    pub fn step(&mut self, store: &mut ParamStore) {
        if let Some(clip) = self.clip_norm {
            let norm = store.grad_norm();
            if norm > clip {
                store.scale_grads(clip / norm);
            }
        }
        for id in store.ids().collect::<Vec<_>>() {
            let (value, _m, _v, grad, _decay) = store.adam_state_mut(id);
            for i in 0..value.len() {
                value.as_mut_slice()[i] -= self.lr * grad.as_slice()[i];
            }
        }
        store.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::tensor::Tensor;

    #[test]
    fn linear_schedule_decays_to_zero() {
        let s = LinearSchedule::new(1.0, 0, 10);
        assert!((s.lr_at(0) - 1.0).abs() < 1e-6);
        assert!(s.lr_at(5) < s.lr_at(1));
        assert!(s.lr_at(10) <= 1e-6);
    }

    #[test]
    fn warmup_ramps_up() {
        let s = LinearSchedule::new(1.0, 4, 100);
        assert!(s.lr_at(0) < s.lr_at(3));
        assert!((s.lr_at(3) - 1.0).abs() < 0.3);
    }

    /// A single quadratic-bowl parameter must converge to the target under
    /// AdamW: minimise (w - 3)^2 expressed through the graph.
    #[test]
    fn adamw_minimises_quadratic() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::row(vec![0.0]));
        let mut opt = AdamW::new(LinearSchedule::constant(0.1)).with_weight_decay(0.0);
        for _ in 0..300 {
            let mut g = Graph::new();
            let wn = g.param(&store, w);
            let target = g.input(Tensor::row(vec![3.0]));
            let diff = g.sub(wn, target);
            let sq = g.mul(diff, diff);
            g.backward(sq);
            g.flush_grads(&mut store);
            opt.step(&mut store);
        }
        assert!((store.value(w).as_slice()[0] - 3.0).abs() < 0.05);
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::row(vec![-1.0]));
        let mut opt = Sgd::new(0.1);
        for _ in 0..200 {
            let mut g = Graph::new();
            let wn = g.param(&store, w);
            let target = g.input(Tensor::row(vec![2.0]));
            let diff = g.sub(wn, target);
            let sq = g.mul(diff, diff);
            g.backward(sq);
            g.flush_grads(&mut store);
            opt.step(&mut store);
        }
        assert!((store.value(w).as_slice()[0] - 2.0).abs() < 0.05);
    }

    #[test]
    fn clipping_limits_update_magnitude() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::row(vec![0.0]));
        store.grad_mut(w).as_mut_slice()[0] = 1000.0;
        let mut opt = AdamW::new(LinearSchedule::constant(0.01));
        opt.step(&mut store);
        // With clip at 1.0 the Adam update is bounded near lr.
        assert!(store.value(w).as_slice()[0].abs() < 0.05);
    }
}
