//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every operation of one forward pass; node ids are
//! handed back to the caller and are topologically ordered by construction,
//! so [`Graph::backward`] is a single reverse sweep. Parameters enter the
//! graph via [`Graph::param`], which snapshots the current value from a
//! [`ParamStore`](crate::params::ParamStore) and remembers the parameter id
//! so gradients can be flushed back after the sweep.
//!
//! The op set is exactly what the ExplainTI reproduction needs: dense
//! matmuls (plain and `A·Bᵀ`), broadcast adds, row/column slicing,
//! softmax, layer-norm, GELU-family activations, embedding gather, mean
//! pooling, concatenation, dropout, and the two classification losses.
//! Every backward rule is validated against finite differences in
//! `tests/gradcheck.rs`.

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a node in the computation graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

#[derive(Debug)]
enum Op {
    /// Leaf holding caller-provided data (inputs, masks, constants).
    Input,
    /// Leaf snapshotting a trainable parameter.
    Param(ParamId),
    /// `C = A · B`
    MatMul(NodeId, NodeId),
    /// `C = A · Bᵀ`
    MatMulNT(NodeId, NodeId),
    /// Element-wise `A + B` (identical shapes).
    Add(NodeId, NodeId),
    /// `A + b` where `b` is a `1 x cols` row broadcast over rows of `A`.
    AddRow(NodeId, NodeId),
    /// Element-wise `A - B`.
    Sub(NodeId, NodeId),
    /// Element-wise `A ⊙ B`.
    Mul(NodeId, NodeId),
    /// `s · A`.
    Scale(NodeId, f32),
    /// Row-wise softmax.
    Softmax(NodeId),
    /// Row-wise layer normalisation with learned gain and bias rows.
    LayerNorm {
        x: NodeId,
        gain: NodeId,
        bias: NodeId,
        /// Saved normalised activations for the backward pass.
        xhat: Tensor,
        /// Saved per-row `1/σ`.
        inv_std: Vec<f32>,
    },
    /// GELU (tanh approximation).
    Gelu(NodeId),
    /// ReLU.
    Relu(NodeId),
    /// Hyperbolic tangent.
    Tanh(NodeId),
    /// Logistic sigmoid.
    Sigmoid(NodeId),
    /// Gather rows `ids` from a parameter matrix.
    Embedding { weight: NodeId, ids: Vec<usize> },
    /// Column-wise mean producing a single row.
    MeanRows(NodeId),
    /// Horizontal concatenation `[A | B]`.
    ConcatCols(NodeId, NodeId),
    /// Column slice `A[:, start..start+n]`.
    ColsRange { x: NodeId, start: usize, n: usize },
    /// Row slice `A[start..start+n, :]`.
    RowsRange { x: NodeId, start: usize, n: usize },
    /// Inverted dropout with a caller-supplied mask (already scaled).
    Dropout { x: NodeId, mask: Tensor },
    /// Mean cross-entropy from logits against class indices.
    CrossEntropy { logits: NodeId, targets: Vec<usize>, probs: Tensor },
    /// Mean binary cross-entropy with logits against a multi-hot matrix.
    BceWithLogits { logits: NodeId, targets: Tensor },
}

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
}

/// A single forward pass's computation tape.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    /// Parameter snapshots already on the tape, so repeated uses of the
    /// same weight (LE's per-window head, batched forwards) share one
    /// node instead of re-cloning the tensor. Gradients from every use
    /// accumulate into the shared node, which is exactly the sum the
    /// per-use nodes would have flushed individually.
    param_memo: std::collections::HashMap<ParamId, NodeId>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::with_capacity(128), param_memo: std::collections::HashMap::new() }
    }

    fn push(&mut self, value: Tensor, op: Op) -> NodeId {
        self.nodes.push(Node { value, grad: None, op });
        NodeId(self.nodes.len() - 1)
    }

    /// Value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Gradient of a node (zeros if it never received one).
    pub fn grad(&self, id: NodeId) -> Tensor {
        match &self.nodes[id.0].grad {
            Some(g) => g.clone(),
            None => {
                let (r, c) = self.nodes[id.0].value.shape();
                Tensor::zeros(r, c)
            }
        }
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Inserts a data leaf (input, mask, constant).
    pub fn input(&mut self, value: Tensor) -> NodeId {
        self.push(value, Op::Input)
    }

    /// Snapshots a trainable parameter onto the tape. Repeated calls for
    /// the same parameter within one tape return the same node (store
    /// values only change between tapes, never mid-forward).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        if let Some(&node) = self.param_memo.get(&id) {
            return node;
        }
        let node = self.push(store.value(id).clone(), Op::Param(id));
        self.param_memo.insert(id, node);
        node
    }

    /// `A · B`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, Op::MatMul(a, b))
    }

    /// `A · Bᵀ` (used for attention scores).
    pub fn matmul_nt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.matmul_nt(&self.nodes[b.0].value);
        self.push(v, Op::MatMulNT(a, b))
    }

    /// Element-wise addition of same-shape nodes.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(va.shape(), vb.shape(), "add shape mismatch");
        let mut v = va.clone();
        v.add_assign(vb);
        self.push(v, Op::Add(a, b))
    }

    /// Adds a `1 x cols` row `b` to every row of `a`.
    pub fn add_row(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(vb.rows(), 1, "add_row rhs must be a single row");
        assert_eq!(va.cols(), vb.cols(), "add_row column mismatch");
        let mut v = va.clone();
        for r in 0..v.rows() {
            let row = v.row_slice_mut(r);
            for (x, &y) in row.iter_mut().zip(vb.as_slice()) {
                *x += y;
            }
        }
        self.push(v, Op::AddRow(a, b))
    }

    /// Element-wise subtraction.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(va.shape(), vb.shape(), "sub shape mismatch");
        let data = va.as_slice().iter().zip(vb.as_slice()).map(|(&x, &y)| x - y).collect();
        let v = Tensor::from_vec(va.rows(), va.cols(), data);
        self.push(v, Op::Sub(a, b))
    }

    /// Element-wise product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(va.shape(), vb.shape(), "mul shape mismatch");
        let data = va.as_slice().iter().zip(vb.as_slice()).map(|(&x, &y)| x * y).collect();
        let v = Tensor::from_vec(va.rows(), va.cols(), data);
        self.push(v, Op::Mul(a, b))
    }

    /// Scalar scaling.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let mut v = self.nodes[a.0].value.clone();
        v.scale_assign(s);
        self.push(v, Op::Scale(a, s))
    }

    /// Row-wise softmax.
    pub fn softmax(&mut self, a: NodeId) -> NodeId {
        let va = &self.nodes[a.0].value;
        let mut v = Tensor::zeros(va.rows(), va.cols());
        for r in 0..va.rows() {
            crate::tensor::softmax_into(va.row_slice(r), v.row_slice_mut(r));
        }
        self.push(v, Op::Softmax(a))
    }

    /// Row-wise layer normalisation. `gain` and `bias` are `1 x cols` rows.
    pub fn layer_norm(&mut self, x: NodeId, gain: NodeId, bias: NodeId) -> NodeId {
        const EPS: f32 = 1e-5;
        let vx = &self.nodes[x.0].value;
        let vg = &self.nodes[gain.0].value;
        let vb = &self.nodes[bias.0].value;
        assert_eq!(vg.shape(), (1, vx.cols()), "layer_norm gain shape");
        assert_eq!(vb.shape(), (1, vx.cols()), "layer_norm bias shape");
        let (rows, cols) = vx.shape();
        let mut xhat = Tensor::zeros(rows, cols);
        let mut out = Tensor::zeros(rows, cols);
        let mut inv_std = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = vx.row_slice(r);
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            let istd = 1.0 / (var + EPS).sqrt();
            inv_std.push(istd);
            let xh = xhat.row_slice_mut(r);
            let o = out.row_slice_mut(r);
            for c in 0..cols {
                let h = (row[c] - mean) * istd;
                xh[c] = h;
                o[c] = vg.as_slice()[c] * h + vb.as_slice()[c];
            }
        }
        self.push(out, Op::LayerNorm { x, gain, bias, xhat, inv_std })
    }

    /// GELU activation (tanh approximation, as in BERT).
    pub fn gelu(&mut self, a: NodeId) -> NodeId {
        let va = &self.nodes[a.0].value;
        let data = va.as_slice().iter().map(|&x| gelu_fwd(x)).collect();
        let v = Tensor::from_vec(va.rows(), va.cols(), data);
        self.push(v, Op::Gelu(a))
    }

    /// ReLU activation.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let va = &self.nodes[a.0].value;
        let data = va.as_slice().iter().map(|&x| x.max(0.0)).collect();
        let v = Tensor::from_vec(va.rows(), va.cols(), data);
        self.push(v, Op::Relu(a))
    }

    /// tanh activation.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let va = &self.nodes[a.0].value;
        let data = va.as_slice().iter().map(|&x| x.tanh()).collect();
        let v = Tensor::from_vec(va.rows(), va.cols(), data);
        self.push(v, Op::Tanh(a))
    }

    /// Logistic sigmoid activation.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let va = &self.nodes[a.0].value;
        let data = va.as_slice().iter().map(|&x| sigmoid_fwd(x)).collect();
        let v = Tensor::from_vec(va.rows(), va.cols(), data);
        self.push(v, Op::Sigmoid(a))
    }

    /// Gathers rows `ids` from the (parameter) matrix node `weight`.
    pub fn embedding(&mut self, weight: NodeId, ids: &[usize]) -> NodeId {
        let w = &self.nodes[weight.0].value;
        let cols = w.cols();
        let mut v = Tensor::zeros(ids.len(), cols);
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < w.rows(), "embedding id {id} out of range {}", w.rows());
            v.row_slice_mut(r).copy_from_slice(w.row_slice(id));
        }
        self.push(v, Op::Embedding { weight, ids: ids.to_vec() })
    }

    /// Column-wise mean producing a `1 x cols` row.
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.mean_rows();
        self.push(v, Op::MeanRows(a))
    }

    /// Horizontal concatenation `[A | B]`.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.concat_cols(&self.nodes[b.0].value);
        self.push(v, Op::ConcatCols(a, b))
    }

    /// Column slice `A[:, start..start+n]`.
    pub fn cols_range(&mut self, x: NodeId, start: usize, n: usize) -> NodeId {
        let vx = &self.nodes[x.0].value;
        assert!(start + n <= vx.cols(), "cols_range out of bounds");
        let mut v = Tensor::zeros(vx.rows(), n);
        for r in 0..vx.rows() {
            v.row_slice_mut(r).copy_from_slice(&vx.row_slice(r)[start..start + n]);
        }
        self.push(v, Op::ColsRange { x, start, n })
    }

    /// Row slice `A[start..start+n, :]`.
    pub fn rows_range(&mut self, x: NodeId, start: usize, n: usize) -> NodeId {
        let v = self.nodes[x.0].value.rows_range(start, n);
        self.push(v, Op::RowsRange { x, start, n })
    }

    /// Inverted dropout. `mask` entries must be `0` or `1/(1-p)`.
    pub fn dropout(&mut self, x: NodeId, mask: &Tensor) -> NodeId {
        let vx = &self.nodes[x.0].value;
        assert_eq!(vx.shape(), mask.shape(), "dropout mask shape mismatch");
        let data = vx.as_slice().iter().zip(mask.as_slice()).map(|(&a, &m)| a * m).collect();
        let v = Tensor::from_vec(vx.rows(), vx.cols(), data);
        self.push(v, Op::Dropout { x, mask: mask.clone() })
    }

    /// Mean cross-entropy over the batch from raw logits.
    pub fn cross_entropy(&mut self, logits: NodeId, targets: &[usize]) -> NodeId {
        let vl = &self.nodes[logits.0].value;
        assert_eq!(vl.rows(), targets.len(), "cross_entropy batch mismatch");
        let mut probs = Tensor::zeros(vl.rows(), vl.cols());
        let mut loss = 0.0;
        for (r, &t) in targets.iter().enumerate() {
            crate::tensor::softmax_into(vl.row_slice(r), probs.row_slice_mut(r));
            assert!(t < vl.cols(), "target class {t} out of range {}", vl.cols());
            loss -= probs.get(r, t).max(1e-9).ln();
        }
        loss /= vl.rows().max(1) as f32;
        let v = Tensor::from_vec(1, 1, vec![loss]);
        self.push(v, Op::CrossEntropy { logits, targets: targets.to_vec(), probs })
    }

    /// Mean binary cross-entropy with logits over every element.
    pub fn bce_with_logits(&mut self, logits: NodeId, targets: &Tensor) -> NodeId {
        let vl = &self.nodes[logits.0].value;
        assert_eq!(vl.shape(), targets.shape(), "bce shape mismatch");
        let mut loss = 0.0;
        for (&x, &y) in vl.as_slice().iter().zip(targets.as_slice()) {
            // Numerically stable: max(x,0) - x*y + ln(1 + e^{-|x|})
            loss += x.max(0.0) - x * y + (1.0 + (-x.abs()).exp()).ln();
        }
        loss /= vl.len().max(1) as f32;
        let v = Tensor::from_vec(1, 1, vec![loss]);
        self.push(v, Op::BceWithLogits { logits, targets: targets.clone() })
    }

    fn accumulate(&mut self, id: NodeId, delta: &Tensor) {
        let node = &mut self.nodes[id.0];
        match &mut node.grad {
            Some(g) => g.add_assign(delta),
            None => node.grad = Some(delta.clone()),
        }
    }

    /// Runs the reverse sweep from `root`, seeding its gradient with ones.
    ///
    /// `root` is usually the `1 x 1` loss node; seeding with ones makes the
    /// sweep compute plain derivatives of the loss.
    pub fn backward(&mut self, root: NodeId) {
        let _span = explainti_obs::span!("nn.backward");
        let (r, c) = self.nodes[root.0].value.shape();
        self.nodes[root.0].grad = Some(Tensor::full(r, c, 1.0));

        for i in (0..=root.0).rev() {
            let grad = match self.nodes[i].grad.take() {
                Some(g) => g,
                None => continue,
            };
            // Each arm computes parent deltas from `grad` and the saved
            // forward context; they are applied after the borrow of the op
            // ends.
            let mut deltas: Vec<(NodeId, Tensor)> = Vec::new();
            match &self.nodes[i].op {
                Op::Input | Op::Param(_) => {}
                Op::MatMul(a, b) => {
                    let da = grad.matmul_nt(&self.nodes[b.0].value);
                    let db = self.nodes[a.0].value.matmul_tn(&grad);
                    deltas.push((*a, da));
                    deltas.push((*b, db));
                }
                Op::MatMulNT(a, b) => {
                    // C = A Btr => dA = dC B ; dB = dCtr A
                    let da = grad.matmul(&self.nodes[b.0].value);
                    let db = grad.matmul_tn(&self.nodes[a.0].value);
                    deltas.push((*a, da));
                    deltas.push((*b, db));
                }
                Op::Add(a, b) => {
                    deltas.push((*a, grad.clone()));
                    deltas.push((*b, grad.clone()));
                }
                Op::AddRow(a, b) => {
                    let mut db = Tensor::zeros(1, grad.cols());
                    for r in 0..grad.rows() {
                        let row = grad.row_slice(r);
                        for (o, &v) in db.as_mut_slice().iter_mut().zip(row) {
                            *o += v;
                        }
                    }
                    deltas.push((*a, grad.clone()));
                    deltas.push((*b, db));
                }
                Op::Sub(a, b) => {
                    let mut neg = grad.clone();
                    neg.scale_assign(-1.0);
                    deltas.push((*a, grad.clone()));
                    deltas.push((*b, neg));
                }
                Op::Mul(a, b) => {
                    let vb = &self.nodes[b.0].value;
                    let da_data =
                        grad.as_slice().iter().zip(vb.as_slice()).map(|(&g, &v)| g * v).collect();
                    let va = &self.nodes[a.0].value;
                    let db_data =
                        grad.as_slice().iter().zip(va.as_slice()).map(|(&g, &v)| g * v).collect();
                    deltas.push((*a, Tensor::from_vec(grad.rows(), grad.cols(), da_data)));
                    deltas.push((*b, Tensor::from_vec(grad.rows(), grad.cols(), db_data)));
                }
                Op::Scale(a, s) => {
                    let mut da = grad.clone();
                    da.scale_assign(*s);
                    deltas.push((*a, da));
                }
                Op::Softmax(a) => {
                    let p = &self.nodes[i].value;
                    let mut da = Tensor::zeros(p.rows(), p.cols());
                    for r in 0..p.rows() {
                        let pr = p.row_slice(r);
                        let gr = grad.row_slice(r);
                        let dot: f32 = pr.iter().zip(gr).map(|(&pi, &gi)| pi * gi).sum();
                        let dr = da.row_slice_mut(r);
                        for c in 0..pr.len() {
                            dr[c] = pr[c] * (gr[c] - dot);
                        }
                    }
                    deltas.push((*a, da));
                }
                Op::LayerNorm { x, gain, bias, xhat, inv_std } => {
                    let vg = &self.nodes[gain.0].value;
                    let (rows, cols) = grad.shape();
                    let mut dx = Tensor::zeros(rows, cols);
                    let mut dgain = Tensor::zeros(1, cols);
                    let mut dbias = Tensor::zeros(1, cols);
                    for (r, &istd) in inv_std.iter().enumerate().take(rows) {
                        let gr = grad.row_slice(r);
                        let xh = xhat.row_slice(r);
                        for c in 0..cols {
                            dgain.as_mut_slice()[c] += gr[c] * xh[c];
                            dbias.as_mut_slice()[c] += gr[c];
                        }
                        // dx = (g*gamma - mean(g*gamma) - xhat * mean(g*gamma*xhat)) / sigma
                        let gy: Vec<f32> = (0..cols).map(|c| gr[c] * vg.as_slice()[c]).collect();
                        let m1 = gy.iter().sum::<f32>() / cols as f32;
                        let m2 = gy.iter().zip(xh).map(|(&g, &h)| g * h).sum::<f32>() / cols as f32;
                        let dr = dx.row_slice_mut(r);
                        for c in 0..cols {
                            dr[c] = (gy[c] - m1 - xh[c] * m2) * istd;
                        }
                    }
                    deltas.push((*x, dx));
                    deltas.push((*gain, dgain));
                    deltas.push((*bias, dbias));
                }
                Op::Gelu(a) => {
                    let vx = &self.nodes[a.0].value;
                    let data = grad
                        .as_slice()
                        .iter()
                        .zip(vx.as_slice())
                        .map(|(&g, &x)| g * gelu_bwd(x))
                        .collect();
                    deltas.push((*a, Tensor::from_vec(grad.rows(), grad.cols(), data)));
                }
                Op::Relu(a) => {
                    let vx = &self.nodes[a.0].value;
                    let data = grad
                        .as_slice()
                        .iter()
                        .zip(vx.as_slice())
                        .map(|(&g, &x)| if x > 0.0 { g } else { 0.0 })
                        .collect();
                    deltas.push((*a, Tensor::from_vec(grad.rows(), grad.cols(), data)));
                }
                Op::Tanh(a) => {
                    let vy = &self.nodes[i].value;
                    let data = grad
                        .as_slice()
                        .iter()
                        .zip(vy.as_slice())
                        .map(|(&g, &y)| g * (1.0 - y * y))
                        .collect();
                    deltas.push((*a, Tensor::from_vec(grad.rows(), grad.cols(), data)));
                }
                Op::Sigmoid(a) => {
                    let vy = &self.nodes[i].value;
                    let data = grad
                        .as_slice()
                        .iter()
                        .zip(vy.as_slice())
                        .map(|(&g, &y)| g * y * (1.0 - y))
                        .collect();
                    deltas.push((*a, Tensor::from_vec(grad.rows(), grad.cols(), data)));
                }
                Op::Embedding { weight, ids } => {
                    let w = &self.nodes[weight.0].value;
                    let mut dw = Tensor::zeros(w.rows(), w.cols());
                    for (r, &id) in ids.iter().enumerate() {
                        let src = grad.row_slice(r);
                        let dst = dw.row_slice_mut(id);
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                    deltas.push((*weight, dw));
                }
                Op::MeanRows(a) => {
                    let rows = self.nodes[a.0].value.rows();
                    let inv = 1.0 / rows.max(1) as f32;
                    let mut da = Tensor::zeros(rows, grad.cols());
                    for r in 0..rows {
                        let dst = da.row_slice_mut(r);
                        for (d, &g) in dst.iter_mut().zip(grad.as_slice()) {
                            *d = g * inv;
                        }
                    }
                    deltas.push((*a, da));
                }
                Op::ConcatCols(a, b) => {
                    let ca = self.nodes[a.0].value.cols();
                    let cb = self.nodes[b.0].value.cols();
                    let rows = grad.rows();
                    let mut da = Tensor::zeros(rows, ca);
                    let mut db = Tensor::zeros(rows, cb);
                    for r in 0..rows {
                        let g = grad.row_slice(r);
                        da.row_slice_mut(r).copy_from_slice(&g[..ca]);
                        db.row_slice_mut(r).copy_from_slice(&g[ca..]);
                    }
                    deltas.push((*a, da));
                    deltas.push((*b, db));
                }
                Op::ColsRange { x, start, n } => {
                    let vx = &self.nodes[x.0].value;
                    let mut dx = Tensor::zeros(vx.rows(), vx.cols());
                    for r in 0..grad.rows() {
                        let g = grad.row_slice(r);
                        dx.row_slice_mut(r)[*start..*start + *n].copy_from_slice(g);
                    }
                    deltas.push((*x, dx));
                }
                Op::RowsRange { x, start, n } => {
                    let vx = &self.nodes[x.0].value;
                    let mut dx = Tensor::zeros(vx.rows(), vx.cols());
                    for r in 0..*n {
                        dx.row_slice_mut(*start + r).copy_from_slice(grad.row_slice(r));
                    }
                    deltas.push((*x, dx));
                }
                Op::Dropout { x, mask } => {
                    let data =
                        grad.as_slice().iter().zip(mask.as_slice()).map(|(&g, &m)| g * m).collect();
                    deltas.push((*x, Tensor::from_vec(grad.rows(), grad.cols(), data)));
                }
                Op::CrossEntropy { logits, targets, probs } => {
                    let g = grad.as_slice()[0];
                    let batch = probs.rows().max(1) as f32;
                    let mut dl = probs.clone();
                    for (r, &t) in targets.iter().enumerate() {
                        let v = dl.get(r, t);
                        dl.set(r, t, v - 1.0);
                    }
                    dl.scale_assign(g / batch);
                    deltas.push((*logits, dl));
                }
                Op::BceWithLogits { logits, targets } => {
                    let g = grad.as_slice()[0];
                    let vl = &self.nodes[logits.0].value;
                    let n = vl.len().max(1) as f32;
                    let data = vl
                        .as_slice()
                        .iter()
                        .zip(targets.as_slice())
                        .map(|(&x, &y)| (sigmoid_fwd(x) - y) * g / n)
                        .collect();
                    deltas.push((*logits, Tensor::from_vec(vl.rows(), vl.cols(), data)));
                }
            }
            for (id, d) in deltas {
                self.accumulate(id, &d);
            }
            self.nodes[i].grad = Some(grad);
        }
    }

    /// Adds every parameter node's gradient into the store.
    ///
    /// Call once after [`Graph::backward`]; the optimizer then steps on the
    /// accumulated store gradients.
    pub fn flush_grads(&self, store: &mut ParamStore) {
        for node in &self.nodes {
            if let (Op::Param(pid), Some(g)) = (&node.op, &node.grad) {
                store.grad_mut(*pid).add_assign(g);
            }
        }
    }
}

#[inline]
fn sigmoid_fwd(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)
const GELU_A: f32 = 0.044_715;

#[inline]
fn gelu_fwd(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + GELU_A * x * x * x)).tanh())
}

#[inline]
fn gelu_bwd(x: f32) -> f32 {
    let u = GELU_C * (x + GELU_A * x * x * x);
    let t = u.tanh();
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * GELU_C * (1.0 + 3.0 * GELU_A * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;

    #[test]
    fn forward_matmul_chain() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let b = g.input(Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
        let c = g.matmul(a, b);
        assert_eq!(g.value(c).as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn backward_through_scale_and_add() {
        let mut g = Graph::new();
        let a = g.input(Tensor::row(vec![2.0]));
        let b = g.input(Tensor::row(vec![3.0]));
        let s = g.scale(a, 4.0);
        let out = g.add(s, b);
        g.backward(out);
        assert_eq!(g.grad(a).as_slice(), &[4.0]);
        assert_eq!(g.grad(b).as_slice(), &[1.0]);
    }

    #[test]
    fn cross_entropy_gradient_is_probs_minus_onehot() {
        let mut g = Graph::new();
        let logits = g.input(Tensor::from_vec(1, 3, vec![0.0, 0.0, 0.0]));
        let loss = g.cross_entropy(logits, &[1]);
        g.backward(loss);
        let dl = g.grad(logits);
        let third = 1.0 / 3.0;
        assert!((dl.as_slice()[0] - third).abs() < 1e-6);
        assert!((dl.as_slice()[1] - (third - 1.0)).abs() < 1e-6);
        assert!((dl.as_slice()[2] - third).abs() < 1e-6);
    }

    #[test]
    fn embedding_gathers_and_scatters() {
        let mut store = ParamStore::new();
        let w = store.add("emb", Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let mut g = Graph::new();
        let wn = g.param(&store, w);
        let e = g.embedding(wn, &[2, 0, 2]);
        assert_eq!(g.value(e).as_slice(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let s = g.mean_rows(e);
        let l = g.scale(s, 3.0);
        g.backward(l);
        g.flush_grads(&mut store);
        // Row 2 gathered twice, row 0 once, row 1 never.
        let grad = store.grad(w);
        assert!(grad.get(2, 0) > grad.get(0, 0));
        assert_eq!(grad.get(1, 0), 0.0);
    }

    #[test]
    fn dropout_mask_is_applied_in_both_directions() {
        let mut g = Graph::new();
        let x = g.input(Tensor::row(vec![1.0, 1.0]));
        let mask = Tensor::row(vec![0.0, 2.0]);
        let y = g.dropout(x, &mask);
        assert_eq!(g.value(y).as_slice(), &[0.0, 2.0]);
        g.backward(y);
        assert_eq!(g.grad(x).as_slice(), &[0.0, 2.0]);
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 0.0, 0.0, 0.0]));
        let p = g.softmax(x);
        let v = g.value(p);
        for r in 0..2 {
            let s: f32 = v.row_slice(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn layer_norm_output_is_normalised() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]));
        let gain = g.input(Tensor::row(vec![1.0; 4]));
        let bias = g.input(Tensor::row(vec![0.0; 4]));
        let y = g.layer_norm(x, gain, bias);
        let v = g.value(y);
        let mean: f32 = v.as_slice().iter().sum::<f32>() / 4.0;
        let var: f32 = v.as_slice().iter().map(|&a| (a - mean) * (a - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-2);
    }

    #[test]
    fn bce_with_logits_matches_manual_value() {
        let mut g = Graph::new();
        let x = g.input(Tensor::row(vec![0.0]));
        let t = Tensor::row(vec![1.0]);
        let l = g.bce_with_logits(x, &t);
        // -ln(sigmoid(0)) = ln 2
        assert!((g.value(l).as_slice()[0] - std::f32::consts::LN_2).abs() < 1e-6);
    }
}
