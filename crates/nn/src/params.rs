//! Trainable-parameter storage shared by every model in the reproduction.
//!
//! A [`ParamStore`] owns the values, accumulated gradients, and optimizer
//! state (Adam moments) of a model. Graphs snapshot values at forward time
//! and flush gradients back after the reverse sweep, so the store is the
//! single source of truth for training.

use crate::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::Rng;

/// Handle to one parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

struct Param {
    name: String,
    value: Tensor,
    grad: Tensor,
    /// First Adam moment.
    m: Tensor,
    /// Second Adam moment.
    v: Tensor,
    /// Parameters such as layer-norm gains and biases skip weight decay.
    decay: bool,
}

/// Owns every trainable tensor of a model.
#[derive(Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter with weight decay enabled.
    pub fn add(&mut self, name: &str, value: Tensor) -> ParamId {
        self.add_with_decay(name, value, true)
    }

    /// Registers a parameter, controlling weight-decay participation.
    pub fn add_with_decay(&mut self, name: &str, value: Tensor, decay: bool) -> ParamId {
        let (r, c) = value.shape();
        self.params.push(Param {
            name: name.to_string(),
            value,
            grad: Tensor::zeros(r, c),
            m: Tensor::zeros(r, c),
            v: Tensor::zeros(r, c),
            decay,
        });
        ParamId(self.params.len() - 1)
    }

    /// Registers a matrix initialised with Xavier/Glorot uniform noise.
    pub fn add_xavier(
        &mut self,
        name: &str,
        rows: usize,
        cols: usize,
        rng: &mut SmallRng,
    ) -> ParamId {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-bound..bound)).collect();
        self.add(name, Tensor::from_vec(rows, cols, data))
    }

    /// Registers a matrix initialised with small Gaussian-ish noise
    /// (uniform approximation, std ≈ `std`), as BERT does for embeddings.
    pub fn add_normal(
        &mut self,
        name: &str,
        rows: usize,
        cols: usize,
        std: f32,
        rng: &mut SmallRng,
    ) -> ParamId {
        // Irwin-Hall sum of 4 uniforms approximates a Gaussian well enough
        // for initialisation while keeping `rand`'s core API.
        let data = (0..rows * cols)
            .map(|_| {
                let s: f32 = (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).sum();
                s * 0.5 * std * 1.732
            })
            .collect();
        self.add(name, Tensor::from_vec(rows, cols, data))
    }

    /// Registers a zero-initialised row (bias).
    pub fn add_zeros(&mut self, name: &str, rows: usize, cols: usize) -> ParamId {
        self.add_with_decay(name, Tensor::zeros(rows, cols), false)
    }

    /// Registers a ones-initialised row (layer-norm gain).
    pub fn add_ones(&mut self, name: &str, rows: usize, cols: usize) -> ParamId {
        self.add_with_decay(name, Tensor::full(rows, cols, 1.0), false)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Parameter name (for debugging and serialisation).
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Current value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable value (used by weight loading).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// Accumulated gradient.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    /// Mutable accumulated gradient (graphs flush into this).
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].grad
    }

    /// Whether the parameter participates in weight decay.
    pub fn decays(&self, id: ParamId) -> bool {
        self.params[id.0].decay
    }

    /// Zeroes every accumulated gradient.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.as_mut_slice().fill(0.0);
        }
    }

    /// Global L2 norm of all gradients (for clipping).
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| p.grad.as_slice().iter().map(|g| g * g).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales every gradient in place.
    pub fn scale_grads(&mut self, s: f32) {
        for p in &mut self.params {
            p.grad.scale_assign(s);
        }
    }

    pub(crate) fn adam_state_mut(
        &mut self,
        id: ParamId,
    ) -> (&mut Tensor, &mut Tensor, &mut Tensor, &Tensor, bool) {
        let p = &mut self.params[id.0];
        (&mut p.value, &mut p.m, &mut p.v, &p.grad, p.decay)
    }

    /// Iterator over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Handle for the parameter registered at position `idx`.
    ///
    /// Modules register their parameters contiguously, so a `(start, end)`
    /// index range identifies a module's weights across stores built with
    /// the same construction order (used to transfer pre-trained encoder
    /// weights into fine-tuning stores).
    pub fn param_id_at(&self, idx: usize) -> ParamId {
        assert!(idx < self.params.len(), "param index {idx} out of range");
        ParamId(idx)
    }

    /// Serialises all weights into a flat buffer (checkpointing).
    pub fn to_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_weights());
        for p in &self.params {
            out.extend_from_slice(p.value.as_slice());
        }
        out
    }

    /// Restores all weights from a flat buffer produced by [`Self::to_flat`].
    ///
    /// # Panics
    /// Panics if the buffer length does not match the current layout.
    pub fn load_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.num_weights(), "checkpoint size mismatch");
        let mut offset = 0;
        for p in &mut self.params {
            let n = p.value.len();
            p.value.as_mut_slice().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn add_and_lookup_roundtrip() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        assert_eq!(s.value(id).get(1, 1), 4.0);
        assert_eq!(s.name(id), "w");
        assert_eq!(s.num_weights(), 4);
    }

    #[test]
    fn xavier_bound_is_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut s = ParamStore::new();
        let id = s.add_xavier("w", 10, 10, &mut rng);
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(s.value(id).as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn zero_grads_clears_accumulation() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::zeros(1, 3));
        s.grad_mut(id).as_mut_slice()[0] = 5.0;
        assert_eq!(s.grad_norm(), 5.0);
        s.zero_grads();
        assert_eq!(s.grad_norm(), 0.0);
    }

    #[test]
    fn flat_roundtrip_restores_weights() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut s = ParamStore::new();
        s.add_xavier("a", 3, 4, &mut rng);
        s.add_xavier("b", 2, 2, &mut rng);
        let snapshot = s.to_flat();
        let before = s.to_flat();
        for id in s.ids().collect::<Vec<_>>() {
            s.value_mut(id).scale_assign(0.0);
        }
        s.load_flat(&snapshot);
        assert_eq!(s.to_flat(), before);
    }

    #[test]
    fn bias_params_skip_decay() {
        let mut s = ParamStore::new();
        let b = s.add_zeros("b", 1, 4);
        assert!(!s.decays(b));
        let w = s.add("w", Tensor::zeros(2, 2));
        assert!(s.decays(w));
    }
}
