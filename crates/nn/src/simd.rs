//! Explicit SIMD kernels with runtime dispatch.
//!
//! Every kernel in this module comes in (at least) two arms: a portable
//! 8-lane-unrolled scalar fallback and an x86_64 AVX2 arm built on
//! `std::arch` intrinsics (aarch64 NEON where noted). The arms are
//! **bitwise equivalent** for f32 inputs: the AVX2 code uses separate
//! multiply + add (never FMA, which fuses the rounding step) and reduces
//! its 8 lane accumulators in exactly the same tree order as the scalar
//! fallback (`half[l] = acc[l] + acc[l+4]`, then
//! `(half0+half1) + (half2+half3)`, then `+ tail`). Integer (i8/i32)
//! kernels are exact, so their arms agree trivially.
//!
//! Dispatch is decided once per process by [`tier`] (runtime
//! `is_x86_feature_detected!`, overridable via the `EXPLAINTI_NO_SIMD`
//! environment variable or [`force_tier`] in tests/benches) and cached in
//! an atomic. Under miri the scalar arm is always selected because miri
//! does not model vendor intrinsics.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel arm runtime dispatch selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdTier {
    /// x86_64 AVX2 256-bit arm (8 × f32 lanes).
    Avx2,
    /// aarch64 NEON 128-bit arm (2 × 4 f32 lanes).
    Neon,
    /// Portable 8-lane-unrolled scalar fallback.
    Scalar,
}

impl SimdTier {
    /// Stable lower-case name for metrics / bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Avx2 => "avx2",
            SimdTier::Neon => "neon",
            SimdTier::Scalar => "scalar",
        }
    }
}

const TIER_UNSET: u8 = 0;
const TIER_AVX2: u8 = 1;
const TIER_NEON: u8 = 2;
const TIER_SCALAR: u8 = 3;

static TIER: AtomicU8 = AtomicU8::new(TIER_UNSET);

fn detect() -> u8 {
    if cfg!(miri) {
        // Miri cannot interpret vendor intrinsics; always take the
        // portable arm so the unsafe-free fallback is what gets checked.
        return TIER_SCALAR;
    }
    if std::env::var("EXPLAINTI_NO_SIMD").is_ok_and(|v| v == "1") {
        return TIER_SCALAR;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            return TIER_AVX2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return TIER_NEON;
        }
    }
    TIER_SCALAR
}

/// Returns the kernel arm in effect for this process (cached after the
/// first call). Honors `EXPLAINTI_NO_SIMD=1` and [`force_tier`].
pub fn tier() -> SimdTier {
    // ORDERING: Relaxed — the cached tier is a pure function of the
    // environment; racing initialisers compute the same value, so the
    // cell needs atomicity only.
    let mut t = TIER.load(Ordering::Relaxed);
    if t == TIER_UNSET {
        t = detect();
        TIER.store(t, Ordering::Relaxed); // ORDERING: Relaxed — as above
    }
    match t {
        TIER_AVX2 => SimdTier::Avx2,
        TIER_NEON => SimdTier::Neon,
        _ => SimdTier::Scalar,
    }
}

/// Overrides the dispatch tier for the rest of the process. Intended for
/// differential tests and benches; forcing a tier the host cannot execute
/// (e.g. Avx2 on a non-AVX2 machine) is a programmer error and will fault
/// at the first kernel call.
pub fn force_tier(t: SimdTier) {
    let v = match t {
        SimdTier::Avx2 => TIER_AVX2,
        SimdTier::Neon => TIER_NEON,
        SimdTier::Scalar => TIER_SCALAR,
    };
    // ORDERING: Relaxed — see `tier`; the forced value is self-contained.
    TIER.store(v, Ordering::Relaxed);
}

/// Clears any cached/forced tier so the next [`tier`] call re-detects.
pub fn reset_tier() {
    // ORDERING: Relaxed — see `tier`.
    TIER.store(TIER_UNSET, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// f32 dot product: 8-accumulator block with fixed reduction order.
// ---------------------------------------------------------------------------

/// Portable reference dot product: 8 independent lane accumulators over
/// `chunks_exact(8)`, a scalar tail, and the fixed reduction tree
/// `((h0+h1)+(h2+h3)) + tail` where `h[l] = acc[l] + acc[l+4]`.
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (x, y) in (&mut ca).zip(&mut cb) {
        for l in 0..8 {
            acc[l] += x[l] * y[l];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    let half = [acc[0] + acc[4], acc[1] + acc[5], acc[2] + acc[6], acc[3] + acc[7]];
    ((half[0] + half[1]) + (half[2] + half[3])) + tail
}

/// Dot product on the currently dispatched arm. Bitwise equal to
/// [`dot_scalar`] on every arm.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => {
            // SAFETY: tier() only returns Avx2 when is_x86_feature_detected!
            // confirmed AVX2 support at runtime (or a test forced it on an
            // AVX2-capable host).
            unsafe { dot_avx2(a, b) }
        }
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => {
            // SAFETY: tier() only returns Neon when NEON support was
            // detected at runtime.
            unsafe { dot_neon(a, b) }
        }
        _ => dot_scalar(a, b),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure AVX2 is available (dispatch via tier()).
unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = a.len().min(b.len());
    let chunks = n / 8;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    // One 8-lane vector accumulator == the scalar arm's acc[0..8].
    // Separate mul + add (no FMA) keeps each lane's rounding identical to
    // the scalar `acc[l] += x[l] * y[l]`.
    let mut vacc = _mm256_setzero_ps();
    for c in 0..chunks {
        // SAFETY: c < chunks so c*8 + 7 < n <= len of both slices; reads
        // are 32-byte unaligned loads fully inside the slices.
        let vx = unsafe { _mm256_loadu_ps(ap.add(c * 8)) };
        // SAFETY: same bounds argument as vx for slice b.
        let vy = unsafe { _mm256_loadu_ps(bp.add(c * 8)) };
        vacc = _mm256_add_ps(vacc, _mm256_mul_ps(vx, vy));
    }
    // Reduce in the exact scalar tree order:
    //   half[l] = acc[l] + acc[l+4]  -> add low/high 128-bit halves
    let lo = _mm256_castps256_ps128(vacc);
    let hi = _mm256_extractf128_ps::<1>(vacc);
    let h = _mm_add_ps(lo, hi);
    //   (h0+h1, h2+h3, h0+h1, h2+h3) then (h0+h1)+(h2+h3) in lane 0.
    let p = _mm_hadd_ps(h, h);
    let s = _mm_hadd_ps(p, p);
    let mut sum = _mm_cvtss_f32(s);
    let mut tail = 0.0f32;
    for i in chunks * 8..n {
        // SAFETY: i < n <= len of both slices.
        tail += unsafe { *ap.add(i) * *bp.add(i) };
    }
    sum += tail;
    sum
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
// SAFETY: caller must ensure NEON is available (dispatch via tier()).
unsafe fn dot_neon(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::aarch64::*;
    let n = a.len().min(b.len());
    let chunks = n / 8;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    // Two 4-lane accumulators == scalar acc[0..4] and acc[4..8].
    let mut acc_lo = vdupq_n_f32(0.0);
    let mut acc_hi = vdupq_n_f32(0.0);
    for c in 0..chunks {
        // SAFETY: c < chunks so c*8 + 7 < n; all loads in bounds.
        let x0 = unsafe { vld1q_f32(ap.add(c * 8)) };
        // SAFETY: as above.
        let x1 = unsafe { vld1q_f32(ap.add(c * 8 + 4)) };
        // SAFETY: as above for slice b.
        let y0 = unsafe { vld1q_f32(bp.add(c * 8)) };
        // SAFETY: as above for slice b.
        let y1 = unsafe { vld1q_f32(bp.add(c * 8 + 4)) };
        // Separate mul + add (vmulq/vaddq, not vfmaq) to match scalar
        // rounding per lane.
        acc_lo = vaddq_f32(acc_lo, vmulq_f32(x0, y0));
        acc_hi = vaddq_f32(acc_hi, vmulq_f32(x1, y1));
    }
    // half[l] = acc[l] + acc[l+4]
    let half = vaddq_f32(acc_lo, acc_hi);
    // vpaddq pairs: (h0+h1, h2+h3, h0+h1, h2+h3); second pass gives
    // (h0+h1)+(h2+h3) — the scalar tree order.
    let p = vpaddq_f32(half, half);
    let s = vpaddq_f32(p, p);
    let mut sum = vgetq_lane_f32::<0>(s);
    let mut tail = 0.0f32;
    for i in chunks * 8..n {
        // SAFETY: i < n <= len of both slices.
        tail += unsafe { *ap.add(i) * *bp.add(i) };
    }
    sum += tail;
    sum
}

// ---------------------------------------------------------------------------
// Row-block kernel: one A row against NR packed B^T rows at a time.
// ---------------------------------------------------------------------------

/// Computes `out[j] = dot(a_row, bt_rows(j))` for `j in 0..nj`, where
/// `bt` is the packed B^T matrix with rows of length `k` (row `j` starts
/// at `bt[j*k]`). Each output element's value is bitwise equal to
/// [`dot_scalar`] on every arm; the AVX2 arm blocks 4 output columns per
/// pass so the A row is loaded once per chunk (register-level reuse).
pub fn row_times_rows(a_row: &[f32], bt: &[f32], k: usize, out: &mut [f32]) {
    debug_assert_eq!(a_row.len(), k);
    debug_assert_eq!(bt.len(), k * out.len());
    match tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => {
            // SAFETY: tier() returned Avx2 only after runtime detection of
            // AVX2 (or a forced tier on a capable host).
            unsafe { row_times_rows_avx2(a_row, bt, k, out) }
        }
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => {
            for (j, out_v) in out.iter_mut().enumerate() {
                // SAFETY: tier() returned Neon only after runtime detection.
                *out_v = unsafe { dot_neon(a_row, &bt[j * k..j * k + k]) };
            }
        }
        _ => {
            for (j, out_v) in out.iter_mut().enumerate() {
                *out_v = dot_scalar(a_row, &bt[j * k..j * k + k]);
            }
        }
    }
}

/// Two A-rows against the same packed panel in one pass: the panel
/// streams through cache once for two output rows. Every (row, column)
/// accumulation chain is identical to [`row_times_rows`]'s — pairing
/// changes memory traffic, never bits.
pub fn rows2_times_rows(
    a0: &[f32],
    a1: &[f32],
    bt: &[f32],
    k: usize,
    out0: &mut [f32],
    out1: &mut [f32],
) {
    debug_assert_eq!(a0.len(), k);
    debug_assert_eq!(a1.len(), k);
    debug_assert_eq!(out0.len(), out1.len());
    match tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => {
            // SAFETY: tier() returned Avx2 only after runtime detection of
            // AVX2 (or a forced tier on a capable host).
            unsafe { rows2_times_rows_avx2(a0, a1, bt, k, out0, out1) }
        }
        _ => {
            row_times_rows(a0, bt, k, out0);
            row_times_rows(a1, bt, k, out1);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure AVX2 is available and bt holds out0.len() rows of k elements.
unsafe fn rows2_times_rows_avx2(
    a0: &[f32],
    a1: &[f32],
    bt: &[f32],
    k: usize,
    out0: &mut [f32],
    out1: &mut [f32],
) {
    use std::arch::x86_64::*;
    let nj = out0.len();
    let chunks = k / 8;
    let a0p = a0.as_ptr();
    let a1p = a1.as_ptr();
    let btp = bt.as_ptr();
    let mut j = 0;
    // 2-row × 4-column register blocking: each B chunk is loaded once and
    // feeds both rows' accumulators (8 accs + 2 A vectors + 1 B temp fit
    // the 16 ymm registers). Per-(row, column) chains match dot_avx2, so
    // the bits equal the unpaired kernel's.
    while j + 4 <= nj {
        let bases =
            [btp.add(j * k), btp.add((j + 1) * k), btp.add((j + 2) * k), btp.add((j + 3) * k)];
        let mut acc0 = [_mm256_setzero_ps(); 4];
        let mut acc1 = [_mm256_setzero_ps(); 4];
        for c in 0..chunks {
            let off = c * 8;
            // SAFETY: off + 7 < k (c < chunks = k/8); a0/a1 have len k.
            let va0 = unsafe { _mm256_loadu_ps(a0p.add(off)) };
            // SAFETY: as above.
            let va1 = unsafe { _mm256_loadu_ps(a1p.add(off)) };
            for (l, &base) in bases.iter().enumerate() {
                // SAFETY: rows j..j+4 exist (j+4 <= nj) and each has k
                // elements in bt, so every load stays inside bt.
                let w = unsafe { _mm256_loadu_ps(base.add(off)) };
                acc0[l] = _mm256_add_ps(acc0[l], _mm256_mul_ps(va0, w));
                acc1[l] = _mm256_add_ps(acc1[l], _mm256_mul_ps(va1, w));
            }
        }
        let tail_start = chunks * 8;
        for (l, &base) in bases.iter().enumerate() {
            // SAFETY: reduction + scalar tail reads stay inside a0/a1
            // (len k) and row j+l of bt as argued above.
            out0[j + l] = unsafe { finish_avx2(acc0[l], a0p, base, tail_start, k) };
            // SAFETY: as above.
            out1[j + l] = unsafe { finish_avx2(acc1[l], a1p, base, tail_start, k) };
        }
        j += 4;
    }
    while j < nj {
        // SAFETY: row j exists and has k elements; AVX2 is enabled in
        // this target_feature context.
        let b_row = unsafe { std::slice::from_raw_parts(btp.add(j * k), k) };
        // SAFETY: as above.
        out0[j] = unsafe { dot_avx2(a0, b_row) };
        // SAFETY: as above.
        out1[j] = unsafe { dot_avx2(a1, b_row) };
        j += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure AVX2 is available and bt holds out.len() rows of k elements.
unsafe fn row_times_rows_avx2(a_row: &[f32], bt: &[f32], k: usize, out: &mut [f32]) {
    use std::arch::x86_64::*;
    let nj = out.len();
    let chunks = k / 8;
    let ap = a_row.as_ptr();
    let btp = bt.as_ptr();
    let mut j = 0;
    // 8-then-4-column register blocking: independent vector accumulators
    // per column, the A-row chunk loaded once and reused. Each column's
    // accumulation chain is element-for-element the same as dot_avx2 /
    // dot_scalar, so blocking changes speed, not bits. Eight parallel
    // chains fully hide the vaddps latency; 8 accs + va + a temp stay
    // within the 16 ymm registers.
    while j + 8 <= nj {
        let bases = [
            btp.add(j * k),
            btp.add((j + 1) * k),
            btp.add((j + 2) * k),
            btp.add((j + 3) * k),
            btp.add((j + 4) * k),
            btp.add((j + 5) * k),
            btp.add((j + 6) * k),
            btp.add((j + 7) * k),
        ];
        let mut acc = [_mm256_setzero_ps(); 8];
        for c in 0..chunks {
            let off = c * 8;
            // SAFETY: off + 7 < k (c < chunks = k/8); a_row has len k.
            let va = unsafe { _mm256_loadu_ps(ap.add(off)) };
            for (l, &base) in bases.iter().enumerate() {
                // SAFETY: rows j..j+8 exist (j+8 <= nj) and each has k
                // elements in bt, so every load stays inside bt.
                let w = unsafe { _mm256_loadu_ps(base.add(off)) };
                acc[l] = _mm256_add_ps(acc[l], _mm256_mul_ps(va, w));
            }
        }
        let tail_start = chunks * 8;
        for (l, &base) in bases.iter().enumerate() {
            // SAFETY: reduction + scalar tail reads stay inside a_row
            // (len k) and row j+l of bt as argued above.
            out[j + l] = unsafe { finish_avx2(acc[l], ap, base, tail_start, k) };
        }
        j += 8;
    }
    while j + 4 <= nj {
        let b0 = btp.add(j * k);
        let b1 = btp.add((j + 1) * k);
        let b2 = btp.add((j + 2) * k);
        let b3 = btp.add((j + 3) * k);
        let mut v0 = _mm256_setzero_ps();
        let mut v1 = _mm256_setzero_ps();
        let mut v2 = _mm256_setzero_ps();
        let mut v3 = _mm256_setzero_ps();
        for c in 0..chunks {
            let off = c * 8;
            // SAFETY: off + 7 < k (c < chunks = k/8); a_row has len k.
            let va = unsafe { _mm256_loadu_ps(ap.add(off)) };
            // SAFETY: rows j..j+4 exist (j+4 <= nj) and each has k
            // elements in bt, so every load below is inside bt.
            let w0 = unsafe { _mm256_loadu_ps(b0.add(off)) };
            // SAFETY: as above.
            let w1 = unsafe { _mm256_loadu_ps(b1.add(off)) };
            // SAFETY: as above.
            let w2 = unsafe { _mm256_loadu_ps(b2.add(off)) };
            // SAFETY: as above.
            let w3 = unsafe { _mm256_loadu_ps(b3.add(off)) };
            v0 = _mm256_add_ps(v0, _mm256_mul_ps(va, w0));
            v1 = _mm256_add_ps(v1, _mm256_mul_ps(va, w1));
            v2 = _mm256_add_ps(v2, _mm256_mul_ps(va, w2));
            v3 = _mm256_add_ps(v3, _mm256_mul_ps(va, w3));
        }
        let tail_start = chunks * 8;
        // SAFETY: reduction + scalar tail reads stay inside a_row (len
        // k) and row j of bt as argued above.
        out[j] = unsafe { finish_avx2(v0, ap, b0, tail_start, k) };
        // SAFETY: as above, for row j+1.
        out[j + 1] = unsafe { finish_avx2(v1, ap, b1, tail_start, k) };
        // SAFETY: as above, for row j+2.
        out[j + 2] = unsafe { finish_avx2(v2, ap, b2, tail_start, k) };
        // SAFETY: as above, for row j+3.
        out[j + 3] = unsafe { finish_avx2(v3, ap, b3, tail_start, k) };
        j += 4;
    }
    while j < nj {
        // SAFETY: row j exists and has k elements; AVX2 is enabled in this
        // target_feature context.
        out[j] = unsafe { dot_avx2(a_row, std::slice::from_raw_parts(btp.add(j * k), k)) };
        j += 1;
    }
}

/// Reduces one accumulator vector in scalar tree order and adds the
/// scalar tail `sum(a[i]*b[i] for i in tail_start..k)`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure AVX2 is available and ap/bp point to k readable f32s.
unsafe fn finish_avx2(
    vacc: std::arch::x86_64::__m256,
    ap: *const f32,
    bp: *const f32,
    tail_start: usize,
    k: usize,
) -> f32 {
    use std::arch::x86_64::*;
    let lo = _mm256_castps256_ps128(vacc);
    let hi = _mm256_extractf128_ps::<1>(vacc);
    let h = _mm_add_ps(lo, hi);
    let p = _mm_hadd_ps(h, h);
    let s = _mm_hadd_ps(p, p);
    let mut sum = _mm_cvtss_f32(s);
    let mut tail = 0.0f32;
    for i in tail_start..k {
        // SAFETY: caller guarantees ap and bp point to buffers with at
        // least k readable f32 elements.
        tail += unsafe { *ap.add(i) * *bp.add(i) };
    }
    sum += tail;
    sum
}

// ---------------------------------------------------------------------------
// axpy sweep: out[j] += a * row[j]  (matmul_tn inner loop)
// ---------------------------------------------------------------------------

/// `out[j] += a * row[j]` for all j. Each `out[j]` has an independent
/// chain across successive calls, so the vector arm is lanewise bitwise
/// equal to the scalar one (separate mul + add, no FMA).
#[inline]
pub fn axpy(a: f32, row: &[f32], out: &mut [f32]) {
    debug_assert_eq!(row.len(), out.len());
    match tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => {
            // SAFETY: tier() returned Avx2 only after runtime detection.
            unsafe { axpy_avx2(a, row, out) }
        }
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => {
            // SAFETY: tier() returned Neon only after runtime detection.
            unsafe { axpy_neon(a, row, out) }
        }
        _ => axpy_scalar(a, row, out),
    }
}

/// Portable reference arm for [`axpy`].
pub fn axpy_scalar(a: f32, row: &[f32], out: &mut [f32]) {
    for (o, r) in out.iter_mut().zip(row) {
        *o += a * r;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure AVX2 is available (dispatch via tier()).
unsafe fn axpy_avx2(a: f32, row: &[f32], out: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = row.len().min(out.len());
    let chunks = n / 8;
    let rp = row.as_ptr();
    let op = out.as_mut_ptr();
    let va = _mm256_set1_ps(a);
    for c in 0..chunks {
        let off = c * 8;
        // SAFETY: off + 7 < n <= lengths of row and out; loads/stores are
        // unaligned and fully in bounds; rp and op never alias (&/&mut).
        unsafe {
            let vr = _mm256_loadu_ps(rp.add(off));
            let vo = _mm256_loadu_ps(op.add(off));
            _mm256_storeu_ps(op.add(off), _mm256_add_ps(vo, _mm256_mul_ps(va, vr)));
        }
    }
    for i in chunks * 8..n {
        // SAFETY: i < n <= lengths of row and out.
        unsafe { *op.add(i) += a * *rp.add(i) };
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
// SAFETY: caller must ensure NEON is available (dispatch via tier()).
unsafe fn axpy_neon(a: f32, row: &[f32], out: &mut [f32]) {
    use std::arch::aarch64::*;
    let n = row.len().min(out.len());
    let chunks = n / 4;
    let rp = row.as_ptr();
    let op = out.as_mut_ptr();
    let va = vdupq_n_f32(a);
    for c in 0..chunks {
        let off = c * 4;
        // SAFETY: off + 3 < n <= lengths of row and out; rp/op don't alias.
        unsafe {
            let vr = vld1q_f32(rp.add(off));
            let vo = vld1q_f32(op.add(off));
            vst1q_f32(op.add(off), vaddq_f32(vo, vmulq_f32(va, vr)));
        }
    }
    for i in chunks * 4..n {
        // SAFETY: i < n <= lengths of row and out.
        unsafe { *op.add(i) += a * *rp.add(i) };
    }
}

// ---------------------------------------------------------------------------
// Cosine similarity (GE scoring hot path).
// ---------------------------------------------------------------------------

/// Portable reference arm for [`cosine`]: three parallel 8-lane
/// accumulator sets (dot, |a|², |b|²) reduced in the fixed tree order,
/// then `dot / (sqrt(na)*sqrt(nb))` with a zero-denominator guard.
pub fn cosine_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut dacc = [0.0f32; 8];
    let mut aacc = [0.0f32; 8];
    let mut bacc = [0.0f32; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (x, y) in (&mut ca).zip(&mut cb) {
        for l in 0..8 {
            dacc[l] += x[l] * y[l];
            aacc[l] += x[l] * x[l];
            bacc[l] += y[l] * y[l];
        }
    }
    let (mut dt, mut at, mut bt) = (0.0f32, 0.0f32, 0.0f32);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        dt += x * y;
        at += x * x;
        bt += y * y;
    }
    let dot = fold8(&dacc) + dt;
    let na = fold8(&aacc) + at;
    let nb = fold8(&bacc) + bt;
    let denom = na.sqrt() * nb.sqrt();
    if denom <= f32::EPSILON {
        0.0
    } else {
        dot / denom
    }
}

fn fold8(acc: &[f32; 8]) -> f32 {
    let half = [acc[0] + acc[4], acc[1] + acc[5], acc[2] + acc[6], acc[3] + acc[7]];
    (half[0] + half[1]) + (half[2] + half[3])
}

/// Cosine similarity on the dispatched arm; bitwise equal to
/// [`cosine_scalar`] on every arm.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    match tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => {
            // SAFETY: tier() returned Avx2 only after runtime detection.
            unsafe { cosine_avx2(a, b) }
        }
        _ => cosine_scalar(a, b),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure AVX2 is available (dispatch via tier()).
unsafe fn cosine_avx2(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = a.len().min(b.len());
    let chunks = n / 8;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut vd = _mm256_setzero_ps();
    let mut vna = _mm256_setzero_ps();
    let mut vnb = _mm256_setzero_ps();
    for c in 0..chunks {
        // SAFETY: c*8 + 7 < n <= len of both slices.
        let vx = unsafe { _mm256_loadu_ps(ap.add(c * 8)) };
        // SAFETY: as above for b.
        let vy = unsafe { _mm256_loadu_ps(bp.add(c * 8)) };
        vd = _mm256_add_ps(vd, _mm256_mul_ps(vx, vy));
        vna = _mm256_add_ps(vna, _mm256_mul_ps(vx, vx));
        vnb = _mm256_add_ps(vnb, _mm256_mul_ps(vy, vy));
    }
    // Tail sums are accumulated separately and added once, matching the
    // scalar arm's `fold8(acc) + tail` order exactly.
    let (mut dt, mut at, mut bt) = (0.0f32, 0.0f32, 0.0f32);
    for i in chunks * 8..n {
        // SAFETY: i < n <= len of both slices.
        let (x, y) = unsafe { (*ap.add(i), *bp.add(i)) };
        dt += x * y;
        at += x * x;
        bt += y * y;
    }
    // SAFETY: pure register reduction, no memory access.
    let dot = unsafe { reduce8_avx2(vd) } + dt;
    // SAFETY: pure register reduction, no memory access.
    let na = unsafe { reduce8_avx2(vna) } + at;
    // SAFETY: pure register reduction, no memory access.
    let nb = unsafe { reduce8_avx2(vnb) } + bt;
    let denom = na.sqrt() * nb.sqrt();
    if denom <= f32::EPSILON {
        0.0
    } else {
        dot / denom
    }
}

/// Scalar-tree-order horizontal reduction of one 8-lane accumulator.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure AVX2 is available; pure register math.
unsafe fn reduce8_avx2(vacc: std::arch::x86_64::__m256) -> f32 {
    use std::arch::x86_64::*;
    let lo = _mm256_castps256_ps128(vacc);
    let hi = _mm256_extractf128_ps::<1>(vacc);
    let h = _mm_add_ps(lo, hi);
    let p = _mm_hadd_ps(h, h);
    let s = _mm_hadd_ps(p, p);
    _mm_cvtss_f32(s)
}

// ---------------------------------------------------------------------------
// int8 dot product (quantized path). Integer math is exact, so the arms
// are identical by construction.
// ---------------------------------------------------------------------------

/// Portable reference arm for [`dot_i8`]: plain i32 accumulation.
pub fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    let mut acc = 0i32;
    for (x, y) in a.iter().zip(b) {
        acc += (*x as i32) * (*y as i32);
    }
    acc
}

/// i8×i8 → i32 dot product on the dispatched arm. Exact (integer), so
/// identical to [`dot_i8_scalar`] on every arm.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    match tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => {
            // SAFETY: tier() returned Avx2 only after runtime detection.
            unsafe { dot_i8_avx2(a, b) }
        }
        _ => dot_i8_scalar(a, b),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure AVX2 is available (dispatch via tier()).
unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    let n = a.len().min(b.len());
    let chunks = n / 16;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut vacc = _mm256_setzero_si256();
    for c in 0..chunks {
        // SAFETY: c*16 + 15 < n <= len of both slices; 128-bit unaligned
        // loads fully inside the i8 slices.
        let vx = unsafe { _mm_loadu_si128(ap.add(c * 16) as *const __m128i) };
        // SAFETY: as above for b.
        let vy = unsafe { _mm_loadu_si128(bp.add(c * 16) as *const __m128i) };
        // Widen i8 -> i16 (exact), multiply pairwise and add adjacent
        // pairs into i32 lanes (madd: exact, |i8*i8| <= 16129 so the i16
        // products never overflow and pair sums fit i32).
        let wx = _mm256_cvtepi8_epi16(vx);
        let wy = _mm256_cvtepi8_epi16(vy);
        vacc = _mm256_add_epi32(vacc, _mm256_madd_epi16(wx, wy));
    }
    // Horizontal i32 sum (order irrelevant: integer addition is exact
    // and commutative).
    let lo = _mm256_castsi256_si128(vacc);
    let hi = _mm256_extracti128_si256::<1>(vacc);
    let s = _mm_add_epi32(lo, hi);
    let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b01_00_11_10>(s));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b00_00_00_01>(s));
    let mut sum = _mm_cvtsi128_si32(s);
    for i in chunks * 16..n {
        // SAFETY: i < n <= len of both slices.
        sum += unsafe { (*ap.add(i) as i32) * (*bp.add(i) as i32) };
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..n).map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.37).collect();
        let b: Vec<f32> = (0..n).map(|i| ((i * 53 % 23) as f32 - 11.0) * 0.21).collect();
        (a, b)
    }

    #[test]
    fn dispatched_dot_matches_scalar_bitwise() {
        for n in [0, 1, 7, 8, 9, 15, 16, 17, 31, 64, 97] {
            let (a, b) = vecs(n);
            assert_eq!(dot(&a, &b).to_bits(), dot_scalar(&a, &b).to_bits(), "n={n}");
        }
    }

    #[test]
    fn dispatched_cosine_matches_scalar_bitwise() {
        for n in [0, 1, 7, 8, 13, 32, 100] {
            let (a, b) = vecs(n);
            assert_eq!(cosine(&a, &b).to_bits(), cosine_scalar(&a, &b).to_bits(), "n={n}");
        }
    }

    #[test]
    fn dispatched_axpy_matches_scalar_bitwise() {
        for n in [0, 1, 7, 8, 9, 33] {
            let (r, _) = vecs(n);
            let mut o1 = vec![0.5f32; n];
            let mut o2 = o1.clone();
            axpy(1.7, &r, &mut o1);
            axpy_scalar(1.7, &r, &mut o2);
            for (x, y) in o1.iter().zip(&o2) {
                assert_eq!(x.to_bits(), y.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn dispatched_dot_i8_matches_scalar() {
        for n in [0, 1, 15, 16, 17, 64, 127] {
            let a: Vec<i8> = (0..n).map(|i| (i * 31 % 255 - 127) as i8).collect();
            let b: Vec<i8> = (0..n).map(|i| (i * 97 % 255 - 127) as i8).collect();
            assert_eq!(dot_i8(&a, &b), dot_i8_scalar(&a, &b), "n={n}");
        }
    }

    #[test]
    fn row_times_rows_matches_scalar_bitwise() {
        for (k, nj) in [(1, 1), (7, 3), (8, 4), (13, 5), (32, 9), (67, 11)] {
            let (a, _) = vecs(k);
            let bt: Vec<f32> = (0..k * nj).map(|i| ((i * 41 % 29) as f32 - 14.0) * 0.13).collect();
            let mut out = vec![0.0f32; nj];
            row_times_rows(&a, &bt, k, &mut out);
            for j in 0..nj {
                let want = dot_scalar(&a, &bt[j * k..j * k + k]);
                assert_eq!(out[j].to_bits(), want.to_bits(), "k={k} j={j}");
            }
        }
    }
}
