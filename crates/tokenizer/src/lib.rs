//! # explainti-tokenizer
//!
//! Vocabulary construction and tokenisation for table serialisations.
//!
//! The paper feeds serialised tables to BERT/RoBERTa tokenizers; this crate
//! provides the equivalent for the from-scratch encoder: lower-casing and
//! punctuation-aware word splitting, frequency-based vocabulary building,
//! and a greedy longest-prefix subword fallback (WordPiece-style) so that
//! unseen cell values still map to informative pieces instead of `[UNK]`.
//!
//! Special tokens mirror the paper's serialisation of Section II-B:
//! `[CLS] Title p Header h Cell v… [SEP]`, with `Title`/`Header`/`Cell`
//! represented by dedicated marker tokens.

#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Integer token identifier.
pub type TokenId = usize;

/// Padding token id.
pub const PAD: TokenId = 0;
/// Unknown token id.
pub const UNK: TokenId = 1;
/// Classification token id (sequence start, `E_[CLS]` source).
pub const CLS: TokenId = 2;
/// Separator token id.
pub const SEP: TokenId = 3;
/// Mask token id (used by masked-token pre-training).
pub const MASK: TokenId = 4;
/// Marker preceding a table title.
pub const TITLE: TokenId = 5;
/// Marker preceding a column header.
pub const HEADER: TokenId = 6;
/// Marker preceding the cell values.
pub const CELL: TokenId = 7;

const SPECIALS: [&str; 8] =
    ["[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]", "[TITLE]", "[HEADER]", "[CELL]"];

/// Splits text into lower-cased word tokens; digits are kept per-character
/// so numeric cells share structure across values.
pub fn normalize(text: &str) -> Vec<String> {
    let mut words = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            if ch.is_ascii_digit() {
                if !current.is_empty() {
                    words.push(std::mem::take(&mut current));
                }
                words.push(ch.to_string());
            } else {
                current.extend(ch.to_lowercase());
            }
        } else if !current.is_empty() {
            words.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        words.push(current);
    }
    words
}

/// A trained vocabulary with subword fallback.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    token_to_id: HashMap<String, TokenId>,
    id_to_token: Vec<String>,
    max_piece_len: usize,
}

impl Tokenizer {
    /// Builds a vocabulary from an iterator of corpus texts.
    ///
    /// Keeps the `max_vocab` most frequent words (ties broken
    /// lexicographically for determinism) plus every single character seen,
    /// which guarantees the greedy subword segmenter terminates without
    /// `[UNK]` for any word made of seen characters.
    pub fn train<'a, I: IntoIterator<Item = &'a str>>(texts: I, max_vocab: usize) -> Self {
        // BTreeMaps so iteration (and therefore vocabulary ids) is
        // deterministic across runs — the analyzer's EA001 check rejects
        // hash-order iteration on this path.
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        let mut chars: BTreeSet<String> = BTreeSet::new();
        for text in texts {
            for w in normalize(text) {
                for ch in w.chars() {
                    chars.insert(ch.to_string());
                }
                *counts.entry(w).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(String, u64)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

        let mut id_to_token: Vec<String> = SPECIALS.iter().map(|s| s.to_string()).collect();
        let mut token_to_id: HashMap<String, TokenId> =
            id_to_token.iter().enumerate().map(|(i, t)| (t.clone(), i)).collect();

        let push = |tok: String, t2i: &mut HashMap<String, TokenId>, i2t: &mut Vec<String>| {
            if !t2i.contains_key(&tok) {
                t2i.insert(tok.clone(), i2t.len());
                i2t.push(tok);
            }
        };

        // Characters first: they are the safety net for the segmenter.
        for ch in chars {
            push(ch, &mut token_to_id, &mut id_to_token);
        }
        for (tok, _) in ranked {
            if id_to_token.len() >= max_vocab {
                break;
            }
            push(tok, &mut token_to_id, &mut id_to_token);
        }
        let max_piece_len = id_to_token.iter().map(|t| t.chars().count()).max().unwrap_or(1);
        Self { token_to_id, id_to_token, max_piece_len }
    }

    /// Vocabulary size, including special tokens.
    pub fn vocab_size(&self) -> usize {
        self.id_to_token.len()
    }

    /// Looks up the text of a token id (for rendering explanations).
    pub fn token(&self, id: TokenId) -> &str {
        self.id_to_token.get(id).map(String::as_str).unwrap_or("[UNK]")
    }

    /// Looks up the id of an exact token string.
    pub fn id(&self, token: &str) -> Option<TokenId> {
        self.token_to_id.get(token).copied()
    }

    /// Segments one normalised word into vocabulary pieces using greedy
    /// longest-prefix matching; unmatched characters become `[UNK]`.
    pub fn encode_word(&self, word: &str) -> Vec<TokenId> {
        if let Some(&id) = self.token_to_id.get(word) {
            return vec![id];
        }
        let chars: Vec<char> = word.chars().collect();
        let mut out = Vec::new();
        let mut start = 0;
        while start < chars.len() {
            let mut matched = None;
            let longest = (chars.len() - start).min(self.max_piece_len);
            for len in (1..=longest).rev() {
                let piece: String = chars[start..start + len].iter().collect();
                if let Some(&id) = self.token_to_id.get(&piece) {
                    matched = Some((id, len));
                    break;
                }
            }
            match matched {
                Some((id, len)) => {
                    out.push(id);
                    start += len;
                }
                None => {
                    out.push(UNK);
                    start += 1;
                }
            }
        }
        out
    }

    /// Tokenises arbitrary text into ids (no special tokens added).
    pub fn tokenize(&self, text: &str) -> Vec<TokenId> {
        normalize(text).iter().flat_map(|w| self.encode_word(w)).collect()
    }

    /// Renders a window of ids back to text (for human-readable
    /// explanations), skipping padding and the structural marker tokens —
    /// `[TITLE]`/`[HEADER]`/`[CELL]`/`[SEP]` frame the serialisation but
    /// are not explanation content.
    pub fn decode(&self, ids: &[TokenId]) -> String {
        let mut out = String::new();
        for &id in ids {
            if id < SPECIALS.len() {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(self.token(id));
        }
        out
    }
}

/// A fixed-length encoded sequence ready for the encoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Encoded {
    /// Token ids, padded with `[PAD]` to the configured length.
    pub ids: Vec<TokenId>,
    /// Number of non-padding positions.
    pub len: usize,
    /// For sentence pairs: index where the second segment starts;
    /// `None` for single sentences.
    pub second_start: Option<usize>,
}

impl Encoded {
    /// Attention pad mask: `0.0` for real tokens, `-1e9` for padding.
    pub fn pad_mask(&self) -> Vec<f32> {
        (0..self.ids.len()).map(|i| if i < self.len { 0.0 } else { -1e9 }).collect()
    }
}

/// Assembles `[CLS] [TITLE] p [HEADER] h [CELL] v… [SEP]`, truncating the
/// cell tokens to honour `max_len` (the paper truncates at 64 tokens).
pub fn encode_column(
    tok: &Tokenizer,
    title: &str,
    header: &str,
    cells: &[&str],
    max_len: usize,
) -> Encoded {
    assert!(max_len >= 8, "max_len too small for the serialisation frame");
    let mut ids = vec![CLS, TITLE];
    ids.extend(tok.tokenize(title));
    ids.push(HEADER);
    ids.extend(tok.tokenize(header));
    ids.push(CELL);
    for cell in cells {
        if ids.len() + 1 >= max_len {
            break;
        }
        let piece = tok.tokenize(cell);
        let room = max_len.saturating_sub(ids.len() + 1);
        ids.extend(piece.into_iter().take(room));
    }
    ids.truncate(max_len - 1);
    ids.push(SEP);
    let len = ids.len();
    ids.resize(max_len, PAD);
    Encoded { ids, len, second_start: None }
}

/// Assembles the sentence-pair serialisation of Section II-B:
/// `[CLS] …column i… [SEP] …column j… [SEP]`, splitting the budget evenly.
pub fn encode_column_pair(
    tok: &Tokenizer,
    title: &str,
    header_i: &str,
    cells_i: &[&str],
    header_j: &str,
    cells_j: &[&str],
    max_len: usize,
) -> Encoded {
    assert!(max_len >= 16, "pair serialisation needs max_len >= 16 (each segment needs 8)");
    let half = max_len / 2;
    let first = encode_column(tok, title, header_i, cells_i, half);
    let mut ids = first.ids[..first.len].to_vec();
    let second_start = ids.len();

    let mut tail = vec![TITLE];
    tail.extend(tok.tokenize(title));
    tail.push(HEADER);
    tail.extend(tok.tokenize(header_j));
    tail.push(CELL);
    for cell in cells_j {
        if ids.len() + tail.len() + 1 >= max_len {
            break;
        }
        let piece = tok.tokenize(cell);
        let room = max_len.saturating_sub(ids.len() + tail.len() + 1);
        tail.extend(piece.into_iter().take(room));
    }
    ids.extend(tail);
    ids.truncate(max_len - 1);
    ids.push(SEP);
    let len = ids.len();
    ids.resize(max_len, PAD);
    Encoded { ids, len, second_start: Some(second_start) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Tokenizer {
        Tokenizer::train(
            [
                "1990 nba draft",
                "player nba team",
                "Les Jepsen Golden State Warriors",
                "Chicago Bulls",
            ],
            256,
        )
    }

    #[test]
    fn normalize_lowercases_and_splits_digits() {
        assert_eq!(normalize("Chicago-Bulls 42"), vec!["chicago", "bulls", "4", "2"]);
    }

    #[test]
    fn normalize_handles_unicode() {
        assert_eq!(normalize("Zürich"), vec!["zürich"]);
    }

    #[test]
    fn specials_have_fixed_ids() {
        let t = toy();
        assert_eq!(t.id("[PAD]"), Some(PAD));
        assert_eq!(t.id("[CLS]"), Some(CLS));
        assert_eq!(t.id("[CELL]"), Some(CELL));
    }

    #[test]
    fn known_word_round_trips() {
        let t = toy();
        let ids = t.tokenize("nba draft");
        assert_eq!(t.decode(&ids), "nba draft");
    }

    #[test]
    fn unknown_word_falls_back_to_pieces() {
        let t = toy();
        // "nbadraft" is unseen as a word but segmentable from seen pieces.
        let ids = t.encode_word("nbadraft");
        assert!(ids.len() >= 2);
        assert!(ids.iter().all(|&id| id != UNK));
    }

    #[test]
    fn truly_unknown_chars_become_unk() {
        let t = toy();
        let ids = t.encode_word("Ω");
        assert_eq!(ids, vec![UNK]);
    }

    #[test]
    fn encode_column_layout() {
        let t = toy();
        let e = encode_column(&t, "1990 nba draft", "player", &["Les Jepsen"], 32);
        assert_eq!(e.ids[0], CLS);
        assert_eq!(e.ids[e.len - 1], SEP);
        assert_eq!(e.ids.len(), 32);
        assert!(e.ids[e.len..].iter().all(|&i| i == PAD));
        let text = t.decode(&e.ids[..e.len]);
        assert!(text.contains("player"));
        assert!(text.contains("jepsen"));
    }

    #[test]
    fn encode_column_respects_max_len() {
        let t = toy();
        let cells: Vec<&str> = vec!["Golden State Warriors"; 50];
        let e = encode_column(&t, "1990 nba draft", "player", &cells, 16);
        assert_eq!(e.ids.len(), 16);
        assert!(e.len <= 16);
        assert_eq!(e.ids[e.len - 1], SEP);
    }

    #[test]
    fn encode_pair_has_two_segments() {
        let t = toy();
        let e = encode_column_pair(
            &t,
            "1990 nba draft",
            "player",
            &["Les Jepsen"],
            "nba team",
            &["Golden State Warriors"],
            40,
        );
        let second = e.second_start.unwrap();
        assert!(second > 0 && second < e.len);
        assert_eq!(e.ids[0], CLS);
        // Exactly two separators.
        let seps = e.ids[..e.len].iter().filter(|&&i| i == SEP).count();
        assert_eq!(seps, 2);
    }

    #[test]
    fn pad_mask_matches_length() {
        let t = toy();
        let e = encode_column(&t, "t", "h", &["v"], 12);
        let m = e.pad_mask();
        assert_eq!(m.len(), 12);
        assert!(m[..e.len].iter().all(|&v| v == 0.0));
        assert!(m[e.len..].iter().all(|&v| v < -1e8));
    }

    #[test]
    fn vocab_is_deterministic() {
        let a = toy();
        let b = toy();
        assert_eq!(a.vocab_size(), b.vocab_size());
        for i in 0..a.vocab_size() {
            assert_eq!(a.token(i), b.token(i));
        }
    }

    #[test]
    fn vocab_cap_is_respected() {
        let texts: Vec<String> = (0..500).map(|i| format!("word{i}")).collect();
        let t = Tokenizer::train(texts.iter().map(String::as_str), 64);
        // Characters and specials always enter; word additions stop at cap.
        assert!(t.vocab_size() <= 64 + 48);
    }

    // ---- Hostile-input robustness: degrade, never panic ---------------

    #[test]
    fn nuls_and_control_chars_normalize_without_panic() {
        // NUL and control characters are not alphanumeric, so they act
        // as separators; nothing may panic or leak into a token.
        assert_eq!(normalize("a\0b"), vec!["a", "b"]);
        assert_eq!(normalize("\0\u{1}\u{7f}"), Vec::<String>::new());
        let t = toy();
        let enc = encode_column(&t, "ti\0tle", "hea\0der", &["ce\0ll", "\0"], 32);
        assert!(enc.len <= 32);
        assert!(enc.ids.iter().all(|&id| id < t.vocab_size()));
    }

    #[test]
    fn replacement_chars_and_wide_unicode_tokenize() {
        let t = toy();
        // U+FFFD (lossy-UTF-8 output), CJK, emoji, RTL text: unknown
        // characters fall back to subword/char segmentation, never panic.
        for text in ["\u{fffd}\u{fffd}", "東京タワー", "🦀🦀🦀", "مرحبا", "a\u{0301}"]
        {
            let ids = t.tokenize(text);
            assert!(ids.iter().all(|&id| id < t.vocab_size()), "{text}");
        }
    }

    #[test]
    fn pathologically_wide_input_is_truncated_not_panicking() {
        let t = toy();
        let cells: Vec<String> = (0..10_000).map(|i| format!("cell{i}")).collect();
        let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
        let enc = encode_column(&t, "wide", "header", &refs, 64);
        assert_eq!(enc.ids.len(), 64, "sequence budget must bound the encoding");
        assert!(enc.len <= 64);
        // A single absurdly long word also stays within budget.
        let long = "x".repeat(100_000);
        let enc = encode_column(&t, &long, &long, &[&long], 32);
        assert_eq!(enc.ids.len(), 32);
    }

    #[test]
    fn empty_inputs_produce_frame_only_encodings() {
        let t = toy();
        assert_eq!(normalize(""), Vec::<String>::new());
        assert!(t.tokenize("").is_empty());
        let enc = encode_column(&t, "", "", &[], 16);
        // [CLS] [TITLE] [HEADER] [CELL] [SEP] frame, padded out.
        assert!(enc.len >= 5);
        assert_eq!(enc.ids.len(), 16);
    }
}
