//! A minimal, lossless Rust token scanner with line/column tracking.
//!
//! This is not a full Rust lexer — it only has to be exact about the
//! four things every check in this crate depends on:
//!
//! 1. **String literals** (plain, raw, byte, C) so failpoint sites and
//!    metric names are extracted from real code, never from comments.
//! 2. **Comments** (line and nested block) so `// SAFETY:` audits and
//!    suppression scanning see them, and so nothing inside them is ever
//!    mistaken for code.
//! 3. **Identifiers and punctuation** with 1-based line/column, so
//!    diagnostics point at the offending token exactly.
//! 4. **Lifetimes vs char literals**, because `'a'` and `'a` diverge
//!    one character in, and a mis-lex would silently corrupt the rest
//!    of the file.
//!
//! Everything else (number suffixes, operator gluing) is deliberately
//! loose: checks operate on single-character punctuation sequences.

/// What a token is, as far as the checks care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `fn`, `HashMap`, …).
    Ident,
    /// String literal of any flavour; `text` holds the *contents*
    /// (delimiters and raw-string hashes stripped, escapes untouched).
    Str,
    /// Character literal, contents included verbatim.
    Char,
    /// Lifetime (`'a`, `'static`), without the leading quote.
    Lifetime,
    /// Numeric literal (integer or float, suffix included).
    Num,
    /// A single punctuation character (`.`, `(`, `!`, …).
    Punct,
    /// `//…` comment (doc or not), without the trailing newline.
    LineComment,
    /// `/* … */` comment, possibly spanning lines, delimiters included.
    BlockComment,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for per-kind conventions).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Tok {
    /// True for the comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// True if this is punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True if this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self { chars: src.chars().peekable(), line: 1, col: 1 }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Tokenizes `src`, keeping comments. Unterminated constructs (string,
/// block comment) consume to end of input rather than erroring: the
/// analyzer lints real, compiling code, and a best-effort tail is more
/// useful than a hard failure on a fixture.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' => {
                cur.bump();
                match cur.peek() {
                    Some('/') => {
                        let mut text = String::from("/");
                        while let Some(&c2) = cur.chars.peek() {
                            if c2 == '\n' {
                                break;
                            }
                            text.push(c2);
                            cur.bump();
                        }
                        out.push(Tok { kind: TokKind::LineComment, text, line, col });
                    }
                    Some('*') => {
                        cur.bump();
                        let mut text = String::from("/*");
                        let mut depth = 1usize;
                        let mut prev = '\0';
                        while depth > 0 {
                            let Some(c2) = cur.bump() else { break };
                            text.push(c2);
                            if prev == '/' && c2 == '*' {
                                depth += 1;
                                prev = '\0';
                            } else if prev == '*' && c2 == '/' {
                                depth -= 1;
                                prev = '\0';
                            } else {
                                prev = c2;
                            }
                        }
                        out.push(Tok { kind: TokKind::BlockComment, text, line, col });
                    }
                    _ => out.push(Tok { kind: TokKind::Punct, text: "/".into(), line, col }),
                }
            }
            '"' => {
                cur.bump();
                out.push(Tok { kind: TokKind::Str, text: scan_string_body(&mut cur), line, col });
            }
            '\'' => {
                cur.bump();
                out.push(scan_quote(&mut cur, line, col));
            }
            'r' | 'b' | 'c' => {
                // Maybe a raw/byte/C string prefix; otherwise an ident.
                if let Some(tok) = scan_prefixed_or_ident(&mut cur, line, col) {
                    out.push(tok);
                }
            }
            c if c == '_' || c.is_alphabetic() => {
                out.push(Tok { kind: TokKind::Ident, text: scan_ident(&mut cur), line, col });
            }
            c if c.is_ascii_digit() => {
                out.push(Tok { kind: TokKind::Num, text: scan_number(&mut cur), line, col });
            }
            c => {
                cur.bump();
                out.push(Tok { kind: TokKind::Punct, text: c.to_string(), line, col });
            }
        }
    }
    out
}

fn scan_ident(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(c) = cur.peek() {
        if c == '_' || c.is_alphanumeric() {
            s.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    s
}

fn scan_number(cur: &mut Cursor) -> String {
    let mut s = String::new();
    let mut prev = '\0';
    while let Some(c) = cur.peek() {
        let take = c.is_ascii_alphanumeric()
            || c == '_'
            // `1.5` continues the number; `0..n` does not (range), and
            // `x.0.1` tuple chains arrive here only digit-first.
            || (c == '.' && prev != '.' && {
                let mut clone = cur.chars.clone();
                clone.next();
                clone.peek().is_some_and(|n| n.is_ascii_digit())
            });
        if !take {
            break;
        }
        s.push(c);
        prev = c;
        cur.bump();
    }
    s
}

/// After a consumed `'`: lifetime or char literal.
fn scan_quote(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    // `'\…'` is always a char literal.
    if cur.peek() == Some('\\') {
        let mut text = String::new();
        text.push(cur.bump().unwrap_or('\\'));
        if let Some(esc) = cur.bump() {
            text.push(esc);
        }
        // Consume to the closing quote (covers \u{…}).
        while let Some(c) = cur.bump() {
            if c == '\'' {
                break;
            }
            text.push(c);
        }
        return Tok { kind: TokKind::Char, text, line, col };
    }
    // `'a` vs `'a'`: a lifetime is ident-like with no closing quote.
    let first = cur.peek();
    match first {
        Some(c) if c == '_' || c.is_alphanumeric() => {
            let mut clone = cur.chars.clone();
            clone.next();
            if clone.peek() == Some(&'\'') {
                // 'x' — char literal.
                let ch = cur.bump().unwrap_or(c);
                cur.bump(); // closing quote
                Tok { kind: TokKind::Char, text: ch.to_string(), line, col }
            } else {
                let name = scan_ident(cur);
                Tok { kind: TokKind::Lifetime, text: name, line, col }
            }
        }
        Some(c) => {
            // Punctuation char literal like '}' or '"'.
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            Tok { kind: TokKind::Char, text: c.to_string(), line, col }
        }
        None => Tok { kind: TokKind::Punct, text: "'".into(), line, col },
    }
}

/// After peeking `r`, `b`, or `c`: raw/byte/C string or plain ident.
fn scan_prefixed_or_ident(cur: &mut Cursor, line: u32, col: u32) -> Option<Tok> {
    // Look ahead without consuming: prefix chars then `"` or `#…"`.
    let mut clone = cur.chars.clone();
    let mut prefix = String::new();
    for _ in 0..2 {
        match clone.peek() {
            Some(&p @ ('r' | 'b' | 'c')) if prefix.is_empty() || (prefix == "b" && p == 'r') => {
                prefix.push(p);
                clone.next();
            }
            _ => break,
        }
    }
    let mut hashes = 0usize;
    while clone.peek() == Some(&'#') {
        hashes += 1;
        clone.next();
    }
    let is_string =
        clone.peek() == Some(&'"') && (hashes == 0 || prefix.ends_with('r') || prefix == "r");
    let raw = prefix.contains('r');
    if !is_string || (!raw && hashes > 0) {
        // `r#ident` raw identifiers land here too: consume `r#` then the
        // ident. Plain idents starting with r/b/c also land here.
        if hashes > 0 && prefix == "r" {
            cur.bump(); // r
            for _ in 0..hashes {
                cur.bump();
            }
            return Some(Tok { kind: TokKind::Ident, text: scan_ident(cur), line, col });
        }
        return Some(Tok { kind: TokKind::Ident, text: scan_ident(cur), line, col });
    }
    // It is a string: consume prefix, hashes, opening quote.
    for _ in 0..prefix.len() {
        cur.bump();
    }
    for _ in 0..hashes {
        cur.bump();
    }
    cur.bump(); // "
    let text = if raw { scan_raw_string_body(cur, hashes) } else { scan_string_body(cur) };
    Some(Tok { kind: TokKind::Str, text, line, col })
}

/// Contents of a non-raw string whose opening `"` is consumed.
fn scan_string_body(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '"' => break,
            '\\' => {
                s.push(c);
                if let Some(esc) = cur.bump() {
                    s.push(esc);
                }
            }
            _ => s.push(c),
        }
    }
    s
}

/// Contents of a raw string opened with `hashes` hash marks.
fn scan_raw_string_body(cur: &mut Cursor, hashes: usize) -> String {
    let mut s = String::new();
    'outer: while let Some(c) = cur.bump() {
        if c == '"' {
            // Candidate close: need `hashes` following '#'.
            let mut clone = cur.chars.clone();
            for _ in 0..hashes {
                if clone.next() != Some('#') {
                    s.push('"');
                    continue 'outer;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
        s.push(c);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_positions() {
        let toks = lex("fn main() {\n    x.y\n}");
        assert!(toks[0].is_ident("fn"));
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        let x = toks.iter().find(|t| t.is_ident("x")).expect("x token");
        assert_eq!((x.line, x.col), (2, 5));
    }

    #[test]
    fn strings_with_escapes_and_raw() {
        let toks = kinds(r#"let a = "he\"llo"; let b = r"raw"; "#);
        assert!(toks.contains(&(TokKind::Str, "he\\\"llo".into())));
        assert!(toks.contains(&(TokKind::Str, "raw".into())));
        let toks = kinds("let c = r#\"ra\"w\"#;");
        assert!(toks.contains(&(TokKind::Str, "ra\"w".into())));
    }

    #[test]
    fn comments_do_not_leak_strings() {
        let toks = kinds("// triggered(\"fake.site\")\nlet x = 1;");
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::Str));
        assert!(matches!(toks[0].0, TokKind::LineComment));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* a /* b */ c */ real");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (TokKind::Ident, "real".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let d = '\\n'; let e = '}'; }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).cloned().collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).cloned().collect();
        assert_eq!(chars.len(), 3);
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("for i in 0..10 { let f = 1.5e3; let t = x.0; }");
        assert!(toks.contains(&(TokKind::Num, "0".into())));
        assert!(toks.contains(&(TokKind::Num, "10".into())));
        assert!(toks.contains(&(TokKind::Num, "1.5e3".into())));
    }

    #[test]
    fn byte_and_format_strings() {
        let toks = kinds(r#"b"bytes" format!("persist.{x}")"#);
        assert!(toks.contains(&(TokKind::Str, "bytes".into())));
        assert!(toks.contains(&(TokKind::Str, "persist.{x}".into())));
    }
}
