//! The concurrency checks (EA007–EA010).
//!
//! * **EA007** — lock-order analysis: every zero-argument `.lock()` /
//!   `.read()` / `.write()` site must map to a class declared in
//!   `crates/sync/LOCKS.registry`, and no execution modelled by the
//!   [call graph](crate::callgraph) may acquire a class whose rank is
//!   ≤ a class already held (directly, or transitively across a call).
//!   The registry reconciles bidirectionally: unregistered sites and
//!   stale rows are both errors.
//! * **EA008** — reactor purity: functions defined in `event_loop.rs`
//!   files and everything they transitively call (intra-crate) must not
//!   block — no sleeps/joins/receives/waits, no `fs::`/`File::` I/O,
//!   and no lock classes that are not `reactor`-flagged in the
//!   registry. The epoll readiness wait itself (receiver `ep`/`epoll`)
//!   is the one sanctioned block point.
//! * **EA009** — hot-path allocation: the SIMD/quantized kernels
//!   (`nn/src/simd.rs`, `nn/src/quant.rs`, and the quantized encoder's
//!   inner loops) must not heap-allocate, transitively — scratch comes
//!   from the caller or the bump arena (`nn/src/arena.rs`, which is the
//!   sanctioned allocator and therefore a traversal boundary).
//! * **EA010** — atomic-ordering audit: every non-`SeqCst`
//!   `Ordering::…` site needs an adjacent `// ORDERING:` justification,
//!   and every site is inventoried (the EA002 pattern, for memory
//!   orderings).
//!
//! Known false negatives (by design; see DESIGN.md §17): cross-crate
//! calls, function-pointer/closure invocations, macro expansions, and
//! guard-returning helpers (the caller's hold extent is not modelled).
//! The runtime shadow-lock verifier in `explainti-sync` covers the
//! dynamic side of the same contract.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

use crate::callgraph::{crate_key, AcquireSite, CallGraph, Event};
use crate::lexer::TokKind;
use crate::{Diag, LockSite, OrderingSite, SourceFile};

/// Receivers whose `.lock()` is a std I/O handle lock, not a mutex.
const IO_HANDLE_RECEIVERS: [&str; 3] = ["stdin", "stdout", "stderr"];

/// Files whose acquisition sites are the shadow-lock layer itself (its
/// internal `std::sync` primitives are below the class system).
fn is_sync_crate(rel_path: &str) -> bool {
    rel_path.starts_with("crates/sync/src/")
}

// ---- LOCKS.registry ---------------------------------------------------

/// One parsed registry row.
pub struct LockRow {
    /// Dotted class name (`serve.conn.out`).
    pub class: String,
    /// Position in the global acquisition order.
    pub rank: u16,
    /// Whether the epoll reactor may acquire this class (EA008).
    pub reactor: bool,
    /// File whose acquisition sites map to this class.
    pub path: String,
    /// Receiver identifier at the acquisition site.
    pub receiver: String,
    /// Line in the registry file.
    pub line: u32,
    /// Whether any acquisition site matched this row in this run.
    pub used: bool,
}

/// Parsed `LOCKS.registry`.
pub struct LockRegistry {
    /// Workspace-relative path of the registry file.
    pub rel: String,
    /// Rows in file order.
    pub rows: Vec<LockRow>,
}

impl LockRegistry {
    /// Parses the registry text. Malformed rows, rank re-declarations,
    /// and duplicate `(path, receiver)` keys become EA007 diagnostics.
    pub fn parse(rel: &str, text: &str, diags: &mut Vec<Diag>) -> Self {
        let mut rows: Vec<LockRow> = Vec::new();
        let mut rank_of: BTreeMap<String, (u16, u32)> = BTreeMap::new();
        let mut keys: BTreeMap<(String, String), u32> = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx as u32 + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let parsed = match fields.as_slice() {
                [class, rank, flags, path, receiver] => {
                    rank.parse::<u16>().ok().filter(|_| matches!(*flags, "reactor" | "-")).map(
                        |rank| (class.to_string(), rank, *flags == "reactor", *path, *receiver),
                    )
                }
                _ => None,
            };
            let Some((class, rank, reactor, path, receiver)) = parsed else {
                diags.push(Diag {
                    code: "EA007",
                    path: rel.to_string(),
                    line: line_no,
                    col: 1,
                    message: format!(
                        "malformed registry row {line:?}: expected `class rank reactor|- path receiver`"
                    ),
                });
                continue;
            };
            if let Some((first_rank, first_line)) = rank_of.get(&class) {
                if *first_rank != rank {
                    diags.push(Diag {
                        code: "EA007",
                        path: rel.to_string(),
                        line: line_no,
                        col: 1,
                        message: format!(
                            "class `{class}` re-declared with rank {rank} (rank {first_rank} on line {first_line}) — a class has one rank"
                        ),
                    });
                    continue;
                }
            } else {
                rank_of.insert(class.clone(), (rank, line_no));
            }
            let key = (path.to_string(), receiver.to_string());
            if let Some(first) = keys.get(&key) {
                diags.push(Diag {
                    code: "EA007",
                    path: rel.to_string(),
                    line: line_no,
                    col: 1,
                    message: format!(
                        "duplicate registry row for ({path}, {receiver}) (first on line {first}) — each acquisition site maps to exactly one class"
                    ),
                });
                continue;
            }
            keys.insert(key, line_no);
            rows.push(LockRow {
                class,
                rank,
                reactor,
                path: path.to_string(),
                receiver: receiver.to_string(),
                line: line_no,
                used: false,
            });
        }
        Self { rel: rel.to_string(), rows }
    }

    /// The row matching an acquisition at (`rel_path`, `receiver`).
    pub fn lookup(&self, rel_path: &str, receiver: &str) -> Option<usize> {
        self.rows.iter().position(|r| r.path == rel_path && r.receiver == receiver)
    }
}

/// Loads and parses the registry at `path`. A missing file is an EA007
/// diagnostic and returns `None` (EA007/EA008 are then skipped).
pub fn load_registry(
    root: &Path,
    path: &Path,
    diags: &mut Vec<Diag>,
) -> io::Result<Option<LockRegistry>> {
    let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
    if !path.is_file() {
        diags.push(Diag {
            code: "EA007",
            path: rel,
            line: 1,
            col: 1,
            message: "lock registry file is missing".into(),
        });
        return Ok(None);
    }
    let text = std::fs::read_to_string(path)?;
    Ok(Some(LockRegistry::parse(&rel, &text, diags)))
}

// ---- EA007: lock-order analysis ---------------------------------------

/// A currently-held guard during the per-function simulation.
struct Held {
    class: String,
    rank: u16,
    line: u32,
    col: u32,
    /// `Some(name)` for let-bound/re-bound guards, `None` for
    /// temporaries (released at the next `;`/`,`/`{`/`}`).
    binding: Option<String>,
    /// Block depth at acquisition; let-bound guards die when their
    /// block closes.
    depth: i32,
}

/// A call made while at least one guard was held.
struct HeldCall {
    crate_key: String,
    callee: String,
    path: String,
    line: u32,
    col: u32,
    held: Vec<(String, u16)>,
}

/// EA007: registry reconciliation plus direct and transitive
/// lock-order verification over the call graph.
pub fn ea007_lock_order(
    cg: &CallGraph,
    reg: &mut LockRegistry,
    diags: &mut Vec<Diag>,
    lock_sites: &mut Vec<LockSite>,
) {
    // Class id space for the may-acquire sets.
    let mut classes: Vec<(String, u16)> = Vec::new();
    let mut class_id: BTreeMap<String, usize> = BTreeMap::new();
    for row in &reg.rows {
        class_id.entry(row.class.clone()).or_insert_with(|| {
            classes.push((row.class.clone(), row.rank));
            classes.len() - 1
        });
    }

    let mut direct: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); cg.funcs.len()];
    let mut held_calls: Vec<HeldCall> = Vec::new();

    for (fi, func) in cg.funcs.iter().enumerate() {
        if is_sync_crate(&func.rel_path) {
            continue;
        }
        let key = crate_key(&func.rel_path);
        let mut held: Vec<Held> = Vec::new();
        let mut depth = 0i32;
        for ev in &func.events {
            match ev {
                Event::Open => {
                    held.retain(|h| h.binding.is_some());
                    depth += 1;
                }
                Event::Close => {
                    depth -= 1;
                    let d = depth;
                    held.retain(|h| h.binding.is_some() && h.depth <= d);
                }
                Event::Semi => held.retain(|h| h.binding.is_some()),
                Event::Drop(name) => held.retain(|h| h.binding.as_deref() != Some(name)),
                Event::Acquire(a) => {
                    if IO_HANDLE_RECEIVERS.contains(&a.receiver.as_str()) {
                        continue;
                    }
                    let Some(row_idx) = reg.lookup(&func.rel_path, &a.receiver) else {
                        diags.push(site_diag(func, a, format!(
                            "unregistered lock: `{}.{}()` matches no LOCKS.registry row for {} — declare a class (with a rank and receiver) or rename the receiver",
                            a.receiver, a.method, func.rel_path
                        )));
                        continue;
                    };
                    reg.rows[row_idx].used = true;
                    let (class, rank) = (reg.rows[row_idx].class.clone(), reg.rows[row_idx].rank);
                    lock_sites.push(LockSite {
                        path: func.rel_path.clone(),
                        line: a.line,
                        col: a.col,
                        class: class.clone(),
                        rank,
                        receiver: a.receiver.clone(),
                    });
                    for h in &held {
                        if h.rank >= rank {
                            diags.push(site_diag(func, a, format!(
                                "lock-order inversion: acquiring `{class}` (rank {rank}) while holding `{}` (rank {}, acquired at {}:{}) — the declared order requires rank(held) < rank(acquired)",
                                h.class, h.rank, h.line, h.col
                            )));
                        }
                    }
                    direct[fi].insert(class_id[&class]);
                    held.push(Held {
                        class,
                        rank,
                        line: a.line,
                        col: a.col,
                        binding: a.binding.clone(),
                        depth,
                    });
                }
                Event::Call(c) => {
                    if !held.is_empty() && !cg.resolve(&key, &c.name).is_empty() {
                        held_calls.push(HeldCall {
                            crate_key: key.clone(),
                            callee: c.name.clone(),
                            path: func.rel_path.clone(),
                            line: c.line,
                            col: c.col,
                            held: held.iter().map(|h| (h.class.clone(), h.rank)).collect(),
                        });
                    }
                }
            }
        }
    }

    // may_acquire fixpoint over intra-crate edges.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); cg.funcs.len()];
    for (fi, func) in cg.funcs.iter().enumerate() {
        if is_sync_crate(&func.rel_path) {
            continue;
        }
        let key = crate_key(&func.rel_path);
        for ev in &func.events {
            if let Event::Call(c) = ev {
                edges[fi].extend_from_slice(cg.resolve(&key, &c.name));
            }
        }
    }
    let mut may = direct;
    loop {
        let mut changed = false;
        for fi in 0..cg.funcs.len() {
            for &callee in &edges[fi] {
                if callee == fi {
                    continue;
                }
                let add: Vec<usize> =
                    may[callee].iter().filter(|c| !may[fi].contains(c)).copied().collect();
                if !add.is_empty() {
                    may[fi].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Transitive inversions: a guard held across a call whose callee
    // may acquire a rank ≤ the held rank.
    let mut seen: BTreeSet<(String, u32, u32, String, String)> = BTreeSet::new();
    for hc in &held_calls {
        for &callee in cg.resolve(&hc.crate_key, &hc.callee) {
            for &cid in &may[callee] {
                let (ref class, rank) = classes[cid];
                for (held_class, held_rank) in &hc.held {
                    if *held_rank >= rank
                        && seen.insert((
                            hc.path.clone(),
                            hc.line,
                            hc.col,
                            held_class.clone(),
                            class.clone(),
                        ))
                    {
                        diags.push(Diag {
                            code: "EA007",
                            path: hc.path.clone(),
                            line: hc.line,
                            col: hc.col,
                            message: format!(
                                "potential lock-order inversion: `{held_class}` (rank {held_rank}) is held across a call to `{}`, which may acquire `{class}` (rank {rank})",
                                hc.callee
                            ),
                        });
                    }
                }
            }
        }
    }

    // Staleness: every row must have matched at least one site.
    for row in &reg.rows {
        if !row.used {
            diags.push(Diag {
                code: "EA007",
                path: reg.rel.clone(),
                line: row.line,
                col: 1,
                message: format!(
                    "registry row `{}` ({}, {}) matches no acquisition site in the scan — stale entry",
                    row.class, row.path, row.receiver
                ),
            });
        }
    }
}

fn site_diag(func: &crate::callgraph::Func, a: &AcquireSite, message: String) -> Diag {
    Diag { code: "EA007", path: func.rel_path.clone(), line: a.line, col: a.col, message }
}

// ---- EA008: reactor purity --------------------------------------------

/// Call names that block (or may block) the calling thread.
const DENY_CALLS: [&str; 15] = [
    "sleep",
    "join",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "wait",
    "wait_timeout",
    "wait_while",
    "park",
    "park_timeout",
    "pop_batch",
    "pop_batch_timeout",
    "read_to_end",
    "read_to_string",
    "connect",
];

/// Receivers for which a `.wait(…)` call is the reactor's own epoll
/// readiness wait — the single sanctioned block point.
const REACTOR_WAIT_RECEIVERS: [&str; 2] = ["ep", "epoll"];

/// Path roots whose `::` calls do blocking file I/O.
const DENY_PATH_ROOTS: [&str; 2] = ["fs", "File"];

/// EA008: nothing reachable (intra-crate) from a function defined in an
/// `event_loop.rs` file may block or take a non-reactor lock class.
pub fn ea008_reactor_purity(
    files: &[SourceFile],
    cg: &CallGraph,
    reg: &LockRegistry,
    diags: &mut Vec<Diag>,
) {
    let mut queue: Vec<usize> = Vec::new();
    let mut origin: BTreeMap<usize, usize> = BTreeMap::new(); // fn -> parent fn
    for (fi, func) in cg.funcs.iter().enumerate() {
        if func.rel_path.ends_with("event_loop.rs") {
            queue.push(fi);
        }
    }
    let mut visited: BTreeSet<usize> = queue.iter().copied().collect();
    let mut qi = 0usize;
    while qi < queue.len() {
        let fi = queue[qi];
        qi += 1;
        let func = &cg.funcs[fi];
        if is_sync_crate(&func.rel_path) {
            continue;
        }
        let key = crate_key(&func.rel_path);
        let chain = chain_of(cg, &origin, fi);
        for ev in &func.events {
            match ev {
                Event::Call(c) => {
                    let sanctioned_wait = c.name == "wait"
                        && c.receiver
                            .as_deref()
                            .is_some_and(|r| REACTOR_WAIT_RECEIVERS.contains(&r));
                    if DENY_CALLS.contains(&c.name.as_str()) && !sanctioned_wait {
                        diags.push(Diag {
                            code: "EA008",
                            path: func.rel_path.clone(),
                            line: c.line,
                            col: c.col,
                            message: format!(
                                "blocking call `{}` on the reactor thread ({chain}) — the event loop must never block",
                                c.name
                            ),
                        });
                    }
                    for &callee in cg.resolve(&key, &c.name) {
                        if visited.insert(callee) {
                            origin.insert(callee, fi);
                            queue.push(callee);
                        }
                    }
                }
                Event::Acquire(a) => {
                    if IO_HANDLE_RECEIVERS.contains(&a.receiver.as_str()) {
                        continue;
                    }
                    // Unregistered sites are EA007's finding, not ours.
                    if let Some(row) = reg.lookup(&func.rel_path, &a.receiver) {
                        if !reg.rows[row].reactor {
                            diags.push(Diag {
                                code: "EA008",
                                path: func.rel_path.clone(),
                                line: a.line,
                                col: a.col,
                                message: format!(
                                    "reactor thread acquires non-reactor lock class `{}` ({chain}) — only `reactor`-flagged classes may be taken on the event loop",
                                    reg.rows[row].class
                                ),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        // `fs::…(…)` / `File::…(…)` blocking file I/O, via raw tokens.
        let f = &files[func.file];
        for ci in cg.own_body_indices(fi) {
            let t = f.tok(ci);
            if t.kind == TokKind::Ident
                && DENY_PATH_ROOTS.contains(&t.text.as_str())
                && ci + 2 < f.code.len()
                && f.tok(ci + 1).is_punct(':')
                && f.tok(ci + 2).is_punct(':')
            {
                diags.push(Diag {
                    code: "EA008",
                    path: func.rel_path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "blocking file I/O (`{}::…`) on the reactor thread ({chain})",
                        t.text
                    ),
                });
            }
        }
    }
}

/// `reachable from reactor entry `run`` or `… via `a` → `b``.
fn chain_of(cg: &CallGraph, origin: &BTreeMap<usize, usize>, fi: usize) -> String {
    let mut names = vec![cg.funcs[fi].name.clone()];
    let mut cur = fi;
    while let Some(&p) = origin.get(&cur) {
        names.push(cg.funcs[p].name.clone());
        cur = p;
    }
    names.reverse();
    let entry = names.first().cloned().unwrap_or_default();
    if names.len() == 1 {
        format!("reachable from reactor entry `{entry}`")
    } else {
        let via: Vec<String> = names.iter().map(|n| format!("`{n}`")).collect();
        format!("reachable from reactor entry {}", via.join(" → "))
    }
}

// ---- EA009: hot-path allocation ---------------------------------------

/// Macro names that heap-allocate.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];
/// `Type::ctor` pairs that heap-allocate.
const ALLOC_TYPES: [&str; 3] = ["Vec", "Box", "String"];
const ALLOC_CTORS: [&str; 3] = ["new", "from", "with_capacity"];
/// Methods that allocate or may grow their receiver.
const ALLOC_METHODS: [&str; 11] = [
    "to_vec",
    "to_string",
    "to_owned",
    "collect",
    "push",
    "push_str",
    "extend",
    "insert",
    "append",
    "reserve",
    "repeat",
];

/// Entry predicate: which functions anchor the hot-kernel reachability
/// scan. Constructors (`from_*`) are excluded — they build the weights
/// once, off the per-request path.
fn ea009_entry(func: &crate::callgraph::Func) -> bool {
    if func.rel_path.ends_with("nn/src/simd.rs") || func.rel_path.ends_with("nn/src/quant.rs") {
        return !func.name.starts_with("from_");
    }
    if func.rel_path.ends_with("encoder/src/quant.rs") {
        // The per-layer inner loops; `forward` itself ends in one
        // terminal arena-to-Tensor copy and is exercised by the arena
        // reuse tests instead.
        return matches!(func.name.as_str(), "apply" | "layer_norm_rows" | "gelu");
    }
    false
}

/// The bump arena is the sanctioned allocator: reachability stops at
/// its boundary and its internals are not scanned.
fn ea009_boundary(func: &crate::callgraph::Func) -> bool {
    func.rel_path.ends_with("nn/src/arena.rs")
}

/// EA009: no transitive heap allocation in the SIMD/quantized kernel
/// paths.
pub fn ea009_hot_alloc(files: &[SourceFile], cg: &CallGraph, diags: &mut Vec<Diag>) {
    let mut queue: Vec<usize> = Vec::new();
    let mut origin: BTreeMap<usize, usize> = BTreeMap::new();
    for (fi, func) in cg.funcs.iter().enumerate() {
        if ea009_entry(func) {
            queue.push(fi);
        }
    }
    let mut visited: BTreeSet<usize> = queue.iter().copied().collect();
    let mut qi = 0usize;
    while qi < queue.len() {
        let fi = queue[qi];
        qi += 1;
        let func = &cg.funcs[fi];
        if ea009_boundary(func) {
            continue;
        }
        let key = crate_key(&func.rel_path);
        let chain = chain_of_alloc(cg, &origin, fi);
        let f = &files[func.file];
        for ci in cg.own_body_indices(fi) {
            let t = f.tok(ci);
            if t.kind != TokKind::Ident {
                continue;
            }
            let next_is =
                |off: usize, c: char| ci + off < f.code.len() && f.tok(ci + off).is_punct(c);
            if ALLOC_MACROS.contains(&t.text.as_str()) && next_is(1, '!') {
                diags.push(alloc_diag(func, t.line, t.col, format!("`{}!`", t.text), &chain));
            }
            if ALLOC_TYPES.contains(&t.text.as_str())
                && next_is(1, ':')
                && next_is(2, ':')
                && ci + 3 < f.code.len()
                && ALLOC_CTORS.contains(&f.tok(ci + 3).text.as_str())
            {
                diags.push(alloc_diag(
                    func,
                    t.line,
                    t.col,
                    format!("`{}::{}`", t.text, f.tok(ci + 3).text),
                    &chain,
                ));
            }
            if ALLOC_METHODS.contains(&t.text.as_str())
                && ci > 0
                && f.tok(ci - 1).is_punct('.')
                && next_is(1, '(')
            {
                diags.push(alloc_diag(func, t.line, t.col, format!("`.{}(…)`", t.text), &chain));
            }
        }
        for ev in &func.events {
            if let Event::Call(c) = ev {
                for &callee in cg.resolve(&key, &c.name) {
                    if !ea009_boundary(&cg.funcs[callee]) && visited.insert(callee) {
                        origin.insert(callee, fi);
                        queue.push(callee);
                    }
                }
            }
        }
    }
}

fn chain_of_alloc(cg: &CallGraph, origin: &BTreeMap<usize, usize>, fi: usize) -> String {
    let mut names = vec![cg.funcs[fi].name.clone()];
    let mut cur = fi;
    while let Some(&p) = origin.get(&cur) {
        names.push(cg.funcs[p].name.clone());
        cur = p;
    }
    names.reverse();
    if names.len() == 1 {
        format!("hot kernel entry `{}`", names[0])
    } else {
        let via: Vec<String> = names.iter().map(|n| format!("`{n}`")).collect();
        format!("reachable from hot kernel entry {}", via.join(" → "))
    }
}

fn alloc_diag(
    func: &crate::callgraph::Func,
    line: u32,
    col: u32,
    what: String,
    chain: &str,
) -> Diag {
    Diag {
        code: "EA009",
        path: func.rel_path.clone(),
        line,
        col,
        message: format!(
            "heap allocation ({what}) on the hot kernel path ({chain}) — use caller-provided scratch or the bump arena"
        ),
    }
}

// ---- EA010: atomic-ordering audit -------------------------------------

/// The orderings that demand a justification. `SeqCst` is the safe
/// default and exempt (the audit exists to justify *weakening*).
const WEAK_ORDERINGS: [&str; 4] = ["Relaxed", "Acquire", "Release", "AcqRel"];

/// True when `line` carries (or the comment block directly above it
/// carries) an `ORDERING` justification. Mirrors EA002's
/// `has_safety_comment` exactly — the uppercase match cannot collide
/// with the `Ordering` type name.
fn has_ordering_comment(f: &SourceFile, line: u32) -> bool {
    let idx = line as usize - 1;
    if f.lines.get(idx).is_some_and(|l| l.contains("ORDERING")) {
        return true;
    }
    let mut k = idx;
    while k > 0 {
        k -= 1;
        let t = f.lines[k].trim_start();
        let is_comment = t.starts_with("//") || t.starts_with("/*") || t.starts_with('*');
        let is_attr = t.starts_with("#[") || t.starts_with("#![");
        if is_comment {
            if t.contains("ORDERING") {
                return true;
            }
        } else if !is_attr {
            return false;
        }
    }
    false
}

/// True when the `Ordering` token at code index `ci` sits inside a
/// `use` declaration (imports need no justification).
fn in_use_decl(f: &SourceFile, ci: usize) -> bool {
    let mut k = ci;
    let mut steps = 0;
    while k > 0 && steps < 40 {
        k -= 1;
        steps += 1;
        let t = f.tok(k);
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return false;
        }
        if t.is_ident("use") {
            return true;
        }
    }
    false
}

/// EA010: every non-`SeqCst` memory-ordering site needs an adjacent
/// `// ORDERING:` comment; all sites are inventoried.
pub fn ea010_ordering_audit(
    files: &[SourceFile],
    diags: &mut Vec<Diag>,
    inventory: &mut Vec<OrderingSite>,
) {
    for f in files {
        for ci in 0..f.code.len().saturating_sub(3) {
            let t = f.tok(ci);
            if !t.is_ident("Ordering")
                || !f.tok(ci + 1).is_punct(':')
                || !f.tok(ci + 2).is_punct(':')
            {
                continue;
            }
            let variant = f.tok(ci + 3);
            let weak = WEAK_ORDERINGS.contains(&variant.text.as_str());
            if !weak && variant.text != "SeqCst" {
                continue;
            }
            if in_use_decl(f, ci) {
                continue;
            }
            let documented = has_ordering_comment(f, t.line);
            inventory.push(OrderingSite {
                path: f.rel_path.clone(),
                line: t.line,
                col: t.col,
                ordering: variant.text.clone(),
                documented,
            });
            if weak && !documented {
                diags.push(Diag {
                    code: "EA010",
                    path: f.rel_path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`Ordering::{}` without an adjacent `// ORDERING:` justification (same line or comment block above) — weakened memory orderings must say why they are safe",
                        variant.text
                    ),
                });
            }
        }
    }
}
