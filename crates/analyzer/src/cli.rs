//! The CLI driver behind both entry points: the standalone `analyzer`
//! binary (`cargo run -p analyzer -- …`) and the root CLI's `analyze`
//! subcommand (`explainti analyze …`).
//!
//! ```text
//! cargo run -p analyzer -- --workspace                 # lint the repo, exit 1 on findings
//! cargo run -p analyzer -- --workspace --format json   # CI artifact output
//! cargo run -p analyzer -- --workspace --bless         # re-freeze crates/api/wire.fingerprint
//! cargo run -p analyzer -- --emit-metrics-md           # README metrics table from the registry
//! cargo run -p analyzer -- --all-scopes path/to/file.rs  # fixture mode
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use crate::{checks, Config};

const USAGE: &str = "\
usage: analyzer [--workspace | PATH…] [options]

options:
  --workspace              lint the whole repo (src/ + crates/*/src/) with default registries
  --root DIR               workspace root (default: current directory)
  --format text|json       output format (default text)
  --allowlist FILE         suppression file (workspace default: analyzer.allow)
  --failpoints-catalog F   EA003 catalogue (workspace default: crates/faults/FAILPOINTS.catalog)
  --metrics-registry F     EA004 registry (workspace default: crates/obs/METRICS.registry)
  --wire-fingerprint F     EA005 fingerprint (workspace default: crates/api/wire.fingerprint)
  --api-file F             EA005 DTO source (workspace default: crates/api/src/lib.rs)
  --unsafe-inventory F     also write the EA002 unsafe-site inventory JSON to F
  --locks-registry F       EA007/EA008 lock classes (workspace default: crates/sync/LOCKS.registry)
  --lock-inventory F       also write the EA007 lock-site + EA010 ordering inventories JSON to F
  --emit-metrics-md        print the README metrics table from the registry and exit
  --all-scopes             treat every scanned file as in scope for EA001/EA006 (fixture mode)
  --bless                  regenerate crates/api/wire.fingerprint from the current DTO shape
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Parses `argv` (without the program/subcommand name) and runs the
/// analysis, returning the process exit code.
pub fn main_with_args(argv: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut workspace = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut format = "text".to_string();
    let mut allowlist: Option<PathBuf> = None;
    let mut catalog: Option<PathBuf> = None;
    let mut registry: Option<PathBuf> = None;
    let mut fingerprint: Option<PathBuf> = None;
    let mut api_file: Option<PathBuf> = None;
    let mut inventory_out: Option<PathBuf> = None;
    let mut locks_registry: Option<PathBuf> = None;
    let mut lock_inventory_out: Option<PathBuf> = None;
    let mut emit_metrics_md = false;
    let mut all_scopes = false;
    let mut bless = false;

    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| -> Result<PathBuf, String> {
            it.next().map(PathBuf::from).ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match value_for("--root") {
                Ok(v) => root = v,
                Err(e) => return fail(&e),
            },
            "--format" => match it.next() {
                Some(v) if v == "text" || v == "json" => format = v.clone(),
                _ => return fail("--format must be text or json"),
            },
            "--allowlist" => match value_for("--allowlist") {
                Ok(v) => allowlist = Some(v),
                Err(e) => return fail(&e),
            },
            "--failpoints-catalog" => match value_for("--failpoints-catalog") {
                Ok(v) => catalog = Some(v),
                Err(e) => return fail(&e),
            },
            "--metrics-registry" => match value_for("--metrics-registry") {
                Ok(v) => registry = Some(v),
                Err(e) => return fail(&e),
            },
            "--wire-fingerprint" => match value_for("--wire-fingerprint") {
                Ok(v) => fingerprint = Some(v),
                Err(e) => return fail(&e),
            },
            "--api-file" => match value_for("--api-file") {
                Ok(v) => api_file = Some(v),
                Err(e) => return fail(&e),
            },
            "--unsafe-inventory" => match value_for("--unsafe-inventory") {
                Ok(v) => inventory_out = Some(v),
                Err(e) => return fail(&e),
            },
            "--locks-registry" => match value_for("--locks-registry") {
                Ok(v) => locks_registry = Some(v),
                Err(e) => return fail(&e),
            },
            "--lock-inventory" => match value_for("--lock-inventory") {
                Ok(v) => lock_inventory_out = Some(v),
                Err(e) => return fail(&e),
            },
            "--emit-metrics-md" => emit_metrics_md = true,
            "--all-scopes" => all_scopes = true,
            "--bless" => bless = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => return fail(&format!("unknown flag {flag}")),
            path => paths.push(PathBuf::from(path)),
        }
    }

    if emit_metrics_md {
        let reg = registry.unwrap_or_else(|| root.join("crates/obs/METRICS.registry"));
        let text = match std::fs::read_to_string(&reg) {
            Ok(t) => t,
            Err(e) => return fail(&format!("read {}: {e}", reg.display())),
        };
        let mut diags = Vec::new();
        let entries = checks::parse_metrics_registry(&reg.to_string_lossy(), &text, &mut diags);
        for d in &diags {
            eprintln!("{}", d.render());
        }
        print!("{}", checks::metrics_markdown(&entries));
        return if diags.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if !workspace && paths.is_empty() {
        return fail("nothing to do: pass --workspace or explicit paths");
    }

    let mut cfg = if workspace {
        Config::workspace(&root)
    } else {
        Config {
            root: root.clone(),
            paths: Vec::new(),
            allowlist: None,
            failpoints_catalog: None,
            metrics_registry: None,
            wire_fingerprint: None,
            api_file: None,
            locks_registry: None,
            all_scopes: false,
            bless: false,
        }
    };
    cfg.paths = paths;
    cfg.all_scopes = all_scopes;
    cfg.bless = bless;
    if let Some(v) = allowlist {
        cfg.allowlist = Some(v);
    }
    if let Some(v) = catalog {
        cfg.failpoints_catalog = Some(v);
    }
    if let Some(v) = registry {
        cfg.metrics_registry = Some(v);
    }
    if let Some(v) = fingerprint {
        cfg.wire_fingerprint = Some(v);
    }
    if let Some(v) = api_file {
        cfg.api_file = Some(v);
    }
    if let Some(v) = locks_registry {
        cfg.locks_registry = Some(v);
    }
    if cfg.bless && cfg.wire_fingerprint.is_none() {
        cfg.wire_fingerprint = Some(root.join("crates/api/wire.fingerprint"));
        cfg.api_file = Some(root.join("crates/api/src/lib.rs"));
    }

    let report = match crate::run(&cfg) {
        Ok(r) => r,
        Err(e) => return fail(&format!("analysis failed: {e}")),
    };

    if let Some(out) = inventory_out {
        let mut s = String::from("[\n");
        for (i, u) in report.unsafe_sites.iter().enumerate() {
            s.push_str(&format!(
                "  {{\"path\": \"{}\", \"line\": {}, \"col\": {}, \"kind\": \"{}\", \"documented\": {}}}{}\n",
                crate::json_escape(&u.path),
                u.line,
                u.col,
                u.kind,
                u.documented,
                if i + 1 < report.unsafe_sites.len() { "," } else { "" }
            ));
        }
        s.push_str("]\n");
        if let Err(e) = std::fs::write(&out, s) {
            return fail(&format!("write {}: {e}", out.display()));
        }
    }

    if let Some(out) = lock_inventory_out {
        let mut s = String::from("{\n  \"lock_inventory\": [\n");
        for (i, l) in report.lock_sites.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"path\": \"{}\", \"line\": {}, \"col\": {}, \"class\": \"{}\", \"rank\": {}, \"receiver\": \"{}\"}}{}\n",
                crate::json_escape(&l.path),
                l.line,
                l.col,
                crate::json_escape(&l.class),
                l.rank,
                crate::json_escape(&l.receiver),
                if i + 1 < report.lock_sites.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"ordering_inventory\": [\n");
        for (i, o) in report.ordering_sites.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"path\": \"{}\", \"line\": {}, \"col\": {}, \"ordering\": \"{}\", \"documented\": {}}}{}\n",
                crate::json_escape(&o.path),
                o.line,
                o.col,
                o.ordering,
                o.documented,
                if i + 1 < report.ordering_sites.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(&out, s) {
            return fail(&format!("write {}: {e}", out.display()));
        }
    }

    match format.as_str() {
        "json" => print!("{}", report.to_json()),
        _ => {
            for d in &report.diags {
                println!("{}", d.render());
            }
            let counts = report.counts_by_code();
            let breakdown: Vec<String> = counts.iter().map(|(c, n)| format!("{n}x {c}")).collect();
            eprintln!(
                "analyzer: {} file(s) scanned, {} unsafe site(s) inventoried, {} finding(s){}{}",
                report.files_scanned,
                report.unsafe_sites.len(),
                report.diags.len(),
                if breakdown.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", breakdown.join(", "))
                },
                if report.suppressed > 0 {
                    format!(", {} suppressed by allowlist", report.suppressed)
                } else {
                    String::new()
                }
            );
        }
    }
    if report.diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
