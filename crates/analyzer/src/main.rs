//! `analyzer` — the workspace invariant lint pass as a standalone
//! binary. All logic lives in [`analyzer::cli`], which the root CLI's
//! `analyze` subcommand shares.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    analyzer::cli::main_with_args(&argv)
}
