//! The six invariant checks (EA001–EA006).
//!
//! Every check walks the comment-free, test-free code view of a
//! [`SourceFile`] (`file.code`), so nothing inside `#[cfg(test)]`
//! modules or comments can trigger or mask a finding. Checks that
//! reconcile code against a committed registry (EA003, EA004, EA005)
//! run over the whole scan set at once.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use crate::lexer::TokKind;
use crate::{fnv1a64, Config, Diag, SourceFile, UnsafeSite};

/// Crates whose `src/` is the deterministic inference/explanation path:
/// LE/GE/SE scores and golden responses must be bit-stable, so wall
/// clocks, entropy, and hash-order iteration are banned here (EA001).
const DETERMINISM_SCOPE: [&str; 5] = [
    "crates/core/src/",
    "crates/nn/src/",
    "crates/encoder/src/",
    "crates/ann/src/",
    "crates/tokenizer/src/",
];

/// The serving request path (EA006): every failure must map to a typed
/// `ApiError` response, so panicking shortcuts are banned.
const PANIC_SCOPE: [&str; 1] = ["crates/serve/src/"];

fn in_scope(path: &str, scope: &[&str], all: bool) -> bool {
    all || scope.iter().any(|p| path.starts_with(p))
}

fn diag(code: &'static str, f: &SourceFile, ci: usize, message: String) -> Diag {
    let t = f.tok(ci);
    Diag { code, path: f.rel_path.clone(), line: t.line, col: t.col, message }
}

/// Finds the first string literal among the arguments of a call whose
/// opening paren is at code index `open` (handles literals nested in
/// `&format!(…)`). Returns the code index of the literal.
fn first_str_arg(f: &SourceFile, open: usize) -> Option<usize> {
    debug_assert!(f.tok(open).is_punct('('));
    let mut depth = 0i32;
    for ci in open..f.code.len() {
        let t = f.tok(ci);
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return None;
            }
        } else if t.kind == TokKind::Str {
            return Some(ci);
        }
    }
    None
}

// ---- EA001: determinism ----------------------------------------------

/// Identifiers whose presence means "this code reads process entropy".
const ENTROPY_IDENTS: [&str; 4] = ["from_entropy", "thread_rng", "OsRng", "getrandom"];

/// Iteration methods whose order depends on the hasher when called on a
/// `HashMap`/`HashSet`.
const HASH_ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// EA001: forbid wall clocks (`Instant::now`, `SystemTime`), entropy
/// RNG construction, and `HashMap`/`HashSet` iteration inside the
/// inference/explanation crates.
///
/// Hash-iteration detection is a local-type heuristic: a name counts as
/// a hash container when it is *declared in the same file* with an
/// explicit `HashMap`/`HashSet` annotation (let binding, field, or
/// parameter). That covers this codebase's style — annotations are
/// mandatory for containers here precisely so this check stays sound.
pub fn ea001_determinism(f: &SourceFile, cfg: &Config, diags: &mut Vec<Diag>) {
    if !in_scope(&f.rel_path, &DETERMINISM_SCOPE, cfg.all_scopes) {
        return;
    }
    // Pass 1: names declared with a hash-container type.
    let mut hash_names: Vec<String> = Vec::new();
    for ci in 0..f.code.len().saturating_sub(1) {
        let t = f.tok(ci);
        if t.kind != TokKind::Ident || !f.tok(ci + 1).is_punct(':') {
            continue;
        }
        // `name :` — scan the type until the annotation plausibly ends.
        let mut angle = 0i32;
        for cj in ci + 2..(ci + 40).min(f.code.len()) {
            let u = f.tok(cj);
            if u.is_punct('<') {
                angle += 1;
            } else if u.is_punct('>') {
                angle -= 1;
            } else if angle <= 0
                && (u.is_punct('=')
                    || u.is_punct(';')
                    || u.is_punct('{')
                    || u.is_punct(',')
                    || u.is_punct(')'))
            {
                break;
            } else if u.is_ident("HashMap") || u.is_ident("HashSet") {
                hash_names.push(t.text.clone());
                break;
            }
        }
    }
    hash_names.sort();
    hash_names.dedup();

    // Pass 2: violations.
    for ci in 0..f.code.len() {
        let t = f.tok(ci);
        if t.kind != TokKind::Ident {
            continue;
        }
        // Wall clocks.
        if t.text == "Instant"
            && ci + 3 < f.code.len()
            && f.tok(ci + 1).is_punct(':')
            && f.tok(ci + 2).is_punct(':')
            && f.tok(ci + 3).is_ident("now")
        {
            diags.push(diag(
                "EA001",
                f,
                ci,
                "wall-clock read (`Instant::now`) in a deterministic inference/explanation crate"
                    .into(),
            ));
        }
        if t.text == "SystemTime" {
            diags.push(diag(
                "EA001",
                f,
                ci,
                "wall-clock type (`SystemTime`) in a deterministic inference/explanation crate"
                    .into(),
            ));
        }
        // Entropy.
        if ENTROPY_IDENTS.contains(&t.text.as_str()) {
            diags.push(diag(
                "EA001",
                f,
                ci,
                format!(
                    "process-entropy RNG (`{}`) in a deterministic crate — seed explicitly from config",
                    t.text
                ),
            ));
        }
        // Hash-order iteration: `name.iter()` / `name.keys()` / …
        if HASH_ITER_METHODS.contains(&t.text.as_str())
            && ci >= 2
            && f.tok(ci - 1).is_punct('.')
            && f.tok(ci - 2).kind == TokKind::Ident
            && hash_names.iter().any(|n| f.tok(ci - 2).text == *n)
        {
            diags.push(diag(
                "EA001",
                f,
                ci,
                format!(
                    "hash-order iteration (`{}.{}`) — iteration order is nondeterministic; use a BTreeMap/BTreeSet or sort with a total tie-break first",
                    f.tok(ci - 2).text,
                    t.text
                ),
            ));
        }
        // `for x in &name` over a hash container.
        if t.text == "for" {
            for cj in ci + 1..(ci + 12).min(f.code.len()) {
                let u = f.tok(cj);
                if u.is_ident("in") {
                    let mut ck = cj + 1;
                    while ck < f.code.len()
                        && (f.tok(ck).is_punct('&') || f.tok(ck).is_ident("mut"))
                    {
                        ck += 1;
                    }
                    if ck < f.code.len()
                        && f.tok(ck).kind == TokKind::Ident
                        && hash_names.contains(&f.tok(ck).text)
                        && ck + 1 < f.code.len()
                        && (f.tok(ck + 1).is_punct('{') || f.tok(ck + 1).is_punct('.'))
                    {
                        diags.push(diag(
                            "EA001",
                            f,
                            ck,
                            format!(
                                "hash-order iteration (`for … in {}`) — use a BTree container or sort deterministically",
                                f.tok(ck).text
                            ),
                        ));
                    }
                    break;
                }
                if u.is_punct('{') || u.is_punct(';') {
                    break;
                }
            }
        }
    }
}

// ---- EA002: unsafe audit ---------------------------------------------

/// True when the lines directly above `line` (1-based) form a comment
/// block containing a safety justification, or the line itself carries
/// one. Attribute lines between the comment and the item are skipped.
fn has_safety_comment(f: &SourceFile, line: u32) -> bool {
    let idx = line as usize - 1;
    if f.lines.get(idx).is_some_and(|l| l.contains("SAFETY")) {
        return true;
    }
    let mut k = idx;
    while k > 0 {
        k -= 1;
        let t = f.lines[k].trim_start();
        let is_comment = t.starts_with("//") || t.starts_with("/*") || t.starts_with('*');
        let is_attr = t.starts_with("#[") || t.starts_with("#![");
        if is_comment {
            if t.contains("SAFETY") || t.contains("# Safety") {
                return true;
            }
        } else if !is_attr {
            return false;
        }
    }
    false
}

/// EA002: every `unsafe` keyword must be preceded by (or share a line
/// with) a `SAFETY:` comment. All sites are recorded in the inventory,
/// documented or not, so CI artifacts always carry the full audit
/// surface.
pub fn ea002_unsafe_audit(f: &SourceFile, diags: &mut Vec<Diag>, inventory: &mut Vec<UnsafeSite>) {
    for ci in 0..f.code.len() {
        let t = f.tok(ci);
        if !t.is_ident("unsafe") {
            continue;
        }
        let kind = match f.code.get(ci + 1).map(|_| f.tok(ci + 1)) {
            Some(n) if n.is_ident("impl") => "impl",
            Some(n) if n.is_ident("fn") => "fn",
            Some(n) if n.is_ident("trait") => "trait",
            Some(n) if n.is_ident("extern") => "extern",
            Some(n) if n.is_punct('{') => "block",
            _ => "block",
        };
        let documented = has_safety_comment(f, t.line);
        inventory.push(UnsafeSite {
            path: f.rel_path.clone(),
            line: t.line,
            col: t.col,
            kind,
            documented,
        });
        if !documented {
            diags.push(diag(
                "EA002",
                f,
                ci,
                format!("`unsafe` {kind} without a `// SAFETY:` comment directly above it"),
            ));
        }
    }
}

// ---- EA003: failpoint registry ---------------------------------------

/// Function names whose first string argument names a failpoint site.
const FAILPOINT_FNS: [&str; 3] = ["triggered", "panic_if_triggered", "failpoint"];

/// `persist.before_write.{short}` and `persist.before_write.{artifact}`
/// both normalize to `persist.before_write.{}` — format parameters are
/// positional wildcards, their names are documentation.
fn normalize_site(site: &str) -> String {
    let mut out = String::with_capacity(site.len());
    let mut in_brace = false;
    for c in site.chars() {
        match c {
            '{' => {
                in_brace = true;
                out.push_str("{}");
            }
            '}' => in_brace = false,
            _ if !in_brace => out.push(c),
            _ => {}
        }
    }
    out
}

struct SiteUse {
    path: String,
    line: u32,
    col: u32,
    literal: String,
}

fn collect_failpoint_sites(files: &[SourceFile]) -> Vec<SiteUse> {
    let mut out = Vec::new();
    for f in files {
        for ci in 0..f.code.len().saturating_sub(1) {
            let t = f.tok(ci);
            if t.kind != TokKind::Ident
                || !FAILPOINT_FNS.contains(&t.text.as_str())
                || !f.tok(ci + 1).is_punct('(')
            {
                continue;
            }
            // Skip the definitions themselves (`pub fn triggered(…)`).
            if ci > 0 && f.tok(ci - 1).is_ident("fn") {
                continue;
            }
            if let Some(s) = first_str_arg(f, ci + 1) {
                let lit = f.tok(s);
                out.push(SiteUse {
                    path: f.rel_path.clone(),
                    line: lit.line,
                    col: lit.col,
                    literal: lit.text.clone(),
                });
            }
        }
    }
    out
}

/// EA003: every failpoint site literal in the workspace must appear
/// exactly once in the catalogue, and every catalogue entry must match
/// at least one site — the DESIGN.md §11 failure contract can't drift
/// silently in either direction.
pub fn ea003_failpoints(
    files: &[SourceFile],
    root: &Path,
    catalog: &Path,
    diags: &mut Vec<Diag>,
) -> io::Result<()> {
    let rel = catalog.strip_prefix(root).unwrap_or(catalog).to_string_lossy().replace('\\', "/");
    if !catalog.is_file() {
        diags.push(Diag {
            code: "EA003",
            path: rel,
            line: 1,
            col: 1,
            message: "failpoint catalogue file is missing".into(),
        });
        return Ok(());
    }
    let text = std::fs::read_to_string(catalog)?;
    // entry normalized name -> (line, matched)
    let mut entries: BTreeMap<String, (u32, bool, String)> = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let site = line.split_whitespace().next().unwrap_or("");
        let norm = normalize_site(site);
        if let Some((first_line, _, _)) = entries.get(&norm) {
            diags.push(Diag {
                code: "EA003",
                path: rel.clone(),
                line: idx as u32 + 1,
                col: 1,
                message: format!(
                    "duplicate catalogue entry `{site}` (first declared on line {first_line}) — each site must appear exactly once"
                ),
            });
            continue;
        }
        entries.insert(norm, (idx as u32 + 1, false, site.to_string()));
    }
    for site in collect_failpoint_sites(files) {
        let norm = normalize_site(&site.literal);
        match entries.get_mut(&norm) {
            Some(e) => e.1 = true,
            None => diags.push(Diag {
                code: "EA003",
                path: site.path,
                line: site.line,
                col: site.col,
                message: format!(
                    "failpoint site `{}` is not declared in {rel} — add it to the catalogue (and to DESIGN.md §11) or remove the site",
                    site.literal
                ),
            }),
        }
    }
    for (line, matched, site) in entries.values() {
        if !matched {
            diags.push(Diag {
                code: "EA003",
                path: rel.clone(),
                line: *line,
                col: 1,
                message: format!(
                    "catalogue entry `{site}` matches no `faults::triggered` site in the workspace — stale entry"
                ),
            });
        }
    }
    Ok(())
}

// ---- EA004: metric-name registry -------------------------------------

/// `(callee ident, needs `!`, inferred kind)` for metric-name call
/// shapes. Method forms (`.counter("…")`) additionally require a
/// leading `.` and a direct literal argument.
const METRIC_FNS: [(&str, bool, &str); 4] = [
    ("add_counter", false, "counter"),
    ("set_gauge", false, "gauge"),
    ("counter", true, "counter"),
    ("span", true, "histogram"),
];
const METRIC_METHODS: [(&str, &str); 3] =
    [("counter", "counter"), ("gauge", "gauge"), ("histogram", "histogram")];

fn metric_name_wellformed(name: &str) -> bool {
    if name.is_empty() {
        return false;
    }
    let norm = normalize_site(name); // strips {param} to {}
    norm.replace("{}", "x")
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
}

struct MetricUse {
    path: String,
    line: u32,
    col: u32,
    name: String,
    kind: &'static str,
}

fn collect_metric_names(files: &[SourceFile]) -> Vec<MetricUse> {
    let mut out = Vec::new();
    for f in files {
        for ci in 0..f.code.len().saturating_sub(2) {
            let t = f.tok(ci);
            if t.kind != TokKind::Ident {
                continue;
            }
            // Macro / free-fn forms.
            for (name, is_macro, kind) in METRIC_FNS {
                if t.text != name {
                    continue;
                }
                let open = if is_macro {
                    if !f.tok(ci + 1).is_punct('!') || !f.tok(ci + 2).is_punct('(') {
                        continue;
                    }
                    ci + 2
                } else {
                    if !f.tok(ci + 1).is_punct('(') {
                        continue;
                    }
                    ci + 1
                };
                if ci > 0 && (f.tok(ci - 1).is_ident("fn") || f.tok(ci - 1).is_punct('.')) {
                    continue; // definition or method form (handled below)
                }
                if let Some(s) = first_str_arg(f, open) {
                    let lit = f.tok(s);
                    out.push(MetricUse {
                        path: f.rel_path.clone(),
                        line: lit.line,
                        col: lit.col,
                        name: lit.text.clone(),
                        kind,
                    });
                }
            }
            // Method forms: `.histogram("…")` with a direct literal.
            for (name, kind) in METRIC_METHODS {
                if t.text == name
                    && ci > 0
                    && f.tok(ci - 1).is_punct('.')
                    && f.tok(ci + 1).is_punct('(')
                    && ci + 2 < f.code.len()
                    && f.tok(ci + 2).kind == TokKind::Str
                {
                    let lit = f.tok(ci + 2);
                    out.push(MetricUse {
                        path: f.rel_path.clone(),
                        line: lit.line,
                        col: lit.col,
                        name: lit.text.clone(),
                        kind,
                    });
                }
            }
        }
    }
    out
}

/// One parsed registry row.
pub struct MetricEntry {
    /// Metric name, possibly with `{param}` wildcard segments.
    pub name: String,
    /// `counter`, `gauge`, or `histogram`.
    pub kind: String,
    /// Free-text description (feeds the README table).
    pub description: String,
    /// Line in the registry file.
    pub line: u32,
}

/// Parses `crates/obs/METRICS.registry`: `name kind description…` rows,
/// `#` comments. Malformed rows become EA004 diagnostics.
pub fn parse_metrics_registry(rel: &str, text: &str, diags: &mut Vec<Diag>) -> Vec<MetricEntry> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let (name, kind) = (fields.next().unwrap_or(""), fields.next().unwrap_or(""));
        let description = fields.collect::<Vec<_>>().join(" ");
        if name.is_empty() || !["counter", "gauge", "histogram"].contains(&kind) {
            diags.push(Diag {
                code: "EA004",
                path: rel.to_string(),
                line: idx as u32 + 1,
                col: 1,
                message: format!(
                    "malformed registry row {line:?}: expected `name counter|gauge|histogram description`"
                ),
            });
            continue;
        }
        out.push(MetricEntry {
            name: name.to_string(),
            kind: kind.to_string(),
            description,
            line: idx as u32 + 1,
        });
    }
    out
}

/// EA004: metric-name literals must be lowercase dotted identifiers and
/// must be declared — with a matching kind — in the registry; registry
/// rows must correspond to a live call site.
pub fn ea004_metrics(
    files: &[SourceFile],
    root: &Path,
    registry: &Path,
    diags: &mut Vec<Diag>,
) -> io::Result<()> {
    let rel = registry.strip_prefix(root).unwrap_or(registry).to_string_lossy().replace('\\', "/");
    if !registry.is_file() {
        diags.push(Diag {
            code: "EA004",
            path: rel,
            line: 1,
            col: 1,
            message: "metric-name registry file is missing".into(),
        });
        return Ok(());
    }
    let text = std::fs::read_to_string(registry)?;
    let entries = parse_metrics_registry(&rel, &text, diags);
    let mut by_norm: BTreeMap<String, (usize, bool)> = BTreeMap::new();
    for (i, e) in entries.iter().enumerate() {
        let norm = normalize_site(&e.name);
        if let Some((first, _)) = by_norm.get(&norm) {
            diags.push(Diag {
                code: "EA004",
                path: rel.clone(),
                line: e.line,
                col: 1,
                message: format!(
                    "duplicate registry row `{}` (first declared on line {})",
                    e.name, entries[*first].line
                ),
            });
            continue;
        }
        by_norm.insert(norm, (i, false));
    }
    for m in collect_metric_names(files) {
        if !metric_name_wellformed(&m.name) {
            diags.push(Diag {
                code: "EA004",
                path: m.path.clone(),
                line: m.line,
                col: m.col,
                message: format!(
                    "metric name `{}` is not a lowercase dotted identifier ([a-z0-9_.]+)",
                    m.name
                ),
            });
        }
        match by_norm.get_mut(&normalize_site(&m.name)) {
            Some((i, used)) => {
                *used = true;
                let e = &entries[*i];
                if e.kind != m.kind {
                    diags.push(Diag {
                        code: "EA004",
                        path: m.path,
                        line: m.line,
                        col: m.col,
                        message: format!(
                            "metric `{}` is used as a {} but registered as a {} in {rel}",
                            m.name, m.kind, e.kind
                        ),
                    });
                }
            }
            None => diags.push(Diag {
                code: "EA004",
                path: m.path,
                line: m.line,
                col: m.col,
                message: format!(
                    "metric `{}` is not declared in {rel} — add a `name kind description` row",
                    m.name
                ),
            }),
        }
    }
    for (i, used) in by_norm.values() {
        if !used {
            diags.push(Diag {
                code: "EA004",
                path: rel.clone(),
                line: entries[*i].line,
                col: 1,
                message: format!(
                    "registry row `{}` matches no metric call site — stale entry",
                    entries[*i].name
                ),
            });
        }
    }
    Ok(())
}

// ---- EA005: wire freeze ----------------------------------------------

/// Extracts the canonical structural dump of the DTO file: every
/// struct/enum with its field/variant names in declaration order, plus
/// the `SCHEMA_VERSION` value.
pub fn wire_shape(f: &SourceFile) -> (String, Option<String>) {
    let mut lines = Vec::new();
    let mut schema_version = None;
    let mut ci = 0usize;
    while ci < f.code.len() {
        let t = f.tok(ci);
        if t.is_ident("SCHEMA_VERSION") && schema_version.is_none() {
            // `const SCHEMA_VERSION: u32 = 1;`
            for cj in ci + 1..(ci + 8).min(f.code.len()) {
                if f.tok(cj).is_punct('=') {
                    if cj + 1 < f.code.len() && f.tok(cj + 1).kind == TokKind::Num {
                        schema_version = Some(f.tok(cj + 1).text.clone());
                    }
                    break;
                }
            }
        }
        let is_type = t.is_ident("struct") || t.is_ident("enum");
        if !is_type || ci + 1 >= f.code.len() || f.tok(ci + 1).kind != TokKind::Ident {
            ci += 1;
            continue;
        }
        let type_kw = t.text.clone();
        let name = f.tok(ci + 1).text.clone();
        // Find the opening brace (skip generics / where clauses; tuple
        // structs and unit structs record an empty member list).
        let mut cj = ci + 2;
        let mut members: Vec<String> = Vec::new();
        let mut angle = 0i32;
        while cj < f.code.len() {
            let u = f.tok(cj);
            if u.is_punct('<') {
                angle += 1;
            } else if u.is_punct('>') {
                angle -= 1;
            } else if u.is_punct(';') && angle <= 0 {
                break; // unit / tuple struct
            } else if u.is_punct('{') && angle <= 0 {
                // Walk the body at depth 1.
                let mut depth = 1i32;
                let mut ck = cj + 1;
                while ck < f.code.len() && depth > 0 {
                    let v = f.tok(ck);
                    if v.is_punct('{') || v.is_punct('(') || v.is_punct('[') {
                        depth += 1;
                    } else if v.is_punct('}') || v.is_punct(')') || v.is_punct(']') {
                        depth -= 1;
                    } else if depth == 1 && v.kind == TokKind::Ident && ck + 1 < f.code.len() {
                        let next = f.tok(ck + 1);
                        let prev = if ck > 0 { f.tok(ck - 1) } else { v };
                        if type_kw == "struct" {
                            // Field: `name :` not preceded by `:` (paths).
                            if next.is_punct(':') && !prev.is_punct(':') && !v.is_ident("pub") {
                                members.push(v.text.clone());
                            }
                        } else {
                            // Variant: ident directly after `{`, `,`, or
                            // an attribute's `]`.
                            if (prev.is_punct('{') || prev.is_punct(',') || prev.is_punct(']'))
                                && (next.is_punct(',')
                                    || next.is_punct('(')
                                    || next.is_punct('{')
                                    || next.is_punct('=')
                                    || next.is_punct('}'))
                            {
                                members.push(v.text.clone());
                            }
                        }
                    }
                    ck += 1;
                }
                cj = ck;
                break;
            }
            cj += 1;
        }
        lines.push(format!("{type_kw} {name} {{ {} }}", members.join(", ")));
        ci = cj.max(ci + 1);
    }
    if let Some(v) = &schema_version {
        lines.push(format!("const SCHEMA_VERSION = {v}"));
    }
    (lines.join("\n"), schema_version)
}

/// Renders the fingerprint file contents for the current shape.
pub fn render_fingerprint(shape: &str, schema_version: &str) -> String {
    let mut s = String::from(
        "# Wire-format fingerprint for crates/api (EA005).\n\
         # Any change to DTO struct/field names or order changes the fingerprint;\n\
         # bump SCHEMA_VERSION in crates/api/src/lib.rs, then regenerate with:\n\
         #   cargo run -p analyzer -- --workspace --bless\n",
    );
    s.push_str(&format!("schema_version={schema_version}\n"));
    s.push_str(&format!("fingerprint={:016x}\n", fnv1a64(shape.as_bytes())));
    s.push_str("# Frozen shape (informative):\n");
    for line in shape.lines() {
        s.push_str(&format!("#   {line}\n"));
    }
    s
}

/// EA005: the structural fingerprint of the API DTOs must match the
/// committed fingerprint file; drift without a `SCHEMA_VERSION` bump is
/// an error, drift with a bump demands a `--bless` to re-freeze.
pub fn ea005_wire_freeze(
    files: &[SourceFile],
    root: &Path,
    fingerprint: &Path,
    api_file: &Path,
    bless: bool,
    diags: &mut Vec<Diag>,
) -> io::Result<()> {
    let api_rel =
        api_file.strip_prefix(root).unwrap_or(api_file).to_string_lossy().replace('\\', "/");
    let Some(f) = files.iter().find(|f| f.rel_path == api_rel) else {
        return Ok(()); // api file not in this scan set (fixture runs)
    };
    let (shape, schema_version) = wire_shape(f);
    let Some(code_sv) = schema_version else {
        diags.push(Diag {
            code: "EA005",
            path: api_rel,
            line: 1,
            col: 1,
            message: "could not find `SCHEMA_VERSION` in the DTO file".into(),
        });
        return Ok(());
    };
    let code_fp = format!("{:016x}", fnv1a64(shape.as_bytes()));
    if bless {
        std::fs::write(fingerprint, render_fingerprint(&shape, &code_sv))?;
        return Ok(());
    }
    let fp_rel =
        fingerprint.strip_prefix(root).unwrap_or(fingerprint).to_string_lossy().replace('\\', "/");
    if !fingerprint.is_file() {
        diags.push(Diag {
            code: "EA005",
            path: fp_rel,
            line: 1,
            col: 1,
            message: "wire fingerprint file is missing — run `cargo run -p analyzer -- --workspace --bless`"
                .into(),
        });
        return Ok(());
    }
    let text = std::fs::read_to_string(fingerprint)?;
    let mut file_sv = None;
    let mut file_fp = None;
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("schema_version=") {
            file_sv = Some(v.trim().to_string());
        } else if let Some(v) = line.strip_prefix("fingerprint=") {
            file_fp = Some(v.trim().to_string());
        }
    }
    let (Some(file_sv), Some(file_fp)) = (file_sv, file_fp) else {
        diags.push(Diag {
            code: "EA005",
            path: fp_rel,
            line: 1,
            col: 1,
            message: "malformed fingerprint file (missing schema_version= or fingerprint=)".into(),
        });
        return Ok(());
    };
    if code_fp == file_fp && code_sv == file_sv {
        return Ok(());
    }
    if code_fp != file_fp && code_sv == file_sv {
        diags.push(Diag {
            code: "EA005",
            path: api_rel,
            line: 1,
            col: 1,
            message: format!(
                "wire DTO shape drifted (fingerprint {code_fp} != frozen {file_fp}) without a SCHEMA_VERSION bump — \
                 clients deserialize these bytes; bump SCHEMA_VERSION and re-bless, or revert the shape change"
            ),
        });
    } else {
        diags.push(Diag {
            code: "EA005",
            path: fp_rel,
            line: 1,
            col: 1,
            message: format!(
                "fingerprint file is stale (code schema_version={code_sv}, frozen={file_sv}) — \
                 run `cargo run -p analyzer -- --workspace --bless` and commit the result"
            ),
        });
    }
    Ok(())
}

// ---- EA006: panic paths ----------------------------------------------

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// EA006: the serve request path must answer typed `ApiError`s, never
/// panic. Forbidden: `.unwrap()`, `.expect(…)`, the panic macro family,
/// and indexing with an integer literal (`xs[0]`).
pub fn ea006_panic_paths(f: &SourceFile, cfg: &Config, diags: &mut Vec<Diag>) {
    if !in_scope(&f.rel_path, &PANIC_SCOPE, cfg.all_scopes) {
        return;
    }
    for ci in 0..f.code.len() {
        let t = f.tok(ci);
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && ci > 0
            && f.tok(ci - 1).is_punct('.')
            && ci + 1 < f.code.len()
            && f.tok(ci + 1).is_punct('(')
        {
            diags.push(diag(
                "EA006",
                f,
                ci,
                format!(
                    "`.{}(…)` in the serve request path — convert the failure into a typed ApiError response",
                    t.text
                ),
            ));
        }
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && ci + 1 < f.code.len()
            && f.tok(ci + 1).is_punct('!')
        {
            diags.push(diag(
                "EA006",
                f,
                ci,
                format!("`{}!` in the serve request path — a panicking handler tears down the worker; answer a typed error", t.text),
            ));
        }
        // Indexing by literal: `recv[0]` — previous token ends an
        // expression, next is an integer literal, then `]`.
        if t.is_punct('[')
            && ci > 0
            && ci + 2 < f.code.len()
            && (f.tok(ci - 1).kind == TokKind::Ident
                || f.tok(ci - 1).is_punct(')')
                || f.tok(ci - 1).is_punct(']'))
            && f.tok(ci + 1).kind == TokKind::Num
            && f.tok(ci + 2).is_punct(']')
        {
            diags.push(diag(
                "EA006",
                f,
                ci,
                "indexing by integer literal in the serve request path — use `.get(…)` or destructuring and answer a typed error".into(),
            ));
        }
    }
}

// ---- Metrics table generation -----------------------------------------

/// Renders the README metrics table from the registry (the registry is
/// the single source of truth; the README section is generated).
pub fn metrics_markdown(entries: &[MetricEntry]) -> String {
    let mut s = String::from("| metric | kind | meaning |\n|---|---|---|\n");
    for e in entries {
        s.push_str(&format!("| `{}` | {} | {} |\n", e.name, e.kind, e.description));
    }
    s
}
