//! Lightweight intra-crate call graph over the token stream.
//!
//! The concurrency checks (EA007–EA009) need more than per-line token
//! lints: whether the epoll reactor can *reach* a blocking call two
//! hops away, or whether a lock is held *across* a call that may take
//! another lock. This module recovers just enough structure from the
//! [`SourceFile`] token stream to answer those questions:
//!
//! * **function boundaries** — every `fn name …` with a body, located
//!   by tracking paren/angle depth from the name to the opening brace;
//! * **per-function events** — in body order: block opens/closes,
//!   statement ends, `drop(guard)` releases, lock acquisitions
//!   (`recv.lock()` / `.read()` / `.write()` with zero arguments), and
//!   calls (`name(…)`, method or free);
//! * **call edges** — resolved by *simple name within the same crate*
//!   (the first two path components of the file, e.g. `crates/serve`).
//!
//! The approximation is deliberately conservative in what it claims:
//! cross-crate calls, function-pointer/closure invocations, and macro
//! expansions produce **no** edges (documented false negatives — the
//! runtime shadow-lock verifier in `explainti-sync` is the dynamic
//! complement). Method names so generic they would connect unrelated
//! code (`push`, `get`, `clone`, …) are stop-listed out of the edge
//! set. See DESIGN.md §17 for the full soundness discussion.

use std::collections::BTreeMap;

use crate::lexer::TokKind;
use crate::SourceFile;

/// Call names that never become intra-crate edges: they are ubiquitous
/// std/container methods, and a same-named local function is far more
/// likely to be a coincidence than a real call target.
pub const STOP_METHODS: [&str; 23] = [
    "push", "pop", "insert", "get", "remove", "clear", "len", "is_empty", "contains", "take",
    "read", "write", "lock", "next", "clone", "drop", "fmt", "eq", "hash", "new", "add", "sub",
    "record",
];

/// One recovered function definition.
pub struct Func {
    /// Function name (the identifier after `fn`).
    pub name: String,
    /// Index into the scanned file list.
    pub file: usize,
    /// Workspace-relative path of the defining file.
    pub rel_path: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Code-view index range of the body: `[open `{`, close `}`]`.
    pub body: (usize, usize),
    /// Body events in source order (nested `fn` bodies excluded).
    pub events: Vec<Event>,
}

/// One lock-acquisition site: `receiver.lock()` / `.read()` / `.write()`
/// with an empty argument list.
#[derive(Clone)]
pub struct AcquireSite {
    /// The identifier the guard method is called on, walking back over
    /// index/call groups (`slots[i].lock()` → `slots`,
    /// `registry().lock()` → `registry`, `self.io.out.lock()` → `out`).
    pub receiver: String,
    /// `lock`, `read`, or `write`.
    pub method: String,
    /// 1-based line of the method identifier.
    pub line: u32,
    /// 1-based column of the method identifier.
    pub col: u32,
    /// Guard binding when the statement is `let [mut] name = …` or a
    /// plain `name = …` re-binding; `None` for temporaries.
    pub binding: Option<String>,
}

/// One call site that may become an intra-crate edge.
#[derive(Clone)]
pub struct CallSite {
    /// Simple callee name (method or last path segment).
    pub name: String,
    /// Receiver identifier for method calls (`self.ep.wait(…)` → `ep`).
    pub receiver: Option<String>,
    /// 1-based line of the callee identifier.
    pub line: u32,
    /// 1-based column of the callee identifier.
    pub col: u32,
}

/// A body event, in source order.
pub enum Event {
    /// `{` — a nested block opens.
    Open,
    /// `}` — the innermost block closes.
    Close,
    /// `;` or `,` — statement/argument boundary (temporary guards die).
    Semi,
    /// `drop(name)` — an explicit guard release.
    Drop(String),
    /// A lock acquisition.
    Acquire(AcquireSite),
    /// A call (macros excluded, stop-listed names excluded).
    Call(CallSite),
}

/// The recovered functions plus a (crate, name) resolution index.
pub struct CallGraph {
    /// Every function with a body, in scan order.
    pub funcs: Vec<Func>,
    index: BTreeMap<(String, String), Vec<usize>>,
}

/// The resolution domain for `rel_path`: the first two components for
/// `crates/<name>/…`, otherwise the first component (`src`, or a
/// fixture directory). Calls only resolve to functions with the same
/// key.
pub fn crate_key(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(member)) => format!("crates/{member}"),
        (Some(first), _) => first.to_string(),
        _ => String::new(),
    }
}

impl CallGraph {
    /// Recovers every function in `files` and indexes them by
    /// `(crate_key, name)`.
    pub fn build(files: &[SourceFile]) -> Self {
        let mut funcs = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            collect_funcs(f, fi, &mut funcs);
        }
        // Nested-function body ranges, per file, so a parent's event
        // walk can skip them.
        for i in 0..funcs.len() {
            let (file, body) = (funcs[i].file, funcs[i].body);
            let nested: Vec<(usize, usize)> = funcs
                .iter()
                .filter(|g| g.file == file && g.body.0 > body.0 && g.body.1 < body.1)
                .map(|g| {
                    // Exclude the nested head too (`fn name (…)` tokens
                    // before its `{` would otherwise read as a call).
                    (g.body.0, g.body.1)
                })
                .collect();
            funcs[i].events = body_events(&files[funcs[i].file], body, &nested);
        }
        let mut index: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (i, func) in funcs.iter().enumerate() {
            index.entry((crate_key(&func.rel_path), func.name.clone())).or_default().push(i);
        }
        Self { funcs, index }
    }

    /// Function indices named `name` in crate `key` (empty when the
    /// call does not resolve inside the crate).
    pub fn resolve(&self, key: &str, name: &str) -> &[usize] {
        self.index.get(&(key.to_string(), name.to_string())).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Code-view indices of function `fi`'s own body tokens, with
    /// nested `fn` bodies excluded — for checks that need raw token
    /// shapes rather than the event stream.
    pub fn own_body_indices(&self, fi: usize) -> Vec<usize> {
        let func = &self.funcs[fi];
        let nested: Vec<(usize, usize)> = self
            .funcs
            .iter()
            .filter(|g| g.file == func.file && g.body.0 > func.body.0 && g.body.1 < func.body.1)
            .map(|g| g.body)
            .collect();
        let mut out = Vec::new();
        let mut ci = func.body.0 + 1;
        'walk: while ci < func.body.1 {
            for &(ns, ne) in &nested {
                if ci >= ns && ci <= ne {
                    ci = ne + 1;
                    continue 'walk;
                }
            }
            out.push(ci);
            ci += 1;
        }
        out
    }
}

/// Scans `f` for `fn` items (including nested ones) and appends them.
fn collect_funcs(f: &SourceFile, fi: usize, out: &mut Vec<Func>) {
    let n = f.code.len();
    let mut ci = 0usize;
    while ci + 1 < n {
        if !(f.tok(ci).is_ident("fn") && f.tok(ci + 1).kind == TokKind::Ident) {
            ci += 1;
            continue;
        }
        let name = f.tok(ci + 1).text.clone();
        let line = f.tok(ci).line;
        // Walk the signature to the body `{` (or `;` for bodiless trait
        // methods). `->` must not count as closing an angle bracket.
        let mut j = ci + 2;
        let mut paren = 0i32;
        let mut angle = 0i32;
        let mut open = None;
        while j < n {
            let t = f.tok(j);
            if t.is_punct('(') || t.is_punct('[') {
                paren += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                paren -= 1;
            } else if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                if !(j > 0 && f.tok(j - 1).is_punct('-')) {
                    angle -= 1;
                }
            } else if paren == 0 && angle <= 0 && t.is_punct('{') {
                open = Some(j);
                break;
            } else if paren == 0 && angle <= 0 && t.is_punct(';') {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            ci += 2;
            continue;
        };
        // Match the body braces.
        let mut depth = 0i32;
        let mut close = open;
        for k in open..n {
            if f.tok(k).is_punct('{') {
                depth += 1;
            } else if f.tok(k).is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    close = k;
                    break;
                }
            }
        }
        out.push(Func {
            name,
            file: fi,
            rel_path: f.rel_path.clone(),
            line,
            body: (open, close),
            events: Vec::new(),
        });
        // Keep scanning *inside* the body so nested fns are found too.
        ci += 2;
    }
}

/// From the token *before* a `.`/group at code index `ci`, walks back
/// over balanced `(…)` / `[…]` groups to the receiver identifier.
fn receiver_at(f: &SourceFile, mut ci: usize) -> Option<String> {
    loop {
        let t = f.tok(ci);
        if t.is_punct(')') || t.is_punct(']') {
            let (open, close) = if t.is_punct(')') { ('(', ')') } else { ('[', ']') };
            let mut depth = 0i32;
            while ci > 0 {
                let u = f.tok(ci);
                if u.is_punct(close) {
                    depth += 1;
                } else if u.is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ci -= 1;
            }
            if ci == 0 {
                return None;
            }
            ci -= 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            return Some(t.text.clone());
        }
        return None;
    }
}

/// Finds the guard binding for an acquisition whose method ident is at
/// code index `ci`: walks back (bounded) to the statement boundary and
/// matches `let [mut] name =` or a plain `name =` re-binding.
fn binding_at(f: &SourceFile, ci: usize) -> Option<String> {
    let mut k = ci;
    let mut steps = 0;
    while k > 0 && steps < 60 {
        k -= 1;
        steps += 1;
        let t = f.tok(k);
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            k += 1;
            break;
        }
        if k == 0 {
            break;
        }
    }
    if f.tok(k).is_ident("let") {
        let mut m = k + 1;
        if m < f.code.len() && f.tok(m).is_ident("mut") {
            m += 1;
        }
        if m + 1 < f.code.len() && f.tok(m).kind == TokKind::Ident && f.tok(m + 1).is_punct('=') {
            return Some(f.tok(m).text.clone());
        }
        return None;
    }
    // `name = … .lock();` re-binding (assignment, not `==`).
    if f.tok(k).kind == TokKind::Ident
        && k + 2 < f.code.len()
        && f.tok(k + 1).is_punct('=')
        && !f.tok(k + 2).is_punct('=')
        && k + 2 <= ci
    {
        return Some(f.tok(k).text.clone());
    }
    None
}

/// Extracts the event stream of one body, skipping `nested` sub-ranges.
fn body_events(f: &SourceFile, body: (usize, usize), nested: &[(usize, usize)]) -> Vec<Event> {
    let mut events = Vec::new();
    let mut ci = body.0 + 1;
    'walk: while ci < body.1 {
        for &(ns, ne) in nested {
            if ci >= ns && ci <= ne {
                ci = ne + 1;
                continue 'walk;
            }
        }
        let t = f.tok(ci);
        if t.is_punct('{') {
            events.push(Event::Open);
        } else if t.is_punct('}') {
            events.push(Event::Close);
        } else if t.is_punct(';') || t.is_punct(',') {
            events.push(Event::Semi);
        } else if t.kind == TokKind::Ident {
            let followed_by_paren = ci + 1 < body.1 && f.tok(ci + 1).is_punct('(');
            let after_dot = ci > 0 && f.tok(ci - 1).is_punct('.');
            let after_fn = ci > 0 && f.tok(ci - 1).is_ident("fn");
            // `drop(guard)` — explicit release.
            if t.text == "drop"
                && !after_dot
                && followed_by_paren
                && ci + 3 < body.1
                && f.tok(ci + 2).kind == TokKind::Ident
                && f.tok(ci + 3).is_punct(')')
            {
                events.push(Event::Drop(f.tok(ci + 2).text.clone()));
                ci += 4;
                continue;
            }
            // `recv.lock()` / `.read()` / `.write()` with no arguments.
            if after_dot
                && followed_by_paren
                && matches!(t.text.as_str(), "lock" | "read" | "write")
                && ci + 2 < body.1
                && f.tok(ci + 2).is_punct(')')
            {
                if let Some(receiver) = receiver_at(f, ci - 2) {
                    events.push(Event::Acquire(AcquireSite {
                        receiver,
                        method: t.text.clone(),
                        line: t.line,
                        col: t.col,
                        binding: binding_at(f, ci),
                    }));
                    ci += 3;
                    continue;
                }
            }
            // A call: `name(…)` that is not a definition head and not a
            // stop-listed name. Macros never match (`name!` has `!`
            // before the paren).
            if followed_by_paren && !after_fn && !STOP_METHODS.contains(&t.text.as_str()) {
                let receiver = if after_dot && ci >= 2 { receiver_at(f, ci - 2) } else { None };
                events.push(Event::Call(CallSite {
                    name: t.text.clone(),
                    receiver,
                    line: t.line,
                    col: t.col,
                }));
            }
        }
        ci += 1;
    }
    events
}
