//! # analyzer — repo-specific invariant lints for the ExplainTI workspace
//!
//! A dependency-free static-analysis pass that turns this repository's
//! conventions into CI-gated errors. It scans the workspace's Rust
//! sources with a hand-rolled token scanner ([`lexer`]) and enforces
//! ten invariants, each with a stable error code:
//!
//! | code  | invariant |
//! |-------|-----------|
//! | EA001 | determinism: no wall clocks, entropy RNGs, or hash-order iteration in inference/explanation crates |
//! | EA002 | every `unsafe` site carries a `// SAFETY:` comment (plus a machine-readable inventory) |
//! | EA003 | every failpoint site literal appears exactly once in `crates/faults/FAILPOINTS.catalog`, and vice versa |
//! | EA004 | every metric name literal is declared (with the right kind) in `crates/obs/METRICS.registry`, and vice versa |
//! | EA005 | the `crates/api` DTO shape matches the committed `crates/api/wire.fingerprint` unless `SCHEMA_VERSION` was bumped |
//! | EA006 | no `unwrap`/`expect`/`panic!`-family macros or indexing-by-literal in the `crates/serve` request path |
//! | EA007 | every lock acquisition maps to a class in `crates/sync/LOCKS.registry`, and no path through the [call graph](callgraph) inverts the declared rank order |
//! | EA008 | the epoll reactor thread never blocks: no sleeps/joins/receives, no file I/O, no non-`reactor` lock classes in its transitive reach |
//! | EA009 | the SIMD/quantized kernel paths never heap-allocate transitively — scratch comes from callers or the bump arena |
//! | EA010 | every weakened atomic `Ordering::…` site carries a `// ORDERING:` justification (plus a machine-readable inventory) |
//!
//! EA007–EA009 run on the whole-workspace [call graph](callgraph) —
//! a conservative, intra-crate approximation whose soundness limits
//! are documented in DESIGN.md §17. The runtime shadow-lock verifier
//! in `explainti-sync` is the dynamic complement for what the static
//! pass cannot see.
//!
//! Findings can be suppressed via a committed allowlist (`analyzer.allow`);
//! unused allowlist entries are themselves an error (EA000), so the file
//! can only shrink, never rot. See DESIGN.md §12 for the rationale that
//! maps each invariant back to a guarantee the paper's evaluation
//! depends on.

#![warn(missing_docs)]

pub mod callgraph;
pub mod checks;
pub mod cli;
pub mod lexer;
pub mod locks;

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use lexer::{lex, Tok};

/// Stable diagnostic codes. `EA000` is reserved for analyzer
/// self-hygiene (unused suppressions, malformed registry files).
pub const CODES: [&str; 11] = [
    "EA000", "EA001", "EA002", "EA003", "EA004", "EA005", "EA006", "EA007", "EA008", "EA009",
    "EA010",
];

/// One finding, pointing at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Stable error code (`EA001`…).
    pub code: &'static str,
    /// Path relative to the workspace root (or the registry file).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diag {
    /// rustc-style rendering: `path:line:col: error[EAnnn]: message`.
    pub fn render(&self) -> String {
        format!("{}:{}:{}: error[{}]: {}", self.path, self.line, self.col, self.code, self.message)
    }
}

/// One `unsafe` occurrence, for the EA002 inventory artifact.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Path relative to the workspace root.
    pub path: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// 1-based column of the `unsafe` keyword.
    pub col: u32,
    /// `impl`, `fn`, `block`, `extern`, or `trait`.
    pub kind: &'static str,
    /// Whether a `SAFETY:` comment was found.
    pub documented: bool,
}

/// One registered lock-acquisition site, for the EA007 inventory
/// artifact.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Path relative to the workspace root.
    pub path: String,
    /// 1-based line of the `lock`/`read`/`write` identifier.
    pub line: u32,
    /// 1-based column of the `lock`/`read`/`write` identifier.
    pub col: u32,
    /// The `LOCKS.registry` class this site maps to.
    pub class: String,
    /// The class's rank in the declared acquisition order.
    pub rank: u16,
    /// The receiver identifier at the site.
    pub receiver: String,
}

/// One atomic memory-ordering site, for the EA010 inventory artifact.
#[derive(Debug, Clone)]
pub struct OrderingSite {
    /// Path relative to the workspace root.
    pub path: String,
    /// 1-based line of the `Ordering` token.
    pub line: u32,
    /// 1-based column of the `Ordering` token.
    pub col: u32,
    /// `Relaxed`, `Acquire`, `Release`, `AcqRel`, or `SeqCst`.
    pub ordering: String,
    /// Whether an `ORDERING:` comment was found (always true for the
    /// sites that pass; `SeqCst` needs none).
    pub documented: bool,
}

/// A lexed source file plus the derived views the checks need.
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Raw source lines (for comment-adjacency heuristics).
    pub lines: Vec<String>,
    /// All tokens, comments included.
    pub toks: Vec<Tok>,
    /// `mask[i]` is true when token `i` sits inside a `#[cfg(test)]`
    /// item (those tokens are invisible to every check).
    pub test_mask: Vec<bool>,
    /// Indices into `toks` of non-comment tokens outside test code —
    /// the view every check walks.
    pub code: Vec<usize>,
}

impl SourceFile {
    /// Lexes `text` and computes the test mask and code view.
    pub fn parse(rel_path: &str, text: &str) -> Self {
        let toks = lex(text);
        let test_mask = compute_test_mask(&toks);
        let code = toks
            .iter()
            .enumerate()
            .filter(|(i, t)| !t.is_comment() && !test_mask[*i])
            .map(|(i, _)| i)
            .collect();
        Self {
            rel_path: rel_path.to_string(),
            lines: text.lines().map(str::to_string).collect(),
            toks,
            test_mask,
            code,
        }
    }

    /// The token for code-view index `ci`.
    pub fn tok(&self, ci: usize) -> &Tok {
        &self.toks[self.code[ci]]
    }
}

/// Marks every token belonging to a `#[cfg(test)]`-gated item.
///
/// Heuristic, not a full parser: after a `#[cfg(…)]` attribute whose
/// argument tokens include the ident `test`, the following item is
/// masked — up to the matching `}` of its first `{`, or to the first
/// top-level `;` for brace-less items (`use`, type aliases).
fn compute_test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let code: Vec<usize> =
        toks.iter().enumerate().filter(|(_, t)| !t.is_comment()).map(|(i, _)| i).collect();
    let mut ci = 0usize;
    while ci + 4 < code.len() {
        let is_cfg_test = toks[code[ci]].is_punct('#')
            && toks[code[ci + 1]].is_punct('[')
            && toks[code[ci + 2]].is_ident("cfg")
            && toks[code[ci + 3]].is_punct('(');
        if !is_cfg_test {
            ci += 1;
            continue;
        }
        // Scan the attribute argument for the ident `test`.
        let mut j = ci + 4;
        let mut depth = 1i32;
        let mut has_test = false;
        while j < code.len() && depth > 0 {
            let t = &toks[code[j]];
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
            } else if t.is_ident("test") {
                has_test = true;
            }
            j += 1;
        }
        if !has_test || j >= code.len() || !toks[code[j]].is_punct(']') {
            ci += 1;
            continue;
        }
        let attr_start = ci;
        let mut k = j + 1; // first token of the gated item (or next attr)
        let mut brace_depth = 0i32;
        let mut entered = false;
        while k < code.len() {
            let t = &toks[code[k]];
            if t.is_punct('{') {
                brace_depth += 1;
                entered = true;
            } else if t.is_punct('}') {
                brace_depth -= 1;
                if entered && brace_depth == 0 {
                    break;
                }
            } else if t.is_punct(';') && !entered {
                break;
            }
            k += 1;
        }
        let start_tok = code[attr_start];
        let end_tok = if k < code.len() { code[k] } else { *code.last().unwrap_or(&0) };
        for (i, m) in mask.iter_mut().enumerate() {
            if i >= start_tok && i <= end_tok {
                *m = true;
            }
        }
        ci = k + 1;
    }
    // Comments inside masked regions inherit the mask (any comment
    // between two masked tokens).
    mask
}

// ---- Allowlist --------------------------------------------------------

/// One suppression entry: `CODE path [reason…]`. A path ending in `/`
/// suppresses the whole subtree.
pub struct AllowEntry {
    /// The suppressed code (`EA001`…).
    pub code: String,
    /// Workspace-relative path or directory prefix.
    pub path: String,
    /// Line in the allowlist file (for unused-entry diagnostics).
    pub line: u32,
    /// How many findings this entry suppressed in the current run.
    pub used: u32,
}

/// Parsed `analyzer.allow` file.
pub struct Allowlist {
    /// Workspace-relative path of the allowlist file itself.
    pub path: String,
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the suppression file. Unknown codes are an immediate
    /// EA000 (pushed into `diags`).
    pub fn parse(path: &str, text: &str, diags: &mut Vec<Diag>) -> Self {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            let (Some(code), Some(p)) = (fields.next(), fields.next()) else {
                diags.push(Diag {
                    code: "EA000",
                    path: path.to_string(),
                    line: idx as u32 + 1,
                    col: 1,
                    message: format!("malformed allowlist entry {line:?}: expected `CODE path`"),
                });
                continue;
            };
            if !CODES.contains(&code) {
                diags.push(Diag {
                    code: "EA000",
                    path: path.to_string(),
                    line: idx as u32 + 1,
                    col: 1,
                    message: format!("unknown code {code:?} in allowlist entry"),
                });
                continue;
            }
            let code =
                CODES.iter().find(|c| **c == code).map(|c| c.to_string()).unwrap_or_default();
            entries.push(AllowEntry { code, path: p.to_string(), line: idx as u32 + 1, used: 0 });
        }
        Self { path: path.to_string(), entries }
    }

    fn suppresses(&mut self, d: &Diag) -> bool {
        for e in &mut self.entries {
            let hit = e.code == d.code
                && (e.path == d.path || (e.path.ends_with('/') && d.path.starts_with(&e.path)));
            if hit {
                e.used += 1;
                return true;
            }
        }
        false
    }
}

// ---- Configuration and driver -----------------------------------------

/// What to scan and which baseline files to reconcile against.
pub struct Config {
    /// Workspace root; every reported path is relative to it.
    pub root: PathBuf,
    /// Explicit files/directories to scan. Empty means the default
    /// workspace set: `src/` and every `crates/*/src/`.
    pub paths: Vec<PathBuf>,
    /// Suppression file (default `analyzer.allow` when present).
    pub allowlist: Option<PathBuf>,
    /// Failpoint catalogue for EA003 (`None` skips the check).
    pub failpoints_catalog: Option<PathBuf>,
    /// Metric-name registry for EA004 (`None` skips the check).
    pub metrics_registry: Option<PathBuf>,
    /// Committed wire fingerprint for EA005 (`None` skips the check).
    pub wire_fingerprint: Option<PathBuf>,
    /// The DTO source file EA005 fingerprints.
    pub api_file: Option<PathBuf>,
    /// Lock-class registry for EA007/EA008 (`None` skips both checks).
    pub locks_registry: Option<PathBuf>,
    /// Treat every scanned file as in scope for the path-scoped checks
    /// (EA001, EA006) — used by fixture tests.
    pub all_scopes: bool,
    /// Re-bless the wire fingerprint instead of checking it.
    pub bless: bool,
}

impl Config {
    /// Workspace-mode configuration rooted at `root`, with all default
    /// registry locations.
    pub fn workspace(root: &Path) -> Self {
        Self {
            root: root.to_path_buf(),
            paths: Vec::new(),
            allowlist: Some(root.join("analyzer.allow")),
            failpoints_catalog: Some(root.join("crates/faults/FAILPOINTS.catalog")),
            metrics_registry: Some(root.join("crates/obs/METRICS.registry")),
            wire_fingerprint: Some(root.join("crates/api/wire.fingerprint")),
            api_file: Some(root.join("crates/api/src/lib.rs")),
            locks_registry: Some(root.join("crates/sync/LOCKS.registry")),
            all_scopes: false,
            bless: false,
        }
    }
}

/// Everything one run produced.
pub struct Report {
    /// Findings that survived the allowlist, sorted by position.
    pub diags: Vec<Diag>,
    /// How many findings the allowlist suppressed.
    pub suppressed: usize,
    /// Every `unsafe` site encountered (EA002 inventory).
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Every registered lock-acquisition site (EA007 inventory).
    pub lock_sites: Vec<LockSite>,
    /// Every atomic memory-ordering site (EA010 inventory).
    pub ordering_sites: Vec<OrderingSite>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Directories never scanned: build output, vendored stand-in crates
/// (third-party API surface, not ours), and the analyzer's own violation
/// fixtures.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", "fixtures", ".git"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name == "tests" || name == "benches" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The default workspace scan set: the root binary's `src/` and every
/// workspace crate's `src/` (integration `tests/` directories and
/// `vendor/` are exercised by the compiler and Miri, not by this pass).
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        collect_rs_files(&src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> =
            std::fs::read_dir(&crates)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for member in members {
            let msrc = member.join("src");
            if msrc.is_dir() {
                collect_rs_files(&msrc, &mut files)?;
            }
        }
    }
    Ok(files)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

/// Runs every configured check over the configured scan set.
pub fn run(cfg: &Config) -> io::Result<Report> {
    let mut files = Vec::new();
    let list = if cfg.paths.is_empty() {
        workspace_files(&cfg.root)?
    } else {
        let mut out = Vec::new();
        for p in &cfg.paths {
            let p = if p.is_absolute() { p.clone() } else { cfg.root.join(p) };
            if p.is_dir() {
                collect_rs_files(&p, &mut out)?;
            } else {
                out.push(p);
            }
        }
        out
    };
    for path in &list {
        let text = std::fs::read_to_string(path)?;
        files.push(SourceFile::parse(&rel_path(&cfg.root, path), &text));
    }

    let mut diags: Vec<Diag> = Vec::new();
    let mut unsafe_sites: Vec<UnsafeSite> = Vec::new();
    let mut lock_sites: Vec<LockSite> = Vec::new();
    let mut ordering_sites: Vec<OrderingSite> = Vec::new();

    for f in &files {
        checks::ea001_determinism(f, cfg, &mut diags);
        checks::ea002_unsafe_audit(f, &mut diags, &mut unsafe_sites);
        checks::ea006_panic_paths(f, cfg, &mut diags);
    }
    if let Some(cat) = &cfg.failpoints_catalog {
        checks::ea003_failpoints(&files, &cfg.root, cat, &mut diags)?;
    }
    if let Some(reg) = &cfg.metrics_registry {
        checks::ea004_metrics(&files, &cfg.root, reg, &mut diags)?;
    }
    if let (Some(fp), Some(api)) = (&cfg.wire_fingerprint, &cfg.api_file) {
        checks::ea005_wire_freeze(&files, &cfg.root, fp, api, cfg.bless, &mut diags)?;
    }

    // The call-graph-backed concurrency checks (EA007–EA010).
    let cg = callgraph::CallGraph::build(&files);
    if let Some(reg_path) = &cfg.locks_registry {
        if let Some(mut reg) = locks::load_registry(&cfg.root, reg_path, &mut diags)? {
            locks::ea007_lock_order(&cg, &mut reg, &mut diags, &mut lock_sites);
            locks::ea008_reactor_purity(&files, &cg, &reg, &mut diags);
        }
    }
    locks::ea009_hot_alloc(&files, &cg, &mut diags);
    locks::ea010_ordering_audit(&files, &mut diags, &mut ordering_sites);

    // Apply the allowlist, then flag entries that suppressed nothing.
    let mut suppressed = 0usize;
    if let Some(allow_path) = &cfg.allowlist {
        if allow_path.is_file() {
            let text = std::fs::read_to_string(allow_path)?;
            let rel = rel_path(&cfg.root, allow_path);
            let mut pre = Vec::new();
            let mut allow = Allowlist::parse(&rel, &text, &mut pre);
            diags.retain(|d| {
                let s = allow.suppresses(d);
                suppressed += s as usize;
                !s
            });
            diags.extend(pre);
            for e in &allow.entries {
                if e.used == 0 {
                    diags.push(Diag {
                        code: "EA000",
                        path: allow.path.clone(),
                        line: e.line,
                        col: 1,
                        message: format!(
                            "unused allowlist entry `{} {}` — delete it (suppressions must never outlive their finding)",
                            e.code, e.path
                        ),
                    });
                }
            }
        }
    }

    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.code).cmp(&(b.path.as_str(), b.line, b.col, b.code))
    });
    unsafe_sites.sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
    lock_sites
        .sort_by(|a, b| (a.path.as_str(), a.line, a.col).cmp(&(b.path.as_str(), b.line, b.col)));
    ordering_sites
        .sort_by(|a, b| (a.path.as_str(), a.line, a.col).cmp(&(b.path.as_str(), b.line, b.col)));
    Ok(Report {
        diags,
        suppressed,
        unsafe_sites,
        lock_sites,
        ordering_sites,
        files_scanned: files.len(),
    })
}

// ---- Output rendering -------------------------------------------------

/// Escapes a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Report {
    /// The run as a JSON document (diagnostics + unsafe inventory),
    /// suitable as a CI artifact.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"diagnostics\": [\n");
        for (i, d) in self.diags.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"code\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}{}\n",
                d.code,
                json_escape(&d.path),
                d.line,
                d.col,
                json_escape(&d.message),
                if i + 1 < self.diags.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"unsafe_inventory\": [\n");
        for (i, u) in self.unsafe_sites.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"path\": \"{}\", \"line\": {}, \"col\": {}, \"kind\": \"{}\", \"documented\": {}}}{}\n",
                json_escape(&u.path),
                u.line,
                u.col,
                u.kind,
                u.documented,
                if i + 1 < self.unsafe_sites.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"lock_inventory\": [\n");
        for (i, l) in self.lock_sites.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"path\": \"{}\", \"line\": {}, \"col\": {}, \"class\": \"{}\", \"rank\": {}, \"receiver\": \"{}\"}}{}\n",
                json_escape(&l.path),
                l.line,
                l.col,
                json_escape(&l.class),
                l.rank,
                json_escape(&l.receiver),
                if i + 1 < self.lock_sites.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"ordering_inventory\": [\n");
        for (i, o) in self.ordering_sites.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"path\": \"{}\", \"line\": {}, \"col\": {}, \"ordering\": \"{}\", \"documented\": {}}}{}\n",
                json_escape(&o.path),
                o.line,
                o.col,
                o.ordering,
                o.documented,
                if i + 1 < self.ordering_sites.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "  ],\n  \"files_scanned\": {},\n  \"suppressed\": {},\n  \"error_count\": {}\n}}\n",
            self.files_scanned,
            self.suppressed,
            self.diags.len()
        ));
        s
    }

    /// Summarises counts per code, for the text footer.
    pub fn counts_by_code(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for d in &self.diags {
            *m.entry(d.code).or_insert(0) += 1;
        }
        m
    }
}

/// FNV-1a 64 over `bytes` (same constants as `explainti-core`'s
/// snapshot checksums — one hash family across the repo's integrity
/// checks).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}
