// A file with none of the lint violations, even with every scope on.

/// Adds two numbers.
pub fn add(a: u32, b: u32) -> u32 {
    a + b
}
