//! EA007 fixture: an intra-procedural inversion, an unregistered
//! acquisition, and a transitive inversion across a call.

use std::sync::Mutex;

pub fn inversion(a: &Mutex<u32>, b: &Mutex<u32>) {
    let gb = b.lock();
    let ga = a.lock();
    drop(ga);
    drop(gb);
}

pub fn unregistered(c: &Mutex<u32>) {
    let gc = c.lock();
    drop(gc);
}

pub fn outer(a: &Mutex<u32>, b: &Mutex<u32>) {
    let gb = b.lock();
    helper(a);
    drop(gb);
}

pub fn helper(a: &Mutex<u32>) {
    let ga = a.lock();
    drop(ga);
}
