// EA005 fixture: a minimal DTO file whose shape is fingerprinted.

pub const SCHEMA_VERSION: u32 = 1;

pub struct Wire {
    pub a: u32,
    pub b: u32,
}
