// EA002 fixture: the two undocumented sites must be flagged; the two
// documented ones appear only in the inventory.

// SAFETY: documented — nothing is dereferenced.
unsafe fn documented() {}

unsafe fn undocumented() {} // VIOLATION

pub fn blocks() {
    let x = 1u8;
    let p = &x as *const u8;
    // SAFETY: p points at a live local.
    let _ok = unsafe { *p };
    let _bad = unsafe { *p }; // VIOLATION
}
