// EA001 fixture: every line marked VIOLATION must be flagged.

pub fn violations() {
    let t0 = std::time::Instant::now(); // VIOLATION: wall-clock read
    let _wall = std::time::SystemTime::now(); // VIOLATION: wall-clock type
    let mut rng = rand::rngs::SmallRng::from_entropy(); // VIOLATION: entropy
    let map: HashMap<String, usize> = HashMap::new();
    let it = map.iter(); // VIOLATION: hash-order iteration
    let set: HashSet<usize> = HashSet::new();
    for x in set { // VIOLATION: hash-order for loop
        drop(x);
    }
    drop((t0, rng, it));
}
