//! EA008 fixture reactor: one sanctioned reactor-class acquisition,
//! one non-reactor lock acquisition, and a transitive escape into a
//! helper that blocks two hops away.

use std::sync::Mutex;

pub struct Loop {
    pub dirty: Mutex<bool>,
    pub state: Mutex<u32>,
}

impl Loop {
    pub fn run(&self) {
        let d = self.dirty.lock();
        drop(d);
        self.tick();
    }

    pub fn tick(&self) {
        let s = self.state.lock();
        drop(s);
        drain_backlog(&[]);
    }
}
