//! EA008 fixture helper: blocks, two hops from the reactor.

use std::time::Duration;

pub fn drain_backlog(q: &[u8]) {
    persist(q);
}

pub fn persist(q: &[u8]) {
    std::thread::sleep(Duration::from_millis(1));
    let _ = std::fs::read("backlog.bin");
    let _n = q.len();
}
