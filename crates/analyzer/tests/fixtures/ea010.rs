//! EA010 fixture: one undocumented weakened ordering, one documented,
//! one `SeqCst` (exempt).

use std::sync::atomic::{AtomicU64, Ordering};

pub static N: AtomicU64 = AtomicU64::new(0);

pub fn bump() -> u64 {
    N.fetch_add(1, Ordering::Relaxed)
}

pub fn bump_documented() -> u64 {
    // ORDERING: Relaxed — fixture counter with no cross-thread contract.
    N.fetch_add(1, Ordering::Relaxed)
}

pub fn strict() -> u64 {
    N.load(Ordering::SeqCst)
}
