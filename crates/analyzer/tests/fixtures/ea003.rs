// EA003 fixture: one catalogued site, one uncatalogued site; the
// catalogue also advertises a site this file never references.

pub fn drill() {
    if explainti_faults::triggered("fixture.catalogued") {
        return;
    }
    if explainti_faults::triggered("fixture.uncatalogued") { // VIOLATION
        return;
    }
}
