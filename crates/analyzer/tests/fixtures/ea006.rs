// EA006 fixture: every panicking shortcut must be flagged.

pub fn handler(input: Option<u32>, parts: Vec<u32>) -> u32 {
    let v = input.unwrap(); // VIOLATION
    let w = std::env::var("X").expect("missing"); // VIOLATION
    if parts.is_empty() {
        panic!("empty"); // VIOLATION
    }
    let first = parts[0]; // VIOLATION
    let _ = w;
    first + v
}
