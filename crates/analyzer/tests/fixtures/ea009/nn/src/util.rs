//! EA009 fixture helper: the allocation lives here, off the kernel
//! file but on its call path.

pub fn scratch(n: usize) -> Vec<f32> {
    vec![0.0; n]
}
