//! EA009 fixture kernel: reaches an allocating helper one hop away;
//! the `from_*` constructor is exempt.

pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let s = scratch(a.len());
    let mut acc = 0.0;
    let mut i = 0;
    while i < a.len() {
        acc += a[i] * b[i] + s[i];
        i += 1;
    }
    acc
}

pub fn from_f32(v: &[f32]) -> Vec<f32> {
    v.to_vec()
}
