// EA004 fixture: malformed name, undeclared name, kind mismatch; the
// registry also carries one stale row.

pub fn emit() {
    explainti_obs::counter!("Bad-Name", 1); // VIOLATION x2: malformed and undeclared
    explainti_obs::counter!("fixture.undeclared", 1); // VIOLATION: not in registry
    explainti_obs::set_gauge("fixture.mismatch", 1.0); // VIOLATION: registered as counter
    explainti_obs::counter!("fixture.declared", 1);
}
