//! Fixture tests: one deliberately-violating file per error code, with
//! exact code + line/col assertions, both directions of registry drift
//! (EA003/EA004), wire-freeze drift with and without a schema bump
//! (EA005), allowlist suppression and self-hygiene (EA000) — plus a
//! smoke test that the real workspace is clean through the actual
//! binary.

use std::path::PathBuf;

use analyzer::{run, Config};

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// A fixture-mode config: scan `paths` under the fixtures dir with
/// every path-scoped check forced on and no registries wired up.
fn fixture_cfg(paths: &[&str]) -> Config {
    Config {
        root: fixtures_root(),
        paths: paths.iter().map(PathBuf::from).collect(),
        allowlist: None,
        failpoints_catalog: None,
        metrics_registry: None,
        wire_fingerprint: None,
        api_file: None,
        locks_registry: None,
        all_scopes: true,
        bless: false,
    }
}

/// `(code, path, line, col)` of every diagnostic, in report order.
fn positions(report: &analyzer::Report) -> Vec<(&'static str, String, u32, u32)> {
    report.diags.iter().map(|d| (d.code, d.path.clone(), d.line, d.col)).collect()
}

#[test]
fn ea001_flags_every_nondeterminism_site() {
    let report = run(&fixture_cfg(&["ea001.rs"])).unwrap();
    let p = "ea001.rs".to_string();
    assert_eq!(
        positions(&report),
        vec![
            ("EA001", p.clone(), 4, 25),  // Instant::now
            ("EA001", p.clone(), 5, 28),  // SystemTime
            ("EA001", p.clone(), 6, 41),  // from_entropy
            ("EA001", p.clone(), 8, 18),  // map.iter()
            ("EA001", p.clone(), 10, 14), // for x in set
        ]
    );
    assert!(report.diags[0].message.contains("Instant::now"));
    assert!(report.diags[4].message.contains("for … in set"));
}

#[test]
fn ea001_scope_gate_ignores_out_of_scope_files() {
    let mut cfg = fixture_cfg(&["ea001.rs"]);
    cfg.all_scopes = false; // "ea001.rs" is not under crates/core/src/ etc.
    let report = run(&cfg).unwrap();
    assert!(report.diags.is_empty(), "out-of-scope file must not be checked: {:?}", report.diags);
}

#[test]
fn ea002_flags_undocumented_unsafe_and_inventories_all_sites() {
    let report = run(&fixture_cfg(&["ea002.rs"])).unwrap();
    let p = "ea002.rs".to_string();
    assert_eq!(
        positions(&report),
        vec![
            ("EA002", p.clone(), 7, 1),   // unsafe fn undocumented
            ("EA002", p.clone(), 14, 16), // unsafe block
        ]
    );
    assert!(report.diags[0].message.contains("`unsafe` fn"));
    assert!(report.diags[1].message.contains("`unsafe` block"));
    // All four sites are inventoried, documented or not.
    assert_eq!(report.unsafe_sites.len(), 4);
    assert_eq!(report.unsafe_sites.iter().filter(|u| u.documented).count(), 2);
}

#[test]
fn ea003_catalogue_drift_is_caught_in_both_directions() {
    let mut cfg = fixture_cfg(&["ea003.rs"]);
    cfg.failpoints_catalog = Some(fixtures_root().join("ea003.catalog"));
    let report = run(&cfg).unwrap();
    assert_eq!(
        positions(&report),
        vec![
            ("EA003", "ea003.catalog".to_string(), 3, 1), // stale entry
            ("EA003", "ea003.rs".to_string(), 8, 36),     // uncatalogued site
        ]
    );
    assert!(report.diags[0].message.contains("fixture.stale"));
    assert!(report.diags[0].message.contains("stale entry"));
    assert!(report.diags[1].message.contains("fixture.uncatalogued"));
}

#[test]
fn ea003_missing_catalogue_is_an_error() {
    let mut cfg = fixture_cfg(&["ea003.rs"]);
    cfg.failpoints_catalog = Some(fixtures_root().join("no-such.catalog"));
    let report = run(&cfg).unwrap();
    assert_eq!(report.diags.len(), 1);
    assert_eq!(report.diags[0].code, "EA003");
    assert!(report.diags[0].message.contains("missing"));
}

#[test]
fn ea004_flags_malformed_undeclared_mismatched_and_stale() {
    let mut cfg = fixture_cfg(&["ea004.rs"]);
    cfg.metrics_registry = Some(fixtures_root().join("ea004.registry"));
    let report = run(&cfg).unwrap();
    assert_eq!(
        positions(&report),
        vec![
            ("EA004", "ea004.registry".to_string(), 4, 1), // stale row
            ("EA004", "ea004.rs".to_string(), 5, 29),      // malformed name
            ("EA004", "ea004.rs".to_string(), 5, 29),      // …which is also undeclared
            ("EA004", "ea004.rs".to_string(), 6, 29),      // undeclared
            ("EA004", "ea004.rs".to_string(), 7, 30),      // kind mismatch
        ]
    );
    assert!(report.diags[0].message.contains("fixture.stale"));
    let line5: Vec<&str> = report.diags[1..3].iter().map(|d| d.message.as_str()).collect();
    assert!(line5.iter().any(|m| m.contains("not a lowercase dotted identifier")));
    assert!(line5.iter().any(|m| m.contains("not declared")));
    assert!(report.diags[4].message.contains("used as a gauge but registered as a counter"));
}

#[test]
fn ea005_shape_drift_without_version_bump_is_an_error() {
    let mut cfg = fixture_cfg(&["ea005_api.rs"]);
    cfg.api_file = Some(fixtures_root().join("ea005_api.rs"));
    cfg.wire_fingerprint = Some(fixtures_root().join("ea005.drift.fingerprint"));
    let report = run(&cfg).unwrap();
    assert_eq!(report.diags.len(), 1);
    let d = &report.diags[0];
    assert_eq!((d.code, d.path.as_str(), d.line, d.col), ("EA005", "ea005_api.rs", 1, 1));
    assert!(d.message.contains("without a SCHEMA_VERSION bump"));
}

#[test]
fn ea005_version_bump_demands_a_rebless() {
    let mut cfg = fixture_cfg(&["ea005_api.rs"]);
    cfg.api_file = Some(fixtures_root().join("ea005_api.rs"));
    cfg.wire_fingerprint = Some(fixtures_root().join("ea005.stale.fingerprint"));
    let report = run(&cfg).unwrap();
    assert_eq!(report.diags.len(), 1);
    let d = &report.diags[0];
    assert_eq!((d.code, d.path.as_str()), ("EA005", "ea005.stale.fingerprint"));
    assert!(d.message.contains("stale"));
}

#[test]
fn ea005_bless_round_trips_to_a_clean_check() {
    let fp = std::env::temp_dir().join("explainti-analyzer-ea005-bless.fingerprint");
    let _ = std::fs::remove_file(&fp);
    let mut cfg = fixture_cfg(&["ea005_api.rs"]);
    cfg.api_file = Some(fixtures_root().join("ea005_api.rs"));
    cfg.wire_fingerprint = Some(fp.clone());
    cfg.bless = true;
    let report = run(&cfg).unwrap();
    assert!(report.diags.is_empty());
    // The freshly blessed fingerprint must verify clean.
    cfg.bless = false;
    let report = run(&cfg).unwrap();
    assert!(report.diags.is_empty(), "blessed fingerprint failed to verify: {:?}", report.diags);
    let text = std::fs::read_to_string(&fp).unwrap();
    assert!(text.contains("schema_version=1"));
    assert!(text.contains("struct Wire { a, b }"));
    let _ = std::fs::remove_file(&fp);
}

#[test]
fn ea006_flags_every_panicking_shortcut() {
    let report = run(&fixture_cfg(&["ea006.rs"])).unwrap();
    let p = "ea006.rs".to_string();
    assert_eq!(
        positions(&report),
        vec![
            ("EA006", p.clone(), 4, 19), // .unwrap()
            ("EA006", p.clone(), 5, 32), // .expect(…)
            ("EA006", p.clone(), 7, 9),  // panic!
            ("EA006", p.clone(), 9, 22), // parts[0]
        ]
    );
    assert!(report.diags[3].message.contains("indexing by integer literal"));
}

#[test]
fn allowlist_suppresses_and_counts() {
    let mut cfg = fixture_cfg(&["ea006.rs"]);
    cfg.allowlist = Some(fixtures_root().join("ea006.allow"));
    let report = run(&cfg).unwrap();
    assert!(report.diags.is_empty(), "allowlisted findings resurfaced: {:?}", report.diags);
    assert_eq!(report.suppressed, 4);
}

#[test]
fn ea000_unused_allowlist_entry_is_an_error() {
    let mut cfg = fixture_cfg(&["clean.rs"]);
    cfg.allowlist = Some(fixtures_root().join("ea000.allow"));
    let report = run(&cfg).unwrap();
    assert_eq!(report.diags.len(), 1);
    let d = &report.diags[0];
    assert_eq!((d.code, d.path.as_str(), d.line), ("EA000", "ea000.allow", 3));
    assert!(d.message.contains("unused allowlist entry"));
}

#[test]
fn ea007_flags_inversion_unregistered_and_stale_registry_row() {
    let mut cfg = fixture_cfg(&["ea007.rs"]);
    cfg.locks_registry = Some(fixtures_root().join("ea007.locks"));
    let report = run(&cfg).unwrap();
    assert_eq!(
        positions(&report),
        vec![
            ("EA007", "ea007.locks".to_string(), 4, 1), // stale row
            ("EA007", "ea007.rs".to_string(), 8, 16),   // direct inversion
            ("EA007", "ea007.rs".to_string(), 14, 16),  // unregistered lock
            ("EA007", "ea007.rs".to_string(), 20, 5),   // held across call
        ]
    );
    assert!(report.diags[0].message.contains("stale entry"));
    assert!(report.diags[1].message.contains("while holding `fixture.b`"));
    assert!(report.diags[2].message.contains("unregistered lock"));
    assert!(report.diags[3].message.contains("held across a call to `helper`"));
    // The two live classes are inventoried with their ranks.
    let classes: Vec<(&str, u16)> =
        report.lock_sites.iter().map(|l| (l.class.as_str(), l.rank)).collect();
    assert!(classes.contains(&("fixture.a", 10)));
    assert!(classes.contains(&("fixture.b", 20)));
}

#[test]
fn ea007_missing_registry_is_an_error() {
    let mut cfg = fixture_cfg(&["ea007.rs"]);
    cfg.locks_registry = Some(fixtures_root().join("no-such.locks"));
    let report = run(&cfg).unwrap();
    assert_eq!(report.diags.len(), 1);
    assert_eq!(report.diags[0].code, "EA007");
    assert!(report.diags[0].message.contains("missing"));
}

#[test]
fn ea008_flags_blocking_two_hops_deep_and_non_reactor_locks() {
    let mut cfg = fixture_cfg(&["ea008/event_loop.rs", "ea008/backlog.rs"]);
    cfg.locks_registry = Some(fixtures_root().join("ea008.locks"));
    let report = run(&cfg).unwrap();
    assert_eq!(
        positions(&report),
        vec![
            ("EA008", "ea008/backlog.rs".to_string(), 10, 18), // sleep, two hops deep
            ("EA008", "ea008/backlog.rs".to_string(), 11, 18), // fs::read
            ("EA008", "ea008/event_loop.rs".to_string(), 20, 28), // non-reactor class
        ]
    );
    // The chain names every hop from the reactor entry.
    assert!(report.diags[0].message.contains("`tick` → `drain_backlog` → `persist`"));
    assert!(report.diags[1].message.contains("blocking file I/O"));
    assert!(report.diags[2].message.contains("non-reactor lock class `fixture.state`"));
    // The reactor-flagged `dirty` acquisition is sanctioned: no EA008
    // diag points at it, but it still appears in the lock inventory.
    assert!(report.lock_sites.iter().any(|l| l.class == "fixture.dirty"));
}

#[test]
fn ea009_flags_transitive_allocation_but_not_constructors() {
    let report = run(&fixture_cfg(&["ea009/nn/src/simd.rs", "ea009/nn/src/util.rs"])).unwrap();
    assert_eq!(positions(&report), vec![("EA009", "ea009/nn/src/util.rs".to_string(), 5, 5)]);
    // The allocation is reported against the helper, with the kernel
    // entry chain; the `from_*` constructor's `.to_vec()` is exempt.
    assert!(report.diags[0].message.contains("`dot` → `scratch`"));
}

#[test]
fn ea010_flags_undocumented_weak_orderings_and_inventories_all_sites() {
    let report = run(&fixture_cfg(&["ea010.rs"])).unwrap();
    assert_eq!(positions(&report), vec![("EA010", "ea010.rs".to_string(), 9, 20)]);
    assert!(report.diags[0].message.contains("Ordering::Relaxed"));
    // All three sites inventoried: the undocumented Relaxed, the
    // documented Relaxed, and the exempt SeqCst.
    assert_eq!(report.ordering_sites.len(), 3);
    assert_eq!(report.ordering_sites.iter().filter(|o| o.documented).count(), 1);
    assert!(report.ordering_sites.iter().any(|o| o.ordering == "SeqCst"));
}

#[test]
fn clean_file_stays_clean_under_all_scopes() {
    let report = run(&fixture_cfg(&["clean.rs"])).unwrap();
    assert!(report.diags.is_empty());
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn workspace_is_clean() {
    let report = run(&Config::workspace(&workspace_root())).unwrap();
    let rendered: Vec<String> = report.diags.iter().map(|d| d.render()).collect();
    assert!(rendered.is_empty(), "workspace has analyzer findings:\n{}", rendered.join("\n"));
    // The audit surface stays intentional: growing it means new unsafe
    // code, which must come with SAFETY comments and a test plan.
    assert!(report.unsafe_sites.iter().all(|u| u.documented));
}

#[test]
fn binary_exits_nonzero_on_fixtures_and_emits_json() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_analyzer"))
        .args(["--root"])
        .arg(fixtures_root())
        .args(["--all-scopes", "--format", "json", "ea006.rs"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "expected exit 1 on a violating fixture");
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"code\": \"EA006\""));
    assert!(json.contains("\"error_count\": 4"));
}

#[test]
fn binary_exits_zero_on_the_workspace() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_analyzer"))
        .args(["--root"])
        .arg(workspace_root())
        .args(["--workspace"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "workspace lint failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn binary_rejects_unknown_flags_with_usage_exit() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_analyzer"))
        .args(["--no-such-flag"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
