//! # explainti-serve
//!
//! A dependency-free event-driven HTTP/1.1 micro-batching inference
//! server for ExplainTI, exposed via `explainti serve`. The moving
//! parts, each its own module:
//!
//! - [`event_loop`] — a raw-syscall epoll loop owning every socket:
//!   nonblocking accept with a hard connection limit (typed 429 +
//!   `Retry-After`), per-connection read deadlines (slow-loris → typed
//!   408), keep-alive with pipelining, and write flushing.
//! - [`conn`] — per-connection state machines (reading → dispatched →
//!   writing) plus the dispatcher-side response sink, which streams
//!   large table responses as chunked transfer-encoding.
//! - [`http`] — an incremental buffer-based HTTP/1.1 parser and
//!   response renderer; no socket I/O of its own.
//! - [`queue`] — a bounded MPMC queue whose consumers drain batches;
//!   the backpressure point (full queue → HTTP 503).
//! - [`cache`] — an LRU cache of full responses keyed by a hash of
//!   `(title, header, cells)`, so repeat predictions short-circuit the
//!   model *including* their explanations.
//! - [`server`] — the declarative route table, dispatcher + worker
//!   pools, and graceful shutdown (drain in-flight work, then stop).
//!
//! Endpoints: `POST /v1/interpret` (a whole table or a single column,
//! as [`explainti_api`] DTOs), `GET /v1/healthz`, `GET /v1/metrics`
//! (the `explainti-obs` registry snapshot), `GET /v1/config`,
//! `POST /v1/shutdown`.

#![warn(missing_docs)]

pub mod cache;
pub mod conn;
pub mod event_loop;
pub mod http;
pub mod queue;
pub mod server;

pub use server::{start, ServeConfig, ServerHandle};
