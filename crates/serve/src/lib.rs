//! # explainti-serve
//!
//! A dependency-free (std::net) HTTP/1.1 micro-batching inference
//! server for ExplainTI, exposed via `explainti serve`. Three moving
//! parts, each its own module:
//!
//! - [`queue`] — a bounded MPMC queue whose consumers drain batches;
//!   the backpressure point (full queue → HTTP 503).
//! - [`cache`] — an LRU cache of full responses keyed by a hash of
//!   `(title, header, cells)`, so repeat predictions short-circuit the
//!   model *including* their explanations.
//! - [`server`] — the accept loop, connection handlers, worker pool,
//!   and graceful shutdown (drain in-flight work, then stop).
//!
//! Endpoints: `POST /v1/interpret` (a whole table or a single column,
//! as [`explainti_api`] DTOs), `GET /v1/healthz`, `GET /v1/metrics`
//! (the `explainti-obs` registry snapshot), `POST /v1/shutdown`.

#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod queue;
pub mod server;

pub use server::{start, ServeConfig, ServerHandle};
