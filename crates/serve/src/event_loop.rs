//! Dependency-free epoll event loop for the serving front-end.
//!
//! One thread owns every socket: the nonblocking listener, a wake pipe
//! dispatcher threads poke after enqueueing response bytes, and all
//! accepted connections ([`crate::conn::Conn`]). Level-triggered epoll
//! with a bounded wait doubles as the deadline sweep tick, enforcing
//! per-connection read deadlines (slow-loris → typed 408) and the hard
//! connection limit (typed 429 + `Retry-After`) without any extra
//! timers.
//!
//! The epoll bindings in [`sys`] are raw syscalls via inline assembly —
//! the workspace vendors no libc, and `std` exposes no epoll — limited
//! to `x86_64`/`aarch64` Linux. Other Unix targets compile but
//! [`sys::Epoll::new`] reports `Unsupported` at startup.

use std::collections::HashMap;
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use explainti_api::ApiError;

use crate::conn::{Conn, FlushOutcome, ReadOutcome, Waker};
use crate::http;
use crate::server::{DispatchJob, Shared};

/// Raw epoll interface. Syscall numbers and flag values are part of the
/// Linux userspace ABI and are stable by kernel policy.
pub mod sys {
    use std::io;
    use std::os::fd::RawFd;

    /// Readable.
    pub const EPOLLIN: u32 = 0x001;
    /// Writable.
    pub const EPOLLOUT: u32 = 0x004;
    /// Error condition on the fd.
    pub const EPOLLERR: u32 = 0x008;
    /// Hang-up (both halves closed).
    pub const EPOLLHUP: u32 = 0x010;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: usize = 0o2000000;

    /// Mirrors `struct epoll_event`. The kernel ABI packs it on x86_64
    /// (12 bytes) but uses natural alignment elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        /// `EPOLL*` readiness bits.
        pub events: u32,
        /// The caller's token (`epoll_data`).
        pub data: u64,
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    mod raw {
        pub const SYS_CLOSE: usize = 3;
        pub const SYS_EPOLL_CTL: usize = 233;
        pub const SYS_EPOLL_PWAIT: usize = 281;
        pub const SYS_EPOLL_CREATE1: usize = 291;

        /// Six-argument Linux syscall.
        ///
        /// # Safety
        /// The caller must pass a valid syscall number with arguments
        /// matching that syscall's contract (pointers live and sized).
        pub unsafe fn syscall6(
            n: usize,
            a1: usize,
            a2: usize,
            a3: usize,
            a4: usize,
            a5: usize,
            a6: usize,
        ) -> isize {
            let ret: isize;
            // SAFETY: the x86_64 syscall ABI takes the number in rax and
            // arguments in rdi/rsi/rdx/r10/r8/r9; the kernel clobbers
            // rcx and r11, which are declared as outputs.
            unsafe {
                core::arch::asm!(
                    "syscall",
                    inlateout("rax") n => ret,
                    in("rdi") a1,
                    in("rsi") a2,
                    in("rdx") a3,
                    in("r10") a4,
                    in("r8") a5,
                    in("r9") a6,
                    lateout("rcx") _,
                    lateout("r11") _,
                    options(nostack),
                );
            }
            ret
        }
    }

    #[cfg(all(target_os = "linux", target_arch = "aarch64"))]
    mod raw {
        pub const SYS_EPOLL_CREATE1: usize = 20;
        pub const SYS_EPOLL_CTL: usize = 21;
        pub const SYS_EPOLL_PWAIT: usize = 22;
        pub const SYS_CLOSE: usize = 57;

        /// Six-argument Linux syscall.
        ///
        /// # Safety
        /// The caller must pass a valid syscall number with arguments
        /// matching that syscall's contract (pointers live and sized).
        pub unsafe fn syscall6(
            n: usize,
            a1: usize,
            a2: usize,
            a3: usize,
            a4: usize,
            a5: usize,
            a6: usize,
        ) -> isize {
            let ret: isize;
            // SAFETY: the aarch64 syscall ABI takes the number in x8 and
            // arguments in x0-x5; the result returns in x0.
            unsafe {
                core::arch::asm!(
                    "svc #0",
                    in("x8") n,
                    inlateout("x0") a1 => ret,
                    in("x1") a2,
                    in("x2") a3,
                    in("x3") a4,
                    in("x4") a5,
                    in("x5") a6,
                    options(nostack),
                );
            }
            ret
        }
    }

    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    /// An epoll instance (closed on drop).
    pub struct Epoll {
        fd: RawFd,
    }

    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    impl Epoll {
        /// Creates a close-on-exec epoll instance.
        pub fn new() -> io::Result<Self> {
            let flags = EPOLL_CLOEXEC;
            // SAFETY: epoll_create1 takes a flags word and no pointers.
            let ret = unsafe { raw::syscall6(raw::SYS_EPOLL_CREATE1, flags, 0, 0, 0, 0, 0) };
            check(ret).map(|fd| Self { fd: fd as RawFd })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let ev = EpollEvent { events, data: token };
            // SAFETY: `ev` is a live, correctly laid out epoll_event for
            // the duration of the call; DEL ignores the pointer.
            let ret = unsafe {
                raw::syscall6(
                    raw::SYS_EPOLL_CTL,
                    self.fd as usize,
                    op as usize,
                    fd as usize,
                    core::ptr::addr_of!(ev) as usize,
                    0,
                    0,
                )
            };
            check(ret).map(|_| ())
        }

        /// Registers `fd` for readability (plus writability if asked).
        pub fn add(&self, fd: RawFd, token: u64, want_write: bool) -> io::Result<()> {
            let mut events = EPOLLIN;
            if want_write {
                events |= EPOLLOUT;
            }
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        /// Updates the interest set for an already registered `fd`.
        pub fn modify(&self, fd: RawFd, token: u64, want_write: bool) -> io::Result<()> {
            let mut events = EPOLLIN;
            if want_write {
                events |= EPOLLOUT;
            }
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        /// Deregisters `fd`.
        pub fn del(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Waits up to `timeout_ms` for events, filling `events`.
        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            if events.is_empty() {
                return Ok(0);
            }
            loop {
                // SAFETY: the events pointer covers `events.len()`
                // writable epoll_event slots for the duration of the
                // call; a null sigmask makes epoll_pwait behave as
                // epoll_wait (sigsetsize is then ignored, 8 passed for
                // form).
                let ret = unsafe {
                    raw::syscall6(
                        raw::SYS_EPOLL_PWAIT,
                        self.fd as usize,
                        events.as_mut_ptr() as usize,
                        events.len(),
                        timeout_ms as usize,
                        0,
                        8,
                    )
                };
                match check(ret) {
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    other => return other,
                }
            }
        }
    }

    #[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
    impl Epoll {
        /// Unsupported target: the server reports this at startup.
        pub fn new() -> io::Result<Self> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "the event loop requires epoll (Linux x86_64/aarch64)",
            ))
        }

        pub fn add(&self, _fd: RawFd, _token: u64, _want_write: bool) -> io::Result<()> {
            Err(io::ErrorKind::Unsupported.into())
        }

        pub fn modify(&self, _fd: RawFd, _token: u64, _want_write: bool) -> io::Result<()> {
            Err(io::ErrorKind::Unsupported.into())
        }

        pub fn del(&self, _fd: RawFd) -> io::Result<()> {
            Err(io::ErrorKind::Unsupported.into())
        }

        pub fn wait(&self, _events: &mut [EpollEvent], _timeout_ms: i32) -> io::Result<usize> {
            Err(io::ErrorKind::Unsupported.into())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            {
                // SAFETY: `self.fd` is an epoll fd this struct owns and
                // has not closed before.
                unsafe { raw::syscall6(raw::SYS_CLOSE, self.fd as usize, 0, 0, 0, 0, 0) };
            }
        }
    }
}

/// Token reserved for the listener socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token reserved for the wake pipe.
const TOKEN_WAKER: u64 = u64::MAX - 1;
/// Epoll wait bound; also the deadline-sweep tick.
const TICK_MS: i32 = 50;
/// How long a drain waits for in-flight connections before force-close.
const DRAIN_GRACE: Duration = Duration::from_secs(5);
/// How long a terminally failed connection may sit with its error
/// response undrained (peer not reading) before force-close.
const FAIL_FLUSH_GRACE: Duration = Duration::from_secs(5);
/// Event buffer per wait call.
const EVENT_BATCH: usize = 256;

/// Tunables the server hands the loop (mirrors `ServeConfig`).
pub struct LoopCfg {
    /// Hard cap on concurrently open connections (typed 429 beyond).
    pub max_conns: usize,
    /// Incomplete-request deadline (typed 408 beyond).
    pub read_timeout: Duration,
    /// Idle keep-alive connections older than this are closed.
    pub idle_timeout: Duration,
}

struct EventLoop {
    ep: sys::Epoll,
    listener: Option<TcpListener>,
    waker_rx: UnixStream,
    waker: Waker,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    shared: Arc<Shared>,
    cfg: LoopCfg,
    drain_deadline: Option<Instant>,
}

/// Builds the epoll set (listener + wake pipe) up front so `start()`
/// can fail fast on unsupported targets, then returns the running
/// loop's entry point and the waker dispatchers use.
pub(crate) fn prepare(
    listener: TcpListener,
    shared: Arc<Shared>,
    cfg: LoopCfg,
) -> std::io::Result<(impl FnOnce() + Send + 'static, Waker)> {
    listener.set_nonblocking(true)?;
    let (waker_tx, waker_rx) = UnixStream::pair()?;
    waker_rx.set_nonblocking(true)?;
    // The sender half must be nonblocking too: a full pipe has to fail
    // the dispatcher's wake write (a pending wake-up already exists),
    // not park the dispatcher thread on a blocking socket.
    waker_tx.set_nonblocking(true)?;
    let waker = Waker::new(
        Arc::new(explainti_sync::OrderedMutex::new(
            &explainti_sync::classes::SERVE_WAKER_DIRTY,
            Default::default(),
        )),
        Arc::new(waker_tx),
    );
    let ep = sys::Epoll::new()?;
    ep.add(listener.as_raw_fd(), TOKEN_LISTENER, false)?;
    ep.add(waker_rx.as_raw_fd(), TOKEN_WAKER, false)?;
    let mut el = EventLoop {
        ep,
        listener: Some(listener),
        waker_rx,
        waker: waker.clone(),
        conns: HashMap::new(),
        next_id: 0,
        shared,
        cfg,
        drain_deadline: None,
    };
    Ok((move || el.run(), waker))
}

impl EventLoop {
    fn run(&mut self) {
        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; EVENT_BATCH];
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                self.begin_drain();
                // Reap connections as they go idle so join() returns as
                // soon as in-flight work finishes, not at the grace bound.
                let idle: Vec<u64> =
                    self.conns.iter().filter(|(_, c)| c.is_idle()).map(|(id, _)| *id).collect();
                for id in idle {
                    self.remove_conn(id);
                }
                let deadline_passed = self.drain_deadline.is_some_and(|d| Instant::now() >= d);
                if self.conns.is_empty() || deadline_passed {
                    break;
                }
            }
            let n = match self.ep.wait(&mut events, TICK_MS) {
                Ok(n) => n,
                Err(_) => break,
            };
            let fired: Vec<(u64, u32)> = events
                .iter()
                .take(n)
                .map(|ev| {
                    // Copy out of the (packed on x86_64) struct before use.
                    let data = ev.data;
                    let flags = ev.events;
                    (data, flags)
                })
                .collect();
            for (token, flags) in fired {
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.drain_waker_pipe(),
                    id => self.conn_event(id, flags),
                }
            }
            for id in self.waker.take_dirty() {
                self.advance(id);
            }
            self.sweep_deadlines();
        }
        // Teardown: everything (listener, epoll fd, sockets) drops here.
        self.conns.clear();
    }

    /// First shutdown sighting: stop accepting and set the grace bound.
    fn begin_drain(&mut self) {
        if self.drain_deadline.is_some() {
            return;
        }
        self.drain_deadline = Some(Instant::now() + DRAIN_GRACE);
        if let Some(listener) = self.listener.take() {
            let _ = self.ep.del(listener.as_raw_fd());
            // Dropping the listener closes the port so new connects are
            // refused during the drain.
        }
        let idle: Vec<u64> =
            self.conns.iter().filter(|(_, c)| c.is_idle()).map(|(id, _)| *id).collect();
        for id in idle {
            self.remove_conn(id);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else { return };
            match listener.accept() {
                Ok((stream, _addr)) => self.admit(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    explainti_obs::counter!("serve.accept.errors", 1);
                    return;
                }
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        explainti_obs::counter!("serve.conns.accepted", 1);
        let over_limit = self.conns.len() >= self.cfg.max_conns;
        if over_limit || explainti_faults::triggered("serve.conn.accept") {
            explainti_obs::counter!("serve.conns.rejected", 1);
            self.reject(stream);
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let id = self.next_id;
        self.next_id += 1;
        if self.ep.add(stream.as_raw_fd(), id, false).is_err() {
            return;
        }
        self.conns.insert(id, Conn::new(stream));
        explainti_obs::set_gauge("serve.conns.active", self.conns.len() as f64);
    }

    /// Best-effort typed 429 on a connection we will not keep: the
    /// socket is still blocking, but the response is one small write.
    fn reject(&mut self, stream: TcpStream) {
        let _ = stream.set_nonblocking(true);
        let retry_after_s = 1;
        let err = ApiError::too_many_connections(
            format!("connection limit ({}) reached", self.cfg.max_conns),
            retry_after_s,
        );
        let trace_id = explainti_obs::next_trace_id();
        let tid = trace_id.to_string();
        let bytes = http::render_error(&err, &tid, false, None);
        let mut remaining: &[u8] = &bytes;
        // One pass over the buffer; backpressure on a brand-new socket
        // means the client is not reading, so give up rather than park.
        while !remaining.is_empty() {
            match std::io::Write::write(&mut (&stream), remaining) {
                Ok(0) => break,
                Ok(n) => remaining = remaining.get(n..).unwrap_or_default(),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }

    fn drain_waker_pipe(&mut self) {
        let mut sink = [0u8; 256];
        loop {
            match (&self.waker_rx).read(&mut sink) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn conn_event(&mut self, id: u64, flags: u32) {
        if flags & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            // Let a final read observe the error/EOF; advance() reaps.
            if let Some(conn) = self.conns.get_mut(&id) {
                conn.peer_closed = true;
            }
            self.remove_conn(id);
            return;
        }
        if flags & sys::EPOLLIN != 0 {
            self.readable(id);
        }
        if flags & sys::EPOLLOUT != 0 {
            self.advance(id);
        }
    }

    fn readable(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        match conn.on_readable() {
            ReadOutcome::Ok => {
                self.dispatch_next(id);
                self.advance(id);
            }
            ReadOutcome::Closed => self.remove_conn(id),
            ReadOutcome::Error(err) => self.fail_conn(id, err),
        }
    }

    /// Terminally fails a connection: quiesces it (no further parsing,
    /// buffering, or deadline re-matching), enqueues exactly one typed
    /// error response, and closes once it drains. Used for malformed
    /// streams and read-deadline (408) expiries.
    fn fail_conn(&mut self, id: u64, err: ApiError) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        if conn.failed_since.is_some() {
            // Already answered; the single error response is draining.
            return;
        }
        conn.quiesce();
        if conn.in_flight {
            // A response is mid-stream; never interleave an error body.
            conn.poisoned = true;
            return;
        }
        let trace_id = explainti_obs::next_trace_id();
        let tid = trace_id.to_string();
        let mut rtrace = explainti_obs::RequestTrace::new(trace_id);
        rtrace.set_endpoint("conn");
        rtrace.set_status(err.status());
        conn.enqueue_direct_close(http::render_error(&err, &tid, false, None));
        rtrace.finish();
        self.advance(id);
    }

    /// Hands the next pipelined request to the dispatcher pool, keeping
    /// at most one in flight per connection so responses stay ordered.
    fn dispatch_next(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        if conn.in_flight {
            return;
        }
        let Some(mut req) = conn.pending.pop_front() else { return };
        if self.drain_deadline.is_some() {
            // Close after the response: the loop is draining.
            req.keep_alive = false;
        }
        if conn.requests_dispatched > 0 {
            explainti_obs::counter!("serve.keepalive.reused", 1);
        }
        conn.requests_dispatched += 1;
        conn.in_flight = true;
        let keep_alive = req.keep_alive;
        let job = DispatchJob {
            conn_id: id,
            request: req,
            io: Arc::clone(&conn.io),
            waker: self.waker.clone(),
        };
        if self.shared.dispatch.try_push(job).is_err() {
            // Queue full/closed: answer inline so ordering holds, and
            // complete the response so the finished-response path keeps
            // dispatching any remaining pipelined requests.
            conn.in_flight = false;
            let err = ApiError::new(explainti_api::ErrorCode::QueueFull, "dispatch queue is full");
            let trace_id = explainti_obs::next_trace_id();
            let tid = trace_id.to_string();
            let bytes = http::render_error(&err, &tid, keep_alive, None);
            conn.io.enqueue(bytes);
            conn.io.finish_response(!keep_alive);
            // No advance here: both callers (readable, advance's
            // finished-response path) flush right after this returns.
        }
    }

    /// Flushes outbound bytes, completes finished responses, re-arms
    /// `EPOLLOUT`, dispatches follow-on pipelined requests, and reaps
    /// the connection when it is done.
    fn advance(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        let (outcome, response_done, close_after) = conn.flush();
        if outcome == FlushOutcome::Closed {
            self.remove_conn(id);
            return;
        }
        if response_done {
            conn.in_flight = false;
            conn.idle_since = Instant::now();
            if conn.poisoned {
                self.remove_conn(id);
                return;
            }
        }
        let want_write = outcome == FlushOutcome::Blocked;
        if want_write != conn.want_write {
            conn.want_write = want_write;
            let _ = self.ep.modify(conn.stream.as_raw_fd(), id, want_write);
        }
        if close_after && !conn.in_flight {
            self.remove_conn(id);
            return;
        }
        if conn.peer_closed && conn.is_idle() {
            self.remove_conn(id);
            return;
        }
        if response_done {
            self.dispatch_next(id);
            // The follow-on response may already be partially writable.
            let has_output = self.conns.get(&id).is_some_and(|c| c.io.has_output());
            if has_output {
                self.advance(id);
            }
        }
    }

    /// Read-deadline (slow-loris) and idle-timeout sweep; runs every
    /// epoll tick, so deadlines resolve within ~[`TICK_MS`].
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        let read_cutoff = now.checked_sub(self.cfg.read_timeout).unwrap_or(now);
        let idle_cutoff = now.checked_sub(self.cfg.idle_timeout).unwrap_or(now);
        let fail_cutoff = now.checked_sub(FAIL_FLUSH_GRACE).unwrap_or(now);
        let mut stalled: Vec<u64> = Vec::new();
        let mut idle: Vec<u64> = Vec::new();
        let mut expired: Vec<u64> = Vec::new();
        for (id, conn) in &self.conns {
            if let Some(failed_at) = conn.failed_since {
                // Terminal: the only question left is whether the peer
                // reads its error response within the grace window.
                if failed_at < fail_cutoff {
                    expired.push(*id);
                }
                continue;
            }
            let deadline_hit = conn.has_stalled_read(read_cutoff);
            let drilled = conn.partial_since.is_some()
                && !conn.in_flight
                && conn.pending.is_empty()
                && explainti_faults::triggered("serve.conn.stall");
            if deadline_hit || drilled {
                stalled.push(*id);
            } else if conn.is_idle() && conn.idle_since < idle_cutoff {
                idle.push(*id);
            }
        }
        for id in expired {
            self.remove_conn(id);
        }
        for id in stalled {
            explainti_obs::counter!("serve.conns.timeout", 1);
            let err = ApiError::request_timeout(
                format!("request not completed within {} ms", self.cfg.read_timeout.as_millis()),
                1,
            );
            self.fail_conn(id, err);
        }
        for id in idle {
            self.remove_conn(id);
        }
    }

    fn remove_conn(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            let _ = self.ep.del(conn.stream.as_raw_fd());
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
        explainti_obs::set_gauge("serve.conns.active", self.conns.len() as f64);
    }
}
