//! Per-connection state for the event-driven front-end.
//!
//! Each accepted socket gets a [`Conn`], owned by the event loop: a
//! read buffer the incremental parser pumps ([`Conn::on_readable`]), a
//! queue of parsed-but-not-yet-dispatched pipelined requests, and the
//! shared [`ConnIo`] outbound state that dispatcher threads write
//! responses into from their side of the wall. The connection moves
//! through three logical states — *reading* (accumulating bytes),
//! *dispatched* (a request is with a dispatcher), *writing* (response
//! bytes draining to the socket) — and keep-alive loops it back to
//! *reading* instead of closing.
//!
//! [`ResponseSink`] is the dispatcher-side handle: exactly one response
//! per request, either a fixed `Content-Length` body ([`ResponseSink::
//! send_json`]) or a chunked stream ([`ResponseSink::begin_stream`] /
//! [`ResponseSink::stream_chunk`] / [`ResponseSink::end_stream`]) so
//! large table responses start flowing per-column as workers finish.
//! Every enqueue nudges the event loop through a [`Waker`].

use std::collections::{BTreeSet, VecDeque};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::Arc;

use explainti_sync::{classes, OrderedMutex};
use std::time::Instant;

use explainti_api::ApiError;

use crate::http;

/// Hard cap on a connection's unparsed read buffer: one maximal request
/// head + body plus pipelined slack. Beyond it the peer is flooding.
const MAX_CONN_BUF: usize = http::MAX_HEAD_BYTES + http::MAX_BODY_BYTES + 64 * 1024;

/// Scratch read size per `read(2)` call.
const READ_CHUNK: usize = 16 * 1024;

// ---- Waker ------------------------------------------------------------

/// Wakes the event loop from a dispatcher thread: marks the connection
/// dirty and writes one byte into the loop's wake pipe.
#[derive(Clone)]
pub struct Waker {
    dirty: Arc<OrderedMutex<BTreeSet<u64>>>,
    pipe: Arc<UnixStream>,
}

impl Waker {
    /// A waker writing to `pipe`, sharing the loop's dirty set.
    pub fn new(dirty: Arc<OrderedMutex<BTreeSet<u64>>>, pipe: Arc<UnixStream>) -> Self {
        Self { dirty, pipe }
    }

    /// Marks `conn_id` as needing event-loop attention.
    pub fn wake(&self, conn_id: u64) {
        self.dirty.lock().insert(conn_id);
        // A full pipe already guarantees a pending wake-up; any other
        // failure means the loop is gone and the write is moot.
        let _ = (&*self.pipe).write(&[1u8]);
    }

    /// Drains and returns the dirty set (event-loop side).
    pub fn take_dirty(&self) -> Vec<u64> {
        let mut set = self.dirty.lock();
        let ids: Vec<u64> = set.iter().copied().collect();
        set.clear();
        ids
    }
}

// ---- Outbound state (shared with dispatchers) -------------------------

/// Outbound bytes and response bookkeeping, written by dispatchers and
/// drained by the event loop.
struct OutState {
    /// Response byte runs, in send order.
    queue: VecDeque<Vec<u8>>,
    /// Bytes of `queue.front()` already written to the socket.
    front_written: usize,
    /// The in-flight request's response has been fully enqueued.
    response_done: bool,
    /// Close the connection once the queue drains.
    close_after: bool,
}

/// The half of a connection dispatcher threads may touch.
pub struct ConnIo {
    out: OrderedMutex<OutState>,
}

impl Default for ConnIo {
    fn default() -> Self {
        Self {
            out: OrderedMutex::new(
                &classes::SERVE_CONN_OUT,
                OutState {
                    queue: VecDeque::new(),
                    front_written: 0,
                    response_done: false,
                    close_after: false,
                },
            ),
        }
    }
}

impl ConnIo {
    /// Appends response bytes to the outbound queue.
    pub fn enqueue(&self, bytes: Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        self.out.lock().queue.push_back(bytes);
    }

    /// Marks the current response complete; `close` additionally closes
    /// the connection once the bytes drain.
    pub fn finish_response(&self, close: bool) {
        let mut st = self.out.lock();
        st.response_done = true;
        st.close_after |= close;
    }

    /// Whether any bytes are waiting to be written.
    pub fn has_output(&self) -> bool {
        !self.out.lock().queue.is_empty()
    }
}

// ---- Dispatcher-side response writer ----------------------------------

/// Builds exactly one response for one request and feeds it into the
/// connection's outbound queue, waking the event loop per enqueue.
pub struct ResponseSink {
    io: Arc<ConnIo>,
    waker: Waker,
    conn_id: u64,
    trace_id: String,
    keep_alive: bool,
    chunked_ok: bool,
    status: u16,
    streaming: bool,
    /// HTTP/1.0 fallback: chunks accumulate here and ship as one fixed
    /// body on [`ResponseSink::end_stream`].
    buffered: Option<Vec<u8>>,
    buffered_status: u16,
    generation: Option<u64>,
    deprecated: bool,
}

impl ResponseSink {
    /// A sink for one request on connection `conn_id`.
    pub fn new(
        io: Arc<ConnIo>,
        waker: Waker,
        conn_id: u64,
        trace_id: String,
        keep_alive: bool,
        chunked_ok: bool,
    ) -> Self {
        Self {
            io,
            waker,
            conn_id,
            trace_id,
            keep_alive,
            chunked_ok,
            status: 0,
            streaming: false,
            buffered: None,
            buffered_status: 0,
            generation: None,
            deprecated: false,
        }
    }

    /// Stamps every subsequent response with `X-Model-Generation`.
    pub fn set_generation(&mut self, generation: u64) {
        self.generation = Some(generation);
    }

    /// Marks responses from a deprecated route alias (`Deprecation: true`).
    pub fn set_deprecated(&mut self) {
        self.deprecated = true;
    }

    /// The trace id every response from this sink carries.
    pub fn trace_id(&self) -> &str {
        &self.trace_id
    }

    /// Whether a response (or stream head) has been committed.
    pub fn responded(&self) -> bool {
        self.status != 0
    }

    /// The committed HTTP status (0 before any response).
    pub fn status(&self) -> u16 {
        self.status
    }

    fn extras(&self) -> http::Extras<'_> {
        http::Extras {
            trace_id: Some(&self.trace_id),
            generation: self.generation,
            deprecated: self.deprecated,
            ..Default::default()
        }
    }

    fn commit(&self, bytes: Vec<u8>, done: bool) {
        self.io.enqueue(bytes);
        if done {
            self.io.finish_response(!self.keep_alive);
        }
        self.waker.wake(self.conn_id);
    }

    /// Sends a complete JSON response.
    pub fn send_json(&mut self, status: u16, body: &str) {
        self.status = status;
        self.commit(
            http::render_full(status, "application/json", body, &self.extras(), self.keep_alive),
            true,
        );
    }

    /// Sends a complete plain-text response (Prometheus exposition).
    pub fn send_text(&mut self, status: u16, body: &str) {
        self.status = status;
        self.commit(
            http::render_full(
                status,
                "text/plain; version=0.0.4",
                body,
                &self.extras(),
                self.keep_alive,
            ),
            true,
        );
    }

    /// Sends a typed error response (`Retry-After` mirrored from the
    /// error, `Allow` attached for 405s).
    pub fn send_error(&mut self, err: &ApiError, allow: Option<&str>) {
        self.status = err.status();
        self.commit(http::render_error(err, &self.trace_id, self.keep_alive, allow), true);
    }

    /// Opens a streamed response: chunked on HTTP/1.1, buffered into a
    /// single fixed body for HTTP/1.0 clients.
    pub fn begin_stream(&mut self, status: u16, content_type: &str) {
        self.streaming = true;
        self.status = status;
        if self.chunked_ok {
            self.commit(
                http::render_chunked_head(status, content_type, &self.extras(), self.keep_alive),
                false,
            );
        } else {
            self.buffered = Some(Vec::new());
            self.buffered_status = status;
        }
    }

    /// Streams one piece of the response body.
    pub fn stream_chunk(&mut self, payload: &[u8]) {
        if let Some(buf) = self.buffered.as_mut() {
            buf.extend_from_slice(payload);
            return;
        }
        self.commit(http::render_chunk(payload), false);
    }

    /// Terminates a streamed response cleanly.
    pub fn end_stream(&mut self) {
        if let Some(buf) = self.buffered.take() {
            let body = String::from_utf8(buf).unwrap_or_default();
            self.commit(
                http::render_full(
                    self.buffered_status,
                    "application/json",
                    &body,
                    &self.extras(),
                    self.keep_alive,
                ),
                true,
            );
            return;
        }
        self.commit(http::LAST_CHUNK.to_vec(), true);
    }

    /// Aborts a streamed response after the head went out: the chunked
    /// body is left unterminated (clients detect the truncation) and
    /// the connection closes. Buffered (HTTP/1.0) streams still hold
    /// everything, so they can downgrade to a typed error instead.
    pub fn abort_stream(&mut self, err: &ApiError) {
        if self.buffered.take().is_some() {
            self.status = err.status();
            self.commit(http::render_error(err, &self.trace_id, false, None), true);
            return;
        }
        explainti_obs::counter!("serve.stream.aborted", 1);
        self.io.finish_response(true);
        self.waker.wake(self.conn_id);
    }
}

// ---- Event-loop-side connection ---------------------------------------

/// What [`Conn::on_readable`] concluded.
pub enum ReadOutcome {
    /// Bytes (possibly zero) consumed; connection stays open.
    Ok,
    /// Peer closed its write side and nothing remains to process.
    Closed,
    /// The stream is unparseable; answer this and close.
    Error(ApiError),
}

/// How flushing the outbound queue went.
#[derive(PartialEq, Eq)]
pub enum FlushOutcome {
    /// Queue fully drained.
    Drained,
    /// Socket backpressure — arm `EPOLLOUT` and retry on writability.
    Blocked,
    /// The socket is dead; drop the connection.
    Closed,
}

/// One accepted connection, owned by the event loop.
pub struct Conn {
    /// The nonblocking socket.
    pub stream: TcpStream,
    /// Outbound state shared with dispatchers.
    pub io: Arc<ConnIo>,
    /// Unparsed inbound bytes.
    buf: Vec<u8>,
    /// Parsed requests awaiting dispatch (pipelining).
    pub pending: VecDeque<http::Request>,
    /// A request is currently with a dispatcher.
    pub in_flight: bool,
    /// When the current incomplete request's first byte arrived.
    pub partial_since: Option<Instant>,
    /// Last moment the connection did useful work.
    pub idle_since: Instant,
    /// Peer closed its write side (EOF on read).
    pub peer_closed: bool,
    /// `EPOLLOUT` currently armed.
    pub want_write: bool,
    /// Requests fully dispatched on this connection (keep-alive reuse
    /// = anything past the first).
    pub requests_dispatched: u64,
    /// The inbound stream went bad while a response was in flight:
    /// close as soon as that response drains (never interleave an
    /// error body into an in-progress response).
    pub poisoned: bool,
    /// When the connection was failed terminally ([`Conn::quiesce`]):
    /// exactly one error response goes out, inbound bytes are drained
    /// and discarded, and no further parsing or dispatch happens. The
    /// event loop force-closes the socket if the error response cannot
    /// drain within a grace period (peer not reading).
    pub failed_since: Option<Instant>,
}

impl Conn {
    /// Wraps an accepted, already-nonblocking stream.
    pub fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            io: Arc::new(ConnIo::default()),
            buf: Vec::new(),
            pending: VecDeque::new(),
            in_flight: false,
            partial_since: None,
            idle_since: Instant::now(),
            peer_closed: false,
            want_write: false,
            requests_dispatched: 0,
            poisoned: false,
            failed_since: None,
        }
    }

    /// Terminally fails the connection: drops all inbound state so the
    /// deadline sweep cannot re-match it and the buffer cannot grow,
    /// and flips it into drain-and-discard reading. The caller decides
    /// what (single) response, if any, still goes out.
    pub fn quiesce(&mut self) {
        self.failed_since = Some(Instant::now());
        self.partial_since = None;
        self.buf.clear();
        self.pending.clear();
    }

    /// Reads everything the socket has, then pumps the parser: complete
    /// requests land in `pending` with their `parse_ns` stamped.
    pub fn on_readable(&mut self) -> ReadOutcome {
        let mut scratch = [0u8; READ_CHUNK];
        if self.failed_since.is_some() {
            // Terminal: keep level-triggered EPOLLIN quiet by draining
            // the socket, but never buffer, parse, or answer again.
            loop {
                match (&self.stream).read(&mut scratch) {
                    Ok(0) => {
                        self.peer_closed = true;
                        break;
                    }
                    Ok(_) => continue,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.peer_closed = true;
                        break;
                    }
                }
            }
            return ReadOutcome::Ok;
        }
        loop {
            match (&self.stream).read(&mut scratch) {
                Ok(0) => {
                    self.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    if self.buf.is_empty() && self.partial_since.is_none() {
                        self.partial_since = Some(Instant::now());
                    }
                    self.buf.extend_from_slice(scratch.get(..n).unwrap_or_default());
                    self.idle_since = Instant::now();
                    if self.buf.len() > MAX_CONN_BUF {
                        return ReadOutcome::Error(ApiError::new(
                            explainti_api::ErrorCode::PayloadTooLarge,
                            format!("connection buffer exceeds {MAX_CONN_BUF} bytes"),
                        ));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.peer_closed = true;
                    break;
                }
            }
        }
        loop {
            match http::parse_request(&self.buf) {
                http::Parse::Complete { mut request, consumed } => {
                    let started = self.partial_since.take().unwrap_or_else(Instant::now);
                    request.parse_ns = Instant::now()
                        .saturating_duration_since(started)
                        .as_nanos()
                        .min(u64::MAX as u128) as u64;
                    self.buf.drain(..consumed);
                    if !self.buf.is_empty() {
                        // The next pipelined request is already arriving.
                        self.partial_since = Some(Instant::now());
                    }
                    self.pending.push_back(request);
                }
                http::Parse::Partial => break,
                http::Parse::Invalid(err) => return ReadOutcome::Error(err),
            }
        }
        if self.peer_closed
            && self.buf.is_empty()
            && self.pending.is_empty()
            && !self.in_flight
            && !self.io.has_output()
        {
            return ReadOutcome::Closed;
        }
        ReadOutcome::Ok
    }

    /// Whether a request is sitting half-received past `deadline_ok`.
    pub fn has_stalled_read(&self, started_before: Instant) -> bool {
        self.failed_since.is_none()
            && !self.in_flight
            && self.pending.is_empty()
            && self.partial_since.is_some_and(|t| t < started_before)
    }

    /// Whether the connection has no work in any direction.
    pub fn is_idle(&self) -> bool {
        !self.in_flight && self.pending.is_empty() && self.buf.is_empty() && !self.io.has_output()
    }

    /// Writes queued response bytes until drained or blocked. Returns
    /// whether the current response finished and whether to close.
    pub fn flush(&mut self) -> (FlushOutcome, bool, bool) {
        let mut st = self.io.out.lock();
        let outcome = loop {
            let Some(front) = st.queue.front() else { break FlushOutcome::Drained };
            let remaining = front.get(st.front_written..).unwrap_or_default();
            if remaining.is_empty() {
                st.queue.pop_front();
                st.front_written = 0;
                continue;
            }
            match (&self.stream).write(remaining) {
                Ok(0) => break FlushOutcome::Closed,
                Ok(n) => {
                    st.front_written += n;
                    self.idle_since = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    break FlushOutcome::Blocked
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break FlushOutcome::Closed,
            }
        };
        let response_done = st.response_done;
        if response_done {
            st.response_done = false;
        }
        let close_after = st.close_after && st.queue.is_empty();
        (outcome, response_done, close_after)
    }

    /// Directly enqueues a rendered response from the event loop (parse
    /// errors, 408s) and marks the connection to close after it drains.
    pub fn enqueue_direct_close(&self, bytes: Vec<u8>) {
        self.io.enqueue(bytes);
        self.io.finish_response(true);
    }
}
