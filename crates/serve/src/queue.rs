//! Bounded MPMC request queue with micro-batch draining.
//!
//! Connection handlers push individual jobs; worker threads drain up to
//! `max_batch` jobs per wake-up so downstream tokenization and encoder
//! forwards amortise across requests. The queue is the backpressure
//! point: a full queue rejects the push (the server maps that to HTTP
//! 503) instead of buffering unboundedly.

use std::collections::VecDeque;
use std::sync::Condvar;
use std::time::Duration;

use explainti_sync::{classes, OrderedMutex};

/// Why a [`BatchQueue::try_push`] was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — shed load upstream.
    Full,
    /// The queue was closed for shutdown.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer queue whose consumers drain
/// *batches* rather than single items.
pub struct BatchQueue<T> {
    inner: OrderedMutex<Inner<T>>,
    available: Condvar,
    cap: usize,
}

impl<T> BatchQueue<T> {
    /// A queue holding at most `cap` items (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        Self {
            inner: OrderedMutex::new(
                &classes::SERVE_QUEUE_BATCH,
                Inner { items: VecDeque::new(), closed: false },
            ),
            available: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues one item, waking a waiting consumer. Fails fast (no
    /// blocking) when the queue is full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.cap {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until at least one item is available (or the queue closes),
    /// then drains up to `max_batch` items in FIFO order. Returns `None`
    /// only when the queue is closed *and* fully drained — the consumer's
    /// signal to exit.
    pub fn pop_batch(&self, max_batch: usize) -> Option<Vec<T>> {
        let max_batch = max_batch.max(1);
        let mut inner = self.inner.lock();
        loop {
            if !inner.items.is_empty() {
                let n = inner.items.len().min(max_batch);
                return Some(inner.items.drain(..n).collect());
            }
            if inner.closed {
                return None;
            }
            inner = inner.wait(&self.available);
        }
    }

    /// Like [`Self::pop_batch`] but gives up after `timeout`, returning
    /// an empty batch so the consumer can re-check external state.
    pub fn pop_batch_timeout(&self, max_batch: usize, timeout: Duration) -> Option<Vec<T>> {
        let max_batch = max_batch.max(1);
        let mut inner = self.inner.lock();
        loop {
            if !inner.items.is_empty() {
                let n = inner.items.len().min(max_batch);
                return Some(inner.items.drain(..n).collect());
            }
            if inner.closed {
                return None;
            }
            let (guard, timed_out) = inner.wait_timeout(&self.available, timeout);
            inner = guard;
            if timed_out {
                if !inner.items.is_empty() {
                    let n = inner.items.len().min(max_batch);
                    return Some(inner.items.drain(..n).collect());
                }
                return if inner.closed { None } else { Some(Vec::new()) };
            }
        }
    }

    /// Closes the queue: pushes fail from now on, and consumers drain
    /// what remains before [`Self::pop_batch`] returns `None`.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo_order() {
        let q = BatchQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.pop_batch(3).unwrap(), vec![0, 1, 2]);
        assert_eq!(q.pop_batch(3).unwrap(), vec![3, 4]);
    }

    #[test]
    fn full_queue_rejects_push() {
        let q = BatchQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        // Draining frees capacity again.
        q.pop_batch(1).unwrap();
        q.try_push(3).unwrap();
    }

    #[test]
    fn closed_queue_rejects_push_and_drains() {
        let q = BatchQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(PushError::Closed));
        assert_eq!(q.pop_batch(4).unwrap(), vec![7]);
        assert!(q.pop_batch(4).is_none());
    }

    #[test]
    fn pop_blocks_until_producer_arrives() {
        let q = Arc::new(BatchQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch(4))
        };
        std::thread::sleep(Duration::from_millis(30));
        q.try_push(42).unwrap();
        assert_eq!(consumer.join().unwrap().unwrap(), vec![42]);
    }

    #[test]
    fn batch_collects_queued_items_up_to_max() {
        // The micro-batching contract: everything queued at wake-up is
        // drained together, capped at max_batch.
        let q = BatchQueue::new(16);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        let batch = q.pop_batch(8).unwrap();
        assert_eq!(batch.len(), 8);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn timeout_pop_returns_empty_batch() {
        let q: BatchQueue<u32> = BatchQueue::new(4);
        let batch = q.pop_batch_timeout(4, Duration::from_millis(10));
        assert_eq!(batch.unwrap(), Vec::<u32>::new());
        q.close();
        assert!(q.pop_batch_timeout(4, Duration::from_millis(10)).is_none());
    }

    #[test]
    fn concurrent_producers_and_consumers_see_every_item() {
        let q = Arc::new(BatchQueue::new(64));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(batch) = q.pop_batch(4) {
                        got.extend(batch);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        let mut v = p * 100 + i;
                        loop {
                            match q.try_push(v) {
                                Ok(()) => break,
                                Err(PushError::Full) => std::thread::yield_now(),
                                Err(PushError::Closed) => panic!("closed early"),
                            }
                            v = p * 100 + i;
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let mut expected: Vec<u32> =
            (0..4).flat_map(|p| (0..25).map(move |i| p * 100 + i)).collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }
}
