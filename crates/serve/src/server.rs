//! The micro-batching inference server behind the epoll front-end.
//!
//! Three thread tiers. The **event loop** ([`crate::event_loop`]) owns
//! every socket: it accepts, enforces the connection limit (typed 429)
//! and read deadlines (typed 408), parses requests incrementally, and
//! flushes response bytes. Parsed requests become [`DispatchJob`]s on a
//! bounded dispatch queue drained by the **dispatcher pool**, which runs
//! the route handlers — including blocking waits on prediction replies —
//! and writes rendered bytes back through [`crate::conn::ResponseSink`].
//! Cache misses land as [`Job`]s on the prediction [`BatchQueue`],
//! drained in micro-batches by the **worker pool** running
//! [`ExplainTi::predict_encoded_batch`] over one shared tape.
//!
//! The prediction queue remains the backpressure point (full queue →
//! 503), every job carries a deadline so abandoned requests are dropped
//! rather than computed, and table responses stream per-column as
//! chunked transfer-encoding instead of materialising the full JSON.
//!
//! Routing is a declarative table ([`ROUTES`]): one `Route` per
//! endpoint, from which both the 405 `Allow` set and the known-path
//! list derive.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};

use explainti_sync::{classes, OrderedMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use explainti_api::{
    ApiError, ColumnPrediction, ConfigResponse, ErrorCode, InterpretTableRequest, ModelInfo,
    PredictRequest, PredictResponse, ShardStatus, StoreStatusResponse, SwapRequest, SwapResponse,
    SCHEMA_VERSION,
};
use explainti_core::{ExplainTi, Generation, GenerationHandle};
use serde::Deserialize;
use serde_json::{json, Value};

use crate::cache::LruCache;
use crate::conn::{ConnIo, ResponseSink, Waker};
use crate::event_loop::{self, LoopCfg};
use crate::http;
use crate::queue::{BatchQueue, PushError};

/// How the server is sized; every knob has a CLI flag.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads draining the queue. `0` is allowed for tests that
    /// need the queue to fill deterministically.
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it answer 503.
    pub queue_cap: usize,
    /// Maximum jobs a worker drains per wake-up.
    pub max_batch: usize,
    /// LRU cache capacity (cached full responses, explanations included).
    pub cache_cap: usize,
    /// Per-request deadline; exceeded requests answer 504.
    pub deadline_ms: u64,
    /// Explanations per view in each response.
    pub top_k: usize,
    /// Kernel compute threads (the shared pool's width). Distinct from
    /// `workers`: workers bound how many requests are *in flight*, while
    /// threads bound how much CPU each micro-batch forward uses. `0`
    /// inherits the process-wide pool as already configured (CLI flag,
    /// `EXPLAINTI_THREADS`, or available parallelism).
    pub threads: usize,
    /// Sliding SLO window length in seconds: rolling p50/p99/p999 and
    /// error rate over the trailing window, published as `serve.slo.*`
    /// gauges at metrics-scrape time.
    pub slo_window_s: u64,
    /// Hard cap on concurrently open connections; excess connects are
    /// answered with a typed 429 + `Retry-After` and closed.
    pub max_conns: usize,
    /// A connection that has started but not completed a request within
    /// this window answers a typed 408 and closes (slow-loris defence).
    pub read_timeout_ms: u64,
    /// Keep-alive connections idle longer than this are closed.
    pub idle_timeout_ms: u64,
    /// Dispatcher threads running route handlers. `0` derives a default
    /// from `workers` (handlers block on worker replies, so there must
    /// be more dispatchers than workers for batching to form).
    pub dispatchers: usize,
    /// Store shards per task (consistent-hash buckets); swapped-in
    /// generations are loaded with the same layout. `1` = unsharded.
    pub shards: usize,
    /// Replicas per stored embedding; must satisfy `1 ≤ replicas ≤ shards`.
    pub replicas: usize,
    /// Smoke-verify a swap candidate with one prediction before commit.
    pub swap_verify: bool,
    /// Serve inference on the int8 symmetric-quantized path (encoder
    /// forward + GE similarity); swapped-in generations inherit it.
    pub quantized: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_cap: 64,
            max_batch: 8,
            cache_cap: 256,
            deadline_ms: 30_000,
            top_k: explainti_api::DEFAULT_TOP_K,
            threads: 0,
            slo_window_s: 60,
            max_conns: 1024,
            read_timeout_ms: 10_000,
            idle_timeout_ms: 60_000,
            dispatchers: 0,
            shards: 1,
            replicas: 1,
            swap_verify: true,
            quantized: false,
        }
    }
}

/// Hard cap on columns per `/v1/interpret` table request: a pathological
/// 10k-column row must answer a clean 400, not exhaust the queue.
const MAX_TABLE_COLUMNS: usize = 512;

/// How many times a job may be attempted in total (1 initial + retries).
/// A worker panic re-enqueues the batch's jobs once; a second panic
/// answers a typed 500 instead of retrying forever.
const MAX_ATTEMPTS: u32 = 2;

/// Base backoff before a panicked batch is re-enqueued; doubles per
/// attempt already made.
const RETRY_BACKOFF_MS: u64 = 10;

/// Stage timings a worker reports back with each response so the
/// dispatcher can fold them into the request's wide event. `queue_wait`
/// is per job; the remaining fields describe the micro-batch the job
/// rode in (per-request events record their batch's cost — the critical
/// path the request actually waited on — not an amortised share).
struct JobStages {
    queue_wait_ns: u64,
    batch_assembly_ns: u64,
    /// Forward + head time net of the three explanation views.
    predict_ns: u64,
    le_ns: u64,
    ge_ns: u64,
    se_ns: u64,
    batch_size: u64,
}

impl JobStages {
    /// Total worker-side chain: the sequential enqueue → reply interval.
    fn chain_ns(&self) -> u64 {
        self.queue_wait_ns
            .saturating_add(self.batch_assembly_ns)
            .saturating_add(self.predict_ns)
            .saturating_add(self.le_ns)
            .saturating_add(self.ge_ns)
            .saturating_add(self.se_ns)
    }
}

/// What a worker (or the cache path) sends back per job: the response
/// plus stage timings (`None` for cache hits — nothing was computed).
type JobReply = Result<(Arc<PredictResponse>, Option<JobStages>), ApiError>;

/// Saturating nanoseconds from `earlier` to `later` (0 if out of order).
fn ns_since(earlier: Instant, later: Instant) -> u64 {
    later.saturating_duration_since(earlier).as_nanos().min(u64::MAX as u128) as u64
}

/// One queued column prediction.
struct Job {
    /// The generation the request was dispatched against: the job runs
    /// on this model even if a swap commits while it waits in the queue.
    gen: Arc<Generation>,
    encoded: explainti_tokenizer::Encoded,
    key: u64,
    resp_tx: mpsc::Sender<JobReply>,
    deadline: Instant,
    /// When the job entered the queue (wide-event `queue_wait`).
    enqueued_at: Instant,
    /// Times this job has been handed to a worker (retry bookkeeping).
    attempts: u32,
}

/// One parsed request handed from the event loop to a dispatcher.
pub(crate) struct DispatchJob {
    /// Event-loop connection id (the epoll token).
    pub(crate) conn_id: u64,
    /// The parsed request.
    pub(crate) request: http::Request,
    /// The connection's outbound state, for the response.
    pub(crate) io: Arc<ConnIo>,
    /// Wakes the event loop after each enqueue.
    pub(crate) waker: Waker,
}

pub(crate) struct Shared {
    /// The live model generation; requests snapshot it once at dispatch.
    generations: GenerationHandle,
    queue: BatchQueue<Job>,
    /// Parsed requests awaiting a dispatcher (one in flight per conn).
    pub(crate) dispatch: BatchQueue<DispatchJob>,
    cache: OrderedMutex<LruCache<u64, Arc<PredictResponse>>>,
    pub(crate) shutdown: Arc<AtomicBool>,
    top_k: usize,
    max_batch: usize,
    deadline: Duration,
    /// Rolling latency/error window behind the `serve.slo.*` gauges.
    slo: explainti_obs::SloWindow,
    /// Held (CAS) for the duration of an admin swap; a second concurrent
    /// swap answers a typed 409 instead of queueing.
    swap_lock: AtomicBool,
    /// Store layout swapped-in generations are loaded with.
    shards: usize,
    replicas: usize,
    swap_verify: bool,
    /// Swapped-in generations are re-quantized to match the serving path.
    quantized: bool,
    /// Effective knobs, frozen at startup for `/v1/config`; the `model`
    /// block is refreshed per request from the live generation.
    config: ConfigResponse,
}

/// The response cache guard (the `OrderedMutex` recovers poisoned
/// guards internally, so a handler never panics on a poisoned cache —
/// EA006).
fn lock_cache(
    shared: &Shared,
) -> explainti_sync::OrderedMutexGuard<'_, LruCache<u64, Arc<PredictResponse>>> {
    shared.cache.lock()
}

/// Hash of the request content a cached response is keyed by. The
/// generation id participates so a response computed by one model can
/// never answer a request dispatched against another.
fn cache_key(generation: u64, title: &str, header: &str, cells: &[String]) -> u64 {
    let mut h = DefaultHasher::new();
    generation.hash(&mut h);
    title.hash(&mut h);
    header.hash(&mut h);
    cells.hash(&mut h);
    h.finish()
}

// ---- Worker pool ------------------------------------------------------

fn worker_loop(shared: &Shared) {
    while let Some(batch) = shared.queue.pop_batch(shared.max_batch) {
        let drained_at = Instant::now();
        let depth = shared.queue.len();
        explainti_obs::set_gauge("serve.queue.depth", depth as f64);
        if explainti_obs::enabled() {
            // Depth sampled at every drain: a distribution (not just the
            // latest gauge value), so load tests can plot queue pressure.
            explainti_obs::registry().histogram("serve.queue.depth.sampled").record(depth as u64);
        }
        let (live, expired): (Vec<Job>, Vec<Job>) =
            batch.into_iter().partition(|j| j.deadline > drained_at);
        if !expired.is_empty() {
            // The waiting handler already gave up; don't burn a forward.
            explainti_obs::counter!("serve.jobs.expired", expired.len() as u64);
        }
        if live.is_empty() {
            continue;
        }
        // A swap mid-flight can leave jobs from two generations in one
        // drain: group by generation id so each forward runs on the
        // model its requests were dispatched against.
        let mut groups: BTreeMap<u64, Vec<Job>> = BTreeMap::new();
        for job in live {
            groups.entry(job.gen.id).or_default().push(job);
        }
        for jobs in groups.into_values() {
            run_batch(shared, jobs, drained_at);
        }
    }
}

/// Runs one same-generation micro-batch: forward, respond, retry.
fn run_batch(shared: &Shared, live: Vec<Job>, drained_at: Instant) {
    let Some(first) = live.first() else { return };
    let gen = Arc::clone(&first.gen);
    if explainti_obs::enabled() {
        explainti_obs::registry().histogram("serve.batch.size").record(live.len() as u64);
    }
    let _span = explainti_obs::span!("serve.batch.predict");
    // Chaos site: a slow batch (GC pause / noisy neighbour stand-in)
    // to exercise the deadline path without a real stall.
    if explainti_faults::triggered("serve.batch.slow") {
        std::thread::sleep(Duration::from_millis(50));
    }
    let encs: Vec<explainti_tokenizer::Encoded> = live.iter().map(|j| j.encoded.clone()).collect();
    let forward_at = Instant::now();
    let batch_assembly_ns = ns_since(drained_at, forward_at);
    // Capture every span the forward closes — including those on
    // kernel-pool threads, which re-install this capture around each
    // task — so per-request wide events can attribute predict/LE/GE/SE.
    let capture = explainti_obs::SpanCapture::new();
    // A panicking forward (injected via `serve.worker.panic` or real)
    // must not kill the worker: recover, re-enqueue each job within
    // its retry budget, and answer a typed 500 past it.
    let outcome = {
        let _ctx = capture.install();
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            explainti_faults::panic_if_triggered("serve.worker.panic");
            gen.model.predict_encoded_batch(&encs)
        }))
    };
    match outcome {
        Ok(preds) => {
            let le_ns = capture.get("explain.le");
            let ge_ns = capture.get("explain.ge");
            let se_ns = capture.get("explain.se");
            // Disjoint stages: predict is the batch forward net of
            // the three explanation views, so the stage fields sum
            // to (at most) the observed span total.
            let predict_ns = capture
                .get("model.predict_batch")
                .saturating_sub(le_ns.saturating_add(ge_ns).saturating_add(se_ns));
            let batch_size = live.len() as u64;
            for (job, pred) in live.into_iter().zip(preds) {
                let resp =
                    Arc::new(PredictResponse::from_prediction(&pred, &gen.labels, shared.top_k));
                lock_cache(shared).insert(job.key, Arc::clone(&resp));
                let stages = JobStages {
                    queue_wait_ns: ns_since(job.enqueued_at, drained_at),
                    batch_assembly_ns,
                    predict_ns,
                    le_ns,
                    ge_ns,
                    se_ns,
                    batch_size,
                };
                // A closed receiver means the handler timed out.
                let _ = job.resp_tx.send(Ok((resp, Some(stages))));
            }
        }
        Err(_) => {
            explainti_obs::counter!("serve.worker.panics", 1);
            for mut job in live {
                if job.attempts + 1 >= MAX_ATTEMPTS {
                    explainti_obs::counter!("serve.jobs.retry_exhausted", 1);
                    let _ = job.resp_tx.send(Err(ApiError::internal(
                        "prediction worker panicked and the retry budget is exhausted",
                    )));
                    continue;
                }
                std::thread::sleep(Duration::from_millis(RETRY_BACKOFF_MS << job.attempts));
                job.attempts += 1;
                explainti_obs::counter!("serve.jobs.retried", 1);
                let tx = job.resp_tx.clone();
                if shared.queue.try_push(job).is_err() {
                    // Queue full or closed mid-retry: fail loudly
                    // rather than letting the handler hit 504.
                    explainti_obs::counter!("serve.jobs.retry_dropped", 1);
                    let _ = tx
                        .send(Err(ApiError::internal("prediction retry could not be re-enqueued")));
                }
            }
        }
    }
}

// ---- Request handling -------------------------------------------------

/// Looks the column up in the cache or enqueues it, returning a receiver
/// for the (possibly already-delivered) response.
fn submit_column(
    shared: &Shared,
    gen: &Arc<Generation>,
    req: &PredictRequest,
    deadline: Instant,
    rtrace: &mut explainti_obs::RequestTrace,
) -> Result<mpsc::Receiver<JobReply>, ApiError> {
    if req.header.is_empty() && req.cells.is_empty() {
        return Err(ApiError::bad_request("column has neither header nor cells"));
    }
    rtrace.note_column();
    let key = cache_key(gen.id, &req.title, &req.header, &req.cells);
    let (tx, rx) = mpsc::channel();
    if let Some(hit) = lock_cache(shared).get(&key) {
        explainti_obs::counter!("serve.cache.hit", 1);
        rtrace.note_cache_hit();
        let _ = tx.send(Ok((Arc::clone(hit), None)));
        return Ok(rx);
    }
    explainti_obs::counter!("serve.cache.miss", 1);
    // Chaos site: backpressure without actually filling the queue.
    if explainti_faults::triggered("serve.queue.full") {
        return Err(ApiError::new(
            ErrorCode::QueueFull,
            format!("request queue at capacity ({})", shared.queue.capacity()),
        ));
    }
    let cells: Vec<&str> = req.cells.iter().map(String::as_str).collect();
    let encode_start = Instant::now();
    let encoded = gen.model.encode_ad_hoc_column(&req.title, &req.header, &cells);
    rtrace.add_stage("encode", ns_since(encode_start, Instant::now()));
    let job = Job {
        gen: Arc::clone(gen),
        encoded,
        key,
        resp_tx: tx,
        deadline,
        enqueued_at: Instant::now(),
        attempts: 0,
    };
    match shared.queue.try_push(job) {
        Ok(()) => {
            explainti_obs::set_gauge("serve.queue.depth", shared.queue.len() as f64);
            Ok(rx)
        }
        Err(PushError::Full) => Err(ApiError::new(
            ErrorCode::QueueFull,
            format!("request queue at capacity ({})", shared.queue.capacity()),
        )),
        Err(PushError::Closed) => {
            Err(ApiError::new(ErrorCode::ShuttingDown, "server is shutting down"))
        }
    }
}

fn await_response(
    rx: &mpsc::Receiver<JobReply>,
    deadline: Instant,
) -> Result<(Arc<PredictResponse>, Option<JobStages>), ApiError> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    rx.recv_timeout(remaining)
        .map_err(|_| ApiError::new(ErrorCode::DeadlineExceeded, "prediction missed its deadline"))?
}

/// Folds one job's worker-side stage timings into the request's wide
/// event. Multi-column requests keep the *longest* single chain rather
/// than summing across columns: chains of different columns overlap in
/// real time, and the wide-event invariant is that stage durations are
/// sequential pieces of the request's own lifetime (sum ≤ total).
fn fold_worker_stages(best: &mut Option<JobStages>, stages: Option<JobStages>) {
    if let Some(st) = stages {
        let better = best.as_ref().is_none_or(|b| st.chain_ns() > b.chain_ns());
        if better {
            *best = Some(st);
        }
    }
}

/// Writes the chosen worker chain into the wide event's stage fields.
fn apply_worker_stages(rtrace: &mut explainti_obs::RequestTrace, best: Option<JobStages>) {
    if let Some(st) = best {
        rtrace.add_stage("queue_wait", st.queue_wait_ns);
        rtrace.add_stage("batch_assembly", st.batch_assembly_ns);
        rtrace.add_stage("predict", st.predict_ns);
        rtrace.add_stage("explain_le", st.le_ns);
        rtrace.add_stage("explain_ge", st.ge_ns);
        rtrace.add_stage("explain_se", st.se_ns);
        rtrace.note_batch(st.batch_size);
    }
}

/// Streams a table response: the chunked head goes out with the first
/// finished column, each subsequent column ships as its own chunk, and
/// the tail closes the JSON. Field order (`columns`, `schema_version`,
/// `title`) matches the vendored serde's sorted-key serialization, so
/// the streamed bytes are identical to `serde_json::to_string` of an
/// [`explainti_api::InterpretTableResponse`].
fn stream_table(
    shared: &Shared,
    gen: &Arc<Generation>,
    req: InterpretTableRequest,
    deadline: Instant,
    rtrace: &mut explainti_obs::RequestTrace,
    sink: &mut ResponseSink,
) -> Result<(), ApiError> {
    // Enqueue every column before waiting on any, so one connection's
    // table still forms a micro-batch for the workers.
    let mut pending = Vec::with_capacity(req.columns.len());
    for idx in 0..req.columns.len() {
        let col = req.column_request(idx);
        pending.push((col.header.clone(), submit_column(shared, gen, &col, deadline, rtrace)?));
    }
    let mut best = None;
    let mut ser_ns = 0u64;
    for (idx, (header, rx)) in pending.into_iter().enumerate() {
        // Past the first chunk the head is already on the wire: a column
        // failure can only abort the stream (handled by the caller).
        let (resp, stages) = await_response(&rx, deadline)?;
        fold_worker_stages(&mut best, stages);
        let ser_start = Instant::now();
        let col = ColumnPrediction { header, prediction: (*resp).clone() };
        let mut piece = String::new();
        if idx == 0 {
            piece.push_str("{\"columns\":[");
        } else {
            piece.push(',');
        }
        piece.push_str(&serde_json::to_string(&col).unwrap_or_default());
        ser_ns = ser_ns.saturating_add(ns_since(ser_start, Instant::now()));
        if idx == 0 {
            sink.begin_stream(200, "application/json");
        }
        sink.stream_chunk(piece.as_bytes());
    }
    let tail = format!(
        "],\"schema_version\":{SCHEMA_VERSION},\"title\":{}}}",
        serde_json::to_string(&req.title).unwrap_or_default()
    );
    sink.stream_chunk(tail.as_bytes());
    sink.end_stream();
    apply_worker_stages(rtrace, best);
    rtrace.add_stage("serialize", ser_ns);
    Ok(())
}

fn handle_interpret(
    shared: &Shared,
    gen: &Arc<Generation>,
    request: &http::Request,
    rtrace: &mut explainti_obs::RequestTrace,
    sink: &mut ResponseSink,
) -> Result<(), ApiError> {
    let _span = explainti_obs::span!("serve.request.interpret");
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err(ApiError::new(ErrorCode::ShuttingDown, "server is shutting down"));
    }
    let parse_start = Instant::now();
    let parsed: Result<Value, ApiError> = std::str::from_utf8(&request.body)
        .map_err(|_| ApiError::bad_request("body is not valid UTF-8"))
        .and_then(|text| {
            serde_json::from_str(text).map_err(|e| ApiError::bad_request(format!("bad JSON: {e}")))
        });
    rtrace.add_stage("parse", ns_since(parse_start, Instant::now()));
    let value = parsed?;
    let deadline = Instant::now() + shared.deadline;

    // A body with a "columns" key is a whole table; otherwise a single
    // column. (The vendored serde has no untagged enums, so the dispatch
    // is a one-key sniff on the parsed tree.)
    if value.get("columns").is_some() {
        let req = InterpretTableRequest::from_value(&value)
            .map_err(|e| ApiError::bad_request(format!("bad table request: {e}")))?;
        if req.columns.is_empty() {
            return Err(ApiError::bad_request("table has no columns"));
        }
        if req.columns.len() > MAX_TABLE_COLUMNS {
            return Err(ApiError::bad_request(format!(
                "table has {} columns; the per-request limit is {MAX_TABLE_COLUMNS} — \
                 split the table across requests",
                req.columns.len()
            )));
        }
        stream_table(shared, gen, req, deadline, rtrace, sink)
    } else {
        let req = PredictRequest::from_value(&value)
            .map_err(|e| ApiError::bad_request(format!("bad predict request: {e}")))?;
        let rx = submit_column(shared, gen, &req, deadline, rtrace)?;
        let (resp, stages) = await_response(&rx, deadline)?;
        apply_worker_stages(rtrace, stages);
        let ser_start = Instant::now();
        let body = serde_json::to_string(&*resp).unwrap_or_default();
        rtrace.add_stage("serialize", ns_since(ser_start, Instant::now()));
        sink.send_json(200, &body);
        Ok(())
    }
}

/// Publishes the rolling SLO view as `serve.slo.*` gauges — called at
/// metrics-scrape time so both the JSON snapshot and the Prometheus
/// rendering carry fresh values.
fn publish_slo_gauges(shared: &Shared) {
    let snap = shared.slo.snapshot();
    explainti_obs::set_gauge("serve.slo.window_s", snap.window_s as f64);
    explainti_obs::set_gauge("serve.slo.requests", snap.count as f64);
    explainti_obs::set_gauge("serve.slo.error_rate", snap.error_rate);
    explainti_obs::set_gauge("serve.slo.p50_ms", snap.p50_ns as f64 / 1e6);
    explainti_obs::set_gauge("serve.slo.p99_ms", snap.p99_ns as f64 / 1e6);
    explainti_obs::set_gauge("serve.slo.p999_ms", snap.p999_ns as f64 / 1e6);
}

fn handle_metrics(
    shared: &Shared,
    gen: &Arc<Generation>,
    request: &http::Request,
    _rtrace: &mut explainti_obs::RequestTrace,
    sink: &mut ResponseSink,
) -> Result<(), ApiError> {
    let _span = explainti_obs::span!("serve.request.metrics");
    publish_slo_gauges(shared);
    if request.query.split('&').any(|kv| kv == "format=prometheus") {
        sink.send_text(200, &explainti_obs::prometheus());
        return Ok(());
    }
    let mut summary = explainti_obs::summary();
    if let Value::Object(map) = &mut summary {
        map.insert("schema_version".to_string(), json!(SCHEMA_VERSION));
        map.insert("degraded".to_string(), json!(gen.model.is_degraded()));
        // Failpoint trip counts (empty object when no chaos drill
        // has run), so operators and the chaos-smoke CI job can
        // scrape what actually fired.
        let mut hits = std::collections::BTreeMap::new();
        for (site, n) in explainti_faults::hit_counts() {
            hits.insert(site, json!(n));
        }
        map.insert("failpoints".to_string(), Value::Object(hits));
    }
    sink.send_json(200, &serde_json::to_string(&summary).unwrap_or_default());
    Ok(())
}

fn handle_healthz(
    _shared: &Shared,
    gen: &Arc<Generation>,
    _request: &http::Request,
    _rtrace: &mut explainti_obs::RequestTrace,
    sink: &mut ResponseSink,
) -> Result<(), ApiError> {
    let _span = explainti_obs::span!("serve.request.healthz");
    let degraded = gen.model.is_degraded();
    sink.send_json(
        200,
        &serde_json::to_string(&json!({"degraded": degraded, "status": "ok"})).unwrap_or_default(),
    );
    Ok(())
}

/// Facts about one generation's model, for `/v1/config` and swap logs.
fn model_info(gen: &Generation) -> ModelInfo {
    let enc = &gen.model.cfg.encoder;
    ModelInfo {
        d_model: enc.d_model,
        layers: enc.n_layers,
        max_seq: enc.max_seq,
        vocab_size: gen.model.tokenizer.vocab_size(),
        num_labels: gen.labels.len(),
        num_weights: gen.model.num_weights(),
        generation: gen.id,
    }
}

fn handle_config(
    shared: &Shared,
    gen: &Arc<Generation>,
    _request: &http::Request,
    _rtrace: &mut explainti_obs::RequestTrace,
    sink: &mut ResponseSink,
) -> Result<(), ApiError> {
    let _span = explainti_obs::span!("serve.request.config");
    // Knobs are frozen at startup; the model block follows the live
    // generation so `/v1/config` reflects what is actually serving.
    let mut config = shared.config.clone();
    config.model = model_info(gen);
    sink.send_json(200, &serde_json::to_string(&config).unwrap_or_default());
    Ok(())
}

fn handle_shutdown(
    shared: &Shared,
    _gen: &Arc<Generation>,
    _request: &http::Request,
    _rtrace: &mut explainti_obs::RequestTrace,
    sink: &mut ResponseSink,
) -> Result<(), ApiError> {
    shared.shutdown.store(true, Ordering::SeqCst);
    sink.send_json(
        200,
        &serde_json::to_string(&json!({"status": "shutting down"})).unwrap_or_default(),
    );
    Ok(())
}

// ---- Admin: swap + store ----------------------------------------------

/// Releases the swap lock however the swap handler exits.
struct SwapGuard<'a>(&'a AtomicBool);

impl Drop for SwapGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::SeqCst);
    }
}

/// The load → verify → commit pipeline of one swap, run under the swap
/// lock. Returns `(previous_id, new_id, verified)`.
fn run_swap(shared: &Shared, model_dir: &str) -> Result<(u64, u64, bool), ApiError> {
    // LOAD — entirely off to the side; serving continues on the old
    // generation while the snapshot is read and verified (crash-safe
    // MANIFEST machinery: torn or tampered snapshots fail here).
    let (mut model, dataset) = {
        let _span = explainti_obs::span!("serve.swap.load");
        if explainti_faults::triggered("serve.swap.load") {
            return Err(ApiError::bad_request("injected swap load failure"));
        }
        ExplainTi::load_from_dir_with(Path::new(model_dir), shared.shards, shared.replicas)
            .map_err(|e| ApiError::bad_request(format!("load {model_dir}: {e}")))?
    };
    let labels = dataset.collection.type_labels.clone();
    // The serving path is a startup-frozen knob: a swapped-in generation
    // is quantized to match, so `/v1/config` stays truthful across swaps.
    if shared.quantized {
        model.enable_quantized();
    }
    let model = Arc::new(model);
    // VERIFY — one smoke prediction through the candidate before any
    // request can reach it; a panic (or injected failure) rejects it.
    let verified = if shared.swap_verify {
        let _span = explainti_obs::span!("serve.swap.verify");
        if explainti_faults::triggered("serve.swap.verify") {
            return Err(ApiError::bad_request("swap candidate failed verification (injected)"));
        }
        let smoke = Arc::clone(&model);
        let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let enc = smoke.encode_ad_hoc_column("swap", "verify", &["smoke"]);
            smoke.predict_encoded_batch(&[enc]).len() == 1
        }));
        if !matches!(ok, Ok(true)) {
            return Err(ApiError::bad_request("swap candidate failed smoke verification"));
        }
        true
    } else {
        false
    };
    // COMMIT — the only mutating step. An injected failure here proves
    // rollback: the handle is untouched and the old generation keeps
    // serving as if the swap never happened.
    if explainti_faults::triggered("serve.swap.commit") {
        return Err(ApiError::internal("swap commit failed; previous generation still serving"));
    }
    let (previous, id) = shared.generations.swap(model, labels);
    // Cache keys carry the generation id, so stale cross-generation
    // hits are impossible; the reset just drops the old generation's
    // responses promptly instead of waiting for LRU churn.
    *lock_cache(shared) = LruCache::new(shared.config.cache_cap);
    Ok((previous, id, verified))
}

/// `POST /v1/admin/swap`: load a new model generation from a snapshot
/// directory and atomically install it. In-flight requests finish on
/// the generation they started on; the next request sees the new one.
///
/// Failure matrix (DESIGN.md §15): load and verify failures answer 400
/// with the old generation untouched; a commit failure answers 500 and
/// rolls back the same way; a concurrent swap answers a typed 409 with
/// `retry_after_s`.
fn handle_swap(
    shared: &Shared,
    _gen: &Arc<Generation>,
    request: &http::Request,
    _rtrace: &mut explainti_obs::RequestTrace,
    sink: &mut ResponseSink,
) -> Result<(), ApiError> {
    let _span = explainti_obs::span!("serve.request.swap");
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err(ApiError::new(ErrorCode::ShuttingDown, "server is shutting down"));
    }
    let req: SwapRequest = std::str::from_utf8(&request.body)
        .map_err(|_| ApiError::bad_request("body is not valid UTF-8"))
        .and_then(|text| {
            serde_json::from_str(text)
                .map_err(|e| ApiError::bad_request(format!("bad swap request: {e}")))
        })?;
    if shared.swap_lock.compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst).is_err() {
        return Err(ApiError::swap_in_progress("a swap is already in flight", 2));
    }
    let _guard = SwapGuard(&shared.swap_lock);
    explainti_obs::counter!("serve.swap.attempts", 1);
    match run_swap(shared, &req.model_dir) {
        Ok((previous_generation, generation, verified)) => {
            explainti_obs::counter!("serve.swap.committed", 1);
            explainti_obs::set_gauge("serve.swap.generation", generation as f64);
            let resp = SwapResponse {
                schema_version: SCHEMA_VERSION,
                generation,
                previous_generation,
                verified,
            };
            sink.send_json(200, &serde_json::to_string(&resp).unwrap_or_default());
            Ok(())
        }
        Err(err) => {
            explainti_obs::counter!("serve.swap.failed", 1);
            Err(err)
        }
    }
}

/// `GET /v1/admin/store`: the live generation's explanation store,
/// shard by shard. While the `store.shard.unavailable` failpoint holds
/// a shard down this answers a typed 503 with `retry_after_s`, the same
/// signal `/v1/interpret` degrades around via replica failover.
fn handle_store(
    shared: &Shared,
    gen: &Arc<Generation>,
    _request: &http::Request,
    _rtrace: &mut explainti_obs::RequestTrace,
    sink: &mut ResponseSink,
) -> Result<(), ApiError> {
    let _span = explainti_obs::span!("serve.request.store");
    let Some(task) = gen.model.tasks().first() else {
        return Err(ApiError::internal("model has no tasks"));
    };
    let store = &task.q;
    if let Some(shard) = store.probe_unavailable() {
        return Err(ApiError::shard_unavailable(format!("shard {shard} is unavailable"), 1));
    }
    let shards = store
        .shard_sizes()
        .into_iter()
        .enumerate()
        .map(|(shard, (stored, tombstones))| ShardStatus { shard, stored, tombstones })
        .collect();
    let resp = StoreStatusResponse {
        schema_version: SCHEMA_VERSION,
        generation: gen.id,
        shards,
        stored: store.stored(),
        tombstones: store.tombstones(),
        swap_in_progress: shared.swap_lock.load(Ordering::SeqCst),
    };
    sink.send_json(200, &serde_json::to_string(&resp).unwrap_or_default());
    Ok(())
}

// ---- Routing ----------------------------------------------------------

/// A route handler: answers exactly one request through the sink. An
/// `Err` return before the sink responded becomes a typed error body;
/// after the head went out it aborts the stream.
type Handler = fn(
    &Shared,
    &Arc<Generation>,
    &http::Request,
    &mut explainti_obs::RequestTrace,
    &mut ResponseSink,
) -> Result<(), ApiError>;

/// One endpoint in the declarative route table.
struct Route {
    method: &'static str,
    path: &'static str,
    /// Wide-event endpoint label.
    name: &'static str,
    handler: Handler,
    /// Pre-v3 alias kept for compatibility; responses carry
    /// `Deprecation: true` so clients can migrate before v4 drops it.
    deprecated: bool,
}

/// The single source of truth for routing: the dispatcher derives both
/// the 405 `Allow` header set and the known-path list from this table.
#[rustfmt::skip]
const ROUTES: &[Route] = &[
    Route { method: "POST", path: "/v1/interpret", name: "interpret", handler: handle_interpret, deprecated: false },
    Route { method: "GET", path: "/v1/healthz", name: "healthz", handler: handle_healthz, deprecated: false },
    Route { method: "GET", path: "/v1/metrics", name: "metrics", handler: handle_metrics, deprecated: false },
    Route { method: "GET", path: "/v1/config", name: "config", handler: handle_config, deprecated: false },
    Route { method: "POST", path: "/v1/admin/swap", name: "swap", handler: handle_swap, deprecated: false },
    Route { method: "GET", path: "/v1/admin/store", name: "store", handler: handle_store, deprecated: false },
    Route { method: "POST", path: "/v1/admin/shutdown", name: "shutdown", handler: handle_shutdown, deprecated: false },
    // v2 location of shutdown; same handler, flagged deprecated.
    Route { method: "POST", path: "/v1/shutdown", name: "shutdown", handler: handle_shutdown, deprecated: true },
];

enum RouteMatch {
    Found(&'static Route),
    /// Known path, wrong method; the derived `Allow` header value.
    WrongMethod(String),
    Unknown,
}

fn route(method: &str, path: &str) -> RouteMatch {
    let mut allow: Vec<&str> = Vec::new();
    for r in ROUTES {
        if r.path == path {
            if r.method == method {
                return RouteMatch::Found(r);
            }
            if !allow.contains(&r.method) {
                allow.push(r.method);
            }
        }
    }
    if allow.is_empty() {
        RouteMatch::Unknown
    } else {
        RouteMatch::WrongMethod(allow.join(", "))
    }
}

// ---- Dispatcher pool --------------------------------------------------

fn dispatch_loop(shared: &Shared) {
    // Depth 1: each pop is one request; fairness across connections
    // comes from the queue order the event loop fills.
    while let Some(batch) = shared.dispatch.pop_batch(1) {
        for job in batch {
            handle_request(shared, job);
        }
    }
}

/// Runs one request end to end on a dispatcher thread: route, handle,
/// record the wide event, and feed the SLO window.
fn handle_request(shared: &Shared, job: DispatchJob) {
    let trace_id = explainti_obs::next_trace_id();
    let tid = trace_id.to_string();
    let mut rtrace = explainti_obs::RequestTrace::new(trace_id);
    rtrace.add_stage("parse", job.request.parse_ns);
    explainti_obs::counter!("serve.requests", 1);
    let request = job.request;
    let mut sink =
        ResponseSink::new(job.io, job.waker, job.conn_id, tid, request.keep_alive, request.http11);
    // One generation snapshot per request: every byte of this response —
    // prediction, labels, config block, `X-Model-Generation` header —
    // comes from the same generation even if a swap commits mid-request.
    let gen = shared.generations.current();
    sink.set_generation(gen.id);
    let mut is_interpret = false;
    let result: Result<(), ApiError> = match route(&request.method, &request.path) {
        RouteMatch::Found(r) => {
            rtrace.set_endpoint(r.name);
            if r.deprecated {
                sink.set_deprecated();
            }
            if r.name == "interpret" {
                is_interpret = true;
            }
            (r.handler)(shared, &gen, &request, &mut rtrace, &mut sink)
        }
        RouteMatch::WrongMethod(allow) => {
            let err = ApiError::new(ErrorCode::MethodNotAllowed, "wrong method for this endpoint");
            sink.send_error(&err, Some(&allow));
            rtrace.set_status(err.status());
            rtrace.finish();
            return;
        }
        RouteMatch::Unknown => {
            let err =
                ApiError::new(ErrorCode::NotFound, format!("no such endpoint: {}", request.path));
            sink.send_error(&err, None);
            rtrace.set_status(err.status());
            rtrace.finish();
            return;
        }
    };
    let status = match &result {
        Ok(()) => sink.status(),
        Err(err) => err.status(),
    };
    if let Err(err) = result {
        if sink.responded() {
            sink.abort_stream(&err);
        } else {
            sink.send_error(&err, None);
        }
    }
    rtrace.set_status(status);
    if is_interpret {
        // The SLO window tracks the paper-relevant endpoint only; 5xx
        // count as errors, client errors (4xx) do not.
        shared.slo.record(rtrace.elapsed_ns(), status >= 500);
    }
    rtrace.finish();
}

// ---- Server lifecycle -------------------------------------------------

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] (or POST `/v1/shutdown`) then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    event_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown: stop accepting, drain in-flight
    /// connections and queued jobs, stop the dispatchers and workers.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// The shutdown flag, for wiring to an external signal (the CLI
    /// registers this so Ctrl-C triggers the same graceful drain).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Blocks until the event loop, every dispatcher, and every worker
    /// have exited. Idempotent.
    pub fn join(&mut self) {
        if let Some(t) = self.event_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds the listener and spawns the event loop, dispatcher pool, and
/// worker pool.
///
/// `labels` are the human-readable names responses resolve label indices
/// against (typically the corpus's `type_labels`).
pub fn start(
    model: Arc<ExplainTi>,
    labels: Vec<String>,
    cfg: ServeConfig,
) -> io::Result<ServerHandle> {
    let shards = cfg.shards.max(1);
    let replicas = cfg.replicas.max(1);
    if replicas > shards {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("replicas ({replicas}) must not exceed shards ({shards})"),
        ));
    }
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;

    // Mirror every failpoint trip into the obs counters so chaos drills
    // show up in `/v1/metrics` alongside ordinary serving telemetry.
    explainti_faults::set_observer(|site| {
        explainti_obs::add_counter(&format!("faults.hit.{site}"), 1);
    });

    // `--threads` resizes the process-wide kernel pool; 0 leaves
    // whatever the process already configured (CLI / env / default).
    if cfg.threads > 0 {
        explainti_pool::configure(cfg.threads);
    }
    let threads = explainti_pool::global().threads();

    let max_conns = cfg.max_conns.max(1);
    // Handlers block on worker replies, so micro-batches only form when
    // more dispatchers than workers run concurrently.
    let dispatchers =
        if cfg.dispatchers > 0 { cfg.dispatchers } else { (cfg.workers.max(1) * 4).clamp(4, 64) };

    let generations = GenerationHandle::new(model, labels);
    let boot = generations.current();
    explainti_obs::set_gauge("serve.swap.generation", boot.id as f64);
    let config = ConfigResponse {
        schema_version: SCHEMA_VERSION,
        workers: cfg.workers,
        threads,
        queue_cap: cfg.queue_cap,
        max_batch: cfg.max_batch.max(1),
        cache_cap: cfg.cache_cap,
        deadline_ms: cfg.deadline_ms.max(1),
        top_k: cfg.top_k.max(1),
        max_conns,
        dispatchers,
        read_timeout_ms: cfg.read_timeout_ms.max(1),
        idle_timeout_ms: cfg.idle_timeout_ms.max(1),
        shards,
        replicas,
        swap_verify: cfg.swap_verify,
        quantized: cfg.quantized,
        model: model_info(&boot),
    };
    drop(boot);

    let shutdown = Arc::new(AtomicBool::new(false));
    let shared = Arc::new(Shared {
        generations,
        queue: BatchQueue::new(cfg.queue_cap),
        // One in-flight request per connection bounds the dispatch
        // queue, so size it to the connection limit.
        dispatch: BatchQueue::new(max_conns + 16),
        cache: OrderedMutex::new(&classes::SERVE_CACHE, LruCache::new(cfg.cache_cap)),
        shutdown: Arc::clone(&shutdown),
        top_k: cfg.top_k.max(1),
        max_batch: cfg.max_batch.max(1),
        deadline: Duration::from_millis(cfg.deadline_ms.max(1)),
        slo: explainti_obs::SloWindow::new(cfg.slo_window_s.max(1)),
        swap_lock: AtomicBool::new(false),
        shards,
        replicas,
        swap_verify: cfg.swap_verify,
        quantized: cfg.quantized,
        config,
    });

    let workers: Vec<JoinHandle<()>> = (0..cfg.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
        })
        .collect::<io::Result<_>>()?;

    let dispatcher_threads: Vec<JoinHandle<()>> = (0..dispatchers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("serve-dispatch-{i}"))
                .spawn(move || dispatch_loop(&shared))
        })
        .collect::<io::Result<_>>()?;

    let loop_cfg = LoopCfg {
        max_conns,
        read_timeout: Duration::from_millis(cfg.read_timeout_ms.max(1)),
        idle_timeout: Duration::from_millis(cfg.idle_timeout_ms.max(1)),
    };
    let (run_loop, _waker) = event_loop::prepare(listener, Arc::clone(&shared), loop_cfg)?;

    let event_shared = Arc::clone(&shared);
    let event_thread =
        std::thread::Builder::new().name("serve-eventloop".to_string()).spawn(move || {
            run_loop();
            // The loop drained every connection (or hit the grace
            // bound): stop the dispatchers, then let the workers drain
            // what is already queued and exit.
            event_shared.dispatch.close();
            for d in dispatcher_threads {
                let _ = d.join();
            }
            event_shared.queue.close();
            for w in workers {
                let _ = w.join();
            }
        })?;

    Ok(ServerHandle { addr, shutdown, event_thread: Some(event_thread) })
}
