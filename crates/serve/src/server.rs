//! The micro-batching inference server.
//!
//! Connection handlers parse requests into [`explainti_api`] DTOs, look
//! each column up in the shared LRU cache, and enqueue misses as
//! [`Job`]s on the bounded [`BatchQueue`]. A fixed pool of worker
//! threads drains the queue in micro-batches and runs
//! [`ExplainTi::predict_encoded_batch`] over one shared tape, so weight
//! snapshots amortise across concurrent requests. The queue is the
//! backpressure point: when it is full the handler answers 503 instead
//! of buffering, and every job carries a deadline so abandoned requests
//! are dropped rather than computed.
//!
//! `ExplainTi`'s prediction path is `&self` and consumes no RNG, so all
//! workers share one `Arc<ExplainTi>` with no locking — the "replica
//! pool" degenerates to a single shared replica.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use explainti_api::{
    ApiError, ColumnPrediction, ConfigResponse, ErrorCode, InterpretTableRequest,
    InterpretTableResponse, ModelInfo, PredictRequest, PredictResponse, SCHEMA_VERSION,
};
use explainti_core::ExplainTi;
use serde::Deserialize;
use serde_json::{json, Value};

use crate::cache::LruCache;
use crate::http;
use crate::queue::{BatchQueue, PushError};

/// How the server is sized; every knob has a CLI flag.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads draining the queue. `0` is allowed for tests that
    /// need the queue to fill deterministically.
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it answer 503.
    pub queue_cap: usize,
    /// Maximum jobs a worker drains per wake-up.
    pub max_batch: usize,
    /// LRU cache capacity (cached full responses, explanations included).
    pub cache_cap: usize,
    /// Per-request deadline; exceeded requests answer 504.
    pub deadline_ms: u64,
    /// Explanations per view in each response.
    pub top_k: usize,
    /// Kernel compute threads (the shared pool's width). Distinct from
    /// `workers`: workers bound how many requests are *in flight*, while
    /// threads bound how much CPU each micro-batch forward uses. `0`
    /// inherits the process-wide pool as already configured (CLI flag,
    /// `EXPLAINTI_THREADS`, or available parallelism).
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_cap: 64,
            max_batch: 8,
            cache_cap: 256,
            deadline_ms: 30_000,
            top_k: explainti_api::DEFAULT_TOP_K,
            threads: 0,
        }
    }
}

/// Hard cap on columns per `/v1/interpret` table request: a pathological
/// 10k-column row must answer a clean 400, not exhaust the queue.
const MAX_TABLE_COLUMNS: usize = 512;

/// How many times a job may be attempted in total (1 initial + retries).
/// A worker panic re-enqueues the batch's jobs once; a second panic
/// answers a typed 500 instead of retrying forever.
const MAX_ATTEMPTS: u32 = 2;

/// Base backoff before a panicked batch is re-enqueued; doubles per
/// attempt already made.
const RETRY_BACKOFF_MS: u64 = 10;

/// One queued column prediction.
struct Job {
    encoded: explainti_tokenizer::Encoded,
    key: u64,
    resp_tx: mpsc::Sender<Result<Arc<PredictResponse>, ApiError>>,
    deadline: Instant,
    /// Times this job has been handed to a worker (retry bookkeeping).
    attempts: u32,
}

struct Shared {
    model: Arc<ExplainTi>,
    labels: Vec<String>,
    queue: BatchQueue<Job>,
    cache: Mutex<LruCache<u64, Arc<PredictResponse>>>,
    shutdown: Arc<AtomicBool>,
    active_conns: AtomicUsize,
    top_k: usize,
    max_batch: usize,
    deadline: Duration,
    /// Effective knobs + model facts, frozen at startup for `/v1/config`.
    config: ConfigResponse,
}

/// Poison-recovering cache lock: `LruCache` operations leave it
/// consistent even if a holder panics mid-call, and a handler must not
/// panic on a poisoned mutex (EA006) — recover the guard instead.
fn lock_cache(shared: &Shared) -> std::sync::MutexGuard<'_, LruCache<u64, Arc<PredictResponse>>> {
    shared.cache.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Hash of the request content a cached response is keyed by.
fn cache_key(title: &str, header: &str, cells: &[String]) -> u64 {
    let mut h = DefaultHasher::new();
    title.hash(&mut h);
    header.hash(&mut h);
    cells.hash(&mut h);
    h.finish()
}

// ---- Worker pool ------------------------------------------------------

fn worker_loop(shared: &Shared) {
    while let Some(batch) = shared.queue.pop_batch(shared.max_batch) {
        explainti_obs::set_gauge("serve.queue.depth", shared.queue.len() as f64);
        let now = Instant::now();
        let (live, expired): (Vec<Job>, Vec<Job>) =
            batch.into_iter().partition(|j| j.deadline > now);
        if !expired.is_empty() {
            // The waiting handler already gave up; don't burn a forward.
            explainti_obs::counter!("serve.jobs.expired", expired.len() as u64);
        }
        if live.is_empty() {
            continue;
        }
        if explainti_obs::enabled() {
            explainti_obs::registry().histogram("serve.batch.size").record(live.len() as u64);
        }
        let _span = explainti_obs::span!("serve.batch.predict");
        // Chaos site: a slow batch (GC pause / noisy neighbour stand-in)
        // to exercise the deadline path without a real stall.
        if explainti_faults::triggered("serve.batch.slow") {
            std::thread::sleep(Duration::from_millis(50));
        }
        let encs: Vec<explainti_tokenizer::Encoded> =
            live.iter().map(|j| j.encoded.clone()).collect();
        // A panicking forward (injected via `serve.worker.panic` or real)
        // must not kill the worker: recover, re-enqueue each job within
        // its retry budget, and answer a typed 500 past it.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            explainti_faults::panic_if_triggered("serve.worker.panic");
            shared.model.predict_encoded_batch(&encs)
        }));
        match outcome {
            Ok(preds) => {
                for (job, pred) in live.into_iter().zip(preds) {
                    let resp = Arc::new(PredictResponse::from_prediction(
                        &pred,
                        &shared.labels,
                        shared.top_k,
                    ));
                    lock_cache(shared).insert(job.key, Arc::clone(&resp));
                    // A closed receiver means the handler timed out.
                    let _ = job.resp_tx.send(Ok(resp));
                }
            }
            Err(_) => {
                explainti_obs::counter!("serve.worker.panics", 1);
                for mut job in live {
                    if job.attempts + 1 >= MAX_ATTEMPTS {
                        explainti_obs::counter!("serve.jobs.retry_exhausted", 1);
                        let _ = job.resp_tx.send(Err(ApiError::internal(
                            "prediction worker panicked and the retry budget is exhausted",
                        )));
                        continue;
                    }
                    std::thread::sleep(Duration::from_millis(RETRY_BACKOFF_MS << job.attempts));
                    job.attempts += 1;
                    explainti_obs::counter!("serve.jobs.retried", 1);
                    let tx = job.resp_tx.clone();
                    if shared.queue.push(job).is_err() {
                        // Queue full or closed mid-retry: fail loudly
                        // rather than letting the handler hit 504.
                        explainti_obs::counter!("serve.jobs.retry_dropped", 1);
                        let _ = tx.send(Err(ApiError::internal(
                            "prediction retry could not be re-enqueued",
                        )));
                    }
                }
            }
        }
    }
}

// ---- Request handling -------------------------------------------------

/// Looks the column up in the cache or enqueues it, returning a receiver
/// for the (possibly already-delivered) response.
fn submit_column(
    shared: &Shared,
    req: &PredictRequest,
    deadline: Instant,
) -> Result<mpsc::Receiver<Result<Arc<PredictResponse>, ApiError>>, ApiError> {
    if req.header.is_empty() && req.cells.is_empty() {
        return Err(ApiError::bad_request("column has neither header nor cells"));
    }
    let key = cache_key(&req.title, &req.header, &req.cells);
    let (tx, rx) = mpsc::channel();
    if let Some(hit) = lock_cache(shared).get(&key) {
        explainti_obs::counter!("serve.cache.hit", 1);
        let _ = tx.send(Ok(Arc::clone(hit)));
        return Ok(rx);
    }
    explainti_obs::counter!("serve.cache.miss", 1);
    // Chaos site: backpressure without actually filling the queue.
    if explainti_faults::triggered("serve.queue.full") {
        return Err(ApiError::new(
            ErrorCode::QueueFull,
            format!("request queue at capacity ({})", shared.queue.capacity()),
        ));
    }
    let cells: Vec<&str> = req.cells.iter().map(String::as_str).collect();
    let encoded = shared.model.encode_ad_hoc_column(&req.title, &req.header, &cells);
    let job = Job { encoded, key, resp_tx: tx, deadline, attempts: 0 };
    match shared.queue.push(job) {
        Ok(()) => {
            explainti_obs::set_gauge("serve.queue.depth", shared.queue.len() as f64);
            Ok(rx)
        }
        Err(PushError::Full) => Err(ApiError::new(
            ErrorCode::QueueFull,
            format!("request queue at capacity ({})", shared.queue.capacity()),
        )),
        Err(PushError::Closed) => {
            Err(ApiError::new(ErrorCode::ShuttingDown, "server is shutting down"))
        }
    }
}

fn await_response(
    rx: &mpsc::Receiver<Result<Arc<PredictResponse>, ApiError>>,
    deadline: Instant,
) -> Result<Arc<PredictResponse>, ApiError> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    rx.recv_timeout(remaining)
        .map_err(|_| ApiError::new(ErrorCode::DeadlineExceeded, "prediction missed its deadline"))?
}

fn handle_interpret(shared: &Shared, body: &[u8]) -> Result<String, ApiError> {
    let _span = explainti_obs::span!("serve.request.interpret");
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err(ApiError::new(ErrorCode::ShuttingDown, "server is shutting down"));
    }
    let text =
        std::str::from_utf8(body).map_err(|_| ApiError::bad_request("body is not valid UTF-8"))?;
    let value: Value =
        serde_json::from_str(text).map_err(|e| ApiError::bad_request(format!("bad JSON: {e}")))?;
    let deadline = Instant::now() + shared.deadline;

    // A body with a "columns" key is a whole table; otherwise a single
    // column. (The vendored serde has no untagged enums, so the dispatch
    // is a one-key sniff on the parsed tree.)
    if value.get("columns").is_some() {
        let req = InterpretTableRequest::from_value(&value)
            .map_err(|e| ApiError::bad_request(format!("bad table request: {e}")))?;
        if req.columns.is_empty() {
            return Err(ApiError::bad_request("table has no columns"));
        }
        if req.columns.len() > MAX_TABLE_COLUMNS {
            return Err(ApiError::bad_request(format!(
                "table has {} columns; the per-request limit is {MAX_TABLE_COLUMNS} — \
                 split the table across requests",
                req.columns.len()
            )));
        }
        // Enqueue every column before waiting on any, so one connection's
        // table still forms a micro-batch for the workers.
        let mut pending = Vec::with_capacity(req.columns.len());
        for idx in 0..req.columns.len() {
            let col = req.column_request(idx);
            pending.push((col.header.clone(), submit_column(shared, &col, deadline)?));
        }
        let mut columns = Vec::with_capacity(pending.len());
        for (header, rx) in pending {
            let resp = await_response(&rx, deadline)?;
            columns.push(ColumnPrediction { header, prediction: (*resp).clone() });
        }
        let out =
            InterpretTableResponse { schema_version: SCHEMA_VERSION, title: req.title, columns };
        Ok(serde_json::to_string(&out).unwrap_or_default())
    } else {
        let req = PredictRequest::from_value(&value)
            .map_err(|e| ApiError::bad_request(format!("bad predict request: {e}")))?;
        let rx = submit_column(shared, &req, deadline)?;
        let resp = await_response(&rx, deadline)?;
        Ok(serde_json::to_string(&*resp).unwrap_or_default())
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    // A stalled client must not block shutdown drain forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let request = match http::read_request(&stream) {
        Ok(r) => r,
        Err(err) => {
            let _ = http::write_error(&mut stream, &err);
            return;
        }
    };
    explainti_obs::counter!("serve.requests", 1);
    let result: Result<String, ApiError> = match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/interpret") => handle_interpret(shared, &request.body),
        ("GET", "/v1/healthz") => {
            let _span = explainti_obs::span!("serve.request.healthz");
            let degraded = shared.model.is_degraded();
            Ok(serde_json::to_string(&json!({"degraded": degraded, "status": "ok"}))
                .unwrap_or_default())
        }
        ("GET", "/v1/metrics") => {
            let _span = explainti_obs::span!("serve.request.metrics");
            let mut summary = explainti_obs::summary();
            if let Value::Object(map) = &mut summary {
                map.insert("schema_version".to_string(), json!(SCHEMA_VERSION));
                map.insert("degraded".to_string(), json!(shared.model.is_degraded()));
                // Failpoint trip counts (empty object when no chaos drill
                // has run), so operators and the chaos-smoke CI job can
                // scrape what actually fired.
                let mut hits = std::collections::BTreeMap::new();
                for (site, n) in explainti_faults::hit_counts() {
                    hits.insert(site, json!(n));
                }
                map.insert("failpoints".to_string(), Value::Object(hits));
            }
            Ok(serde_json::to_string(&summary).unwrap_or_default())
        }
        ("GET", "/v1/config") => {
            let _span = explainti_obs::span!("serve.request.config");
            Ok(serde_json::to_string(&shared.config).unwrap_or_default())
        }
        ("POST", "/v1/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Ok(serde_json::to_string(&json!({"status": "shutting down"})).unwrap_or_default())
        }
        (
            "POST" | "GET",
            "/v1/interpret" | "/v1/healthz" | "/v1/metrics" | "/v1/config" | "/v1/shutdown",
        ) => Err(ApiError::new(ErrorCode::MethodNotAllowed, "wrong method for this endpoint")),
        (_, path) => Err(ApiError::new(ErrorCode::NotFound, format!("no such endpoint: {path}"))),
    };
    match result {
        Ok(body) => {
            let _ = http::write_json(&mut stream, 200, &body);
        }
        Err(err) => {
            let _ = http::write_error(&mut stream, &err);
        }
    }
}

// ---- Server lifecycle -------------------------------------------------

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] (or POST `/v1/shutdown`) then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown: stop accepting, drain in-flight
    /// connections and queued jobs, stop the workers.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// The shutdown flag, for wiring to an external signal (the CLI
    /// registers this so Ctrl-C triggers the same graceful drain).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Blocks until the accept loop, every connection handler, and every
    /// worker have exited. Idempotent.
    pub fn join(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds the listener and spawns the accept loop plus worker pool.
///
/// `labels` are the human-readable names responses resolve label indices
/// against (typically the corpus's `type_labels`).
pub fn start(
    model: Arc<ExplainTi>,
    labels: Vec<String>,
    cfg: ServeConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    // Mirror every failpoint trip into the obs counters so chaos drills
    // show up in `/v1/metrics` alongside ordinary serving telemetry.
    explainti_faults::set_observer(|site| {
        explainti_obs::add_counter(&format!("faults.hit.{site}"), 1);
    });

    // `--threads` resizes the process-wide kernel pool; 0 leaves
    // whatever the process already configured (CLI / env / default).
    if cfg.threads > 0 {
        explainti_pool::configure(cfg.threads);
    }
    let threads = explainti_pool::global().threads();

    let enc_cfg = &model.cfg.encoder;
    let config = ConfigResponse {
        schema_version: SCHEMA_VERSION,
        workers: cfg.workers,
        threads,
        queue_cap: cfg.queue_cap,
        max_batch: cfg.max_batch.max(1),
        cache_cap: cfg.cache_cap,
        deadline_ms: cfg.deadline_ms.max(1),
        top_k: cfg.top_k.max(1),
        model: ModelInfo {
            d_model: enc_cfg.d_model,
            layers: enc_cfg.n_layers,
            max_seq: enc_cfg.max_seq,
            vocab_size: model.tokenizer.vocab_size(),
            num_labels: labels.len(),
            num_weights: model.num_weights(),
        },
    };

    let shutdown = Arc::new(AtomicBool::new(false));
    let shared = Arc::new(Shared {
        model,
        labels,
        queue: BatchQueue::new(cfg.queue_cap),
        cache: Mutex::new(LruCache::new(cfg.cache_cap)),
        shutdown: Arc::clone(&shutdown),
        active_conns: AtomicUsize::new(0),
        top_k: cfg.top_k.max(1),
        max_batch: cfg.max_batch.max(1),
        deadline: Duration::from_millis(cfg.deadline_ms.max(1)),
        config,
    });

    let workers: Vec<JoinHandle<()>> = (0..cfg.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
        })
        .collect::<io::Result<_>>()?;

    let accept_shared = Arc::clone(&shared);
    let accept_thread =
        std::thread::Builder::new().name("serve-accept".to_string()).spawn(move || {
            accept_loop(&listener, &accept_shared);
            // Stopped accepting; wait out in-flight connections, then let
            // the workers drain what is already queued and exit.
            while accept_shared.active_conns.load(Ordering::SeqCst) > 0 {
                std::thread::sleep(Duration::from_millis(5));
            }
            accept_shared.queue.close();
            for w in workers {
                let _ = w.join();
            }
        })?;

    Ok(ServerHandle { addr, shutdown, accept_thread: Some(accept_thread) })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut conn_id = 0u64;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                conn_id += 1;
                shared.active_conns.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("serve-conn-{conn_id}"))
                    .spawn(move || {
                        handle_connection(&conn_shared, stream);
                        conn_shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}
