//! The micro-batching inference server.
//!
//! Connection handlers parse requests into [`explainti_api`] DTOs, look
//! each column up in the shared LRU cache, and enqueue misses as
//! [`Job`]s on the bounded [`BatchQueue`]. A fixed pool of worker
//! threads drains the queue in micro-batches and runs
//! [`ExplainTi::predict_encoded_batch`] over one shared tape, so weight
//! snapshots amortise across concurrent requests. The queue is the
//! backpressure point: when it is full the handler answers 503 instead
//! of buffering, and every job carries a deadline so abandoned requests
//! are dropped rather than computed.
//!
//! `ExplainTi`'s prediction path is `&self` and consumes no RNG, so all
//! workers share one `Arc<ExplainTi>` with no locking — the "replica
//! pool" degenerates to a single shared replica.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use explainti_api::{
    ApiError, ColumnPrediction, ConfigResponse, ErrorCode, InterpretTableRequest,
    InterpretTableResponse, ModelInfo, PredictRequest, PredictResponse, SCHEMA_VERSION,
};
use explainti_core::ExplainTi;
use serde::Deserialize;
use serde_json::{json, Value};

use crate::cache::LruCache;
use crate::http;
use crate::queue::{BatchQueue, PushError};

/// How the server is sized; every knob has a CLI flag.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads draining the queue. `0` is allowed for tests that
    /// need the queue to fill deterministically.
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it answer 503.
    pub queue_cap: usize,
    /// Maximum jobs a worker drains per wake-up.
    pub max_batch: usize,
    /// LRU cache capacity (cached full responses, explanations included).
    pub cache_cap: usize,
    /// Per-request deadline; exceeded requests answer 504.
    pub deadline_ms: u64,
    /// Explanations per view in each response.
    pub top_k: usize,
    /// Kernel compute threads (the shared pool's width). Distinct from
    /// `workers`: workers bound how many requests are *in flight*, while
    /// threads bound how much CPU each micro-batch forward uses. `0`
    /// inherits the process-wide pool as already configured (CLI flag,
    /// `EXPLAINTI_THREADS`, or available parallelism).
    pub threads: usize,
    /// Sliding SLO window length in seconds: rolling p50/p99/p999 and
    /// error rate over the trailing window, published as `serve.slo.*`
    /// gauges at metrics-scrape time.
    pub slo_window_s: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_cap: 64,
            max_batch: 8,
            cache_cap: 256,
            deadline_ms: 30_000,
            top_k: explainti_api::DEFAULT_TOP_K,
            threads: 0,
            slo_window_s: 60,
        }
    }
}

/// Hard cap on columns per `/v1/interpret` table request: a pathological
/// 10k-column row must answer a clean 400, not exhaust the queue.
const MAX_TABLE_COLUMNS: usize = 512;

/// How many times a job may be attempted in total (1 initial + retries).
/// A worker panic re-enqueues the batch's jobs once; a second panic
/// answers a typed 500 instead of retrying forever.
const MAX_ATTEMPTS: u32 = 2;

/// Base backoff before a panicked batch is re-enqueued; doubles per
/// attempt already made.
const RETRY_BACKOFF_MS: u64 = 10;

/// Stage timings a worker reports back with each response so the
/// connection handler can fold them into the request's wide event.
/// `queue_wait` is per job; the remaining fields describe the micro-batch
/// the job rode in (per-request events record their batch's cost — the
/// critical path the request actually waited on — not an amortised share).
struct JobStages {
    queue_wait_ns: u64,
    batch_assembly_ns: u64,
    /// Forward + head time net of the three explanation views.
    predict_ns: u64,
    le_ns: u64,
    ge_ns: u64,
    se_ns: u64,
    batch_size: u64,
}

impl JobStages {
    /// Total worker-side chain: the sequential enqueue → reply interval.
    fn chain_ns(&self) -> u64 {
        self.queue_wait_ns
            .saturating_add(self.batch_assembly_ns)
            .saturating_add(self.predict_ns)
            .saturating_add(self.le_ns)
            .saturating_add(self.ge_ns)
            .saturating_add(self.se_ns)
    }
}

/// What a worker (or the cache path) sends back per job: the response
/// plus stage timings (`None` for cache hits — nothing was computed).
type JobReply = Result<(Arc<PredictResponse>, Option<JobStages>), ApiError>;

/// Saturating nanoseconds from `earlier` to `later` (0 if out of order).
fn ns_since(earlier: Instant, later: Instant) -> u64 {
    later.saturating_duration_since(earlier).as_nanos().min(u64::MAX as u128) as u64
}

/// One queued column prediction.
struct Job {
    encoded: explainti_tokenizer::Encoded,
    key: u64,
    resp_tx: mpsc::Sender<JobReply>,
    deadline: Instant,
    /// When the job entered the queue (wide-event `queue_wait`).
    enqueued_at: Instant,
    /// Times this job has been handed to a worker (retry bookkeeping).
    attempts: u32,
}

struct Shared {
    model: Arc<ExplainTi>,
    labels: Vec<String>,
    queue: BatchQueue<Job>,
    cache: Mutex<LruCache<u64, Arc<PredictResponse>>>,
    shutdown: Arc<AtomicBool>,
    active_conns: AtomicUsize,
    top_k: usize,
    max_batch: usize,
    deadline: Duration,
    /// Rolling latency/error window behind the `serve.slo.*` gauges.
    slo: explainti_obs::SloWindow,
    /// Effective knobs + model facts, frozen at startup for `/v1/config`.
    config: ConfigResponse,
}

/// Poison-recovering cache lock: `LruCache` operations leave it
/// consistent even if a holder panics mid-call, and a handler must not
/// panic on a poisoned mutex (EA006) — recover the guard instead.
fn lock_cache(shared: &Shared) -> std::sync::MutexGuard<'_, LruCache<u64, Arc<PredictResponse>>> {
    shared.cache.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Hash of the request content a cached response is keyed by.
fn cache_key(title: &str, header: &str, cells: &[String]) -> u64 {
    let mut h = DefaultHasher::new();
    title.hash(&mut h);
    header.hash(&mut h);
    cells.hash(&mut h);
    h.finish()
}

// ---- Worker pool ------------------------------------------------------

fn worker_loop(shared: &Shared) {
    while let Some(batch) = shared.queue.pop_batch(shared.max_batch) {
        let drained_at = Instant::now();
        let depth = shared.queue.len();
        explainti_obs::set_gauge("serve.queue.depth", depth as f64);
        if explainti_obs::enabled() {
            // Depth sampled at every drain: a distribution (not just the
            // latest gauge value), so load tests can plot queue pressure.
            explainti_obs::registry().histogram("serve.queue.depth.sampled").record(depth as u64);
        }
        let (live, expired): (Vec<Job>, Vec<Job>) =
            batch.into_iter().partition(|j| j.deadline > drained_at);
        if !expired.is_empty() {
            // The waiting handler already gave up; don't burn a forward.
            explainti_obs::counter!("serve.jobs.expired", expired.len() as u64);
        }
        if live.is_empty() {
            continue;
        }
        if explainti_obs::enabled() {
            explainti_obs::registry().histogram("serve.batch.size").record(live.len() as u64);
        }
        let _span = explainti_obs::span!("serve.batch.predict");
        // Chaos site: a slow batch (GC pause / noisy neighbour stand-in)
        // to exercise the deadline path without a real stall.
        if explainti_faults::triggered("serve.batch.slow") {
            std::thread::sleep(Duration::from_millis(50));
        }
        let encs: Vec<explainti_tokenizer::Encoded> =
            live.iter().map(|j| j.encoded.clone()).collect();
        let forward_at = Instant::now();
        let batch_assembly_ns = ns_since(drained_at, forward_at);
        // Capture every span the forward closes — including those on
        // kernel-pool threads, which re-install this capture around each
        // task — so per-request wide events can attribute predict/LE/GE/SE.
        let capture = explainti_obs::SpanCapture::new();
        // A panicking forward (injected via `serve.worker.panic` or real)
        // must not kill the worker: recover, re-enqueue each job within
        // its retry budget, and answer a typed 500 past it.
        let outcome = {
            let _ctx = capture.install();
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                explainti_faults::panic_if_triggered("serve.worker.panic");
                shared.model.predict_encoded_batch(&encs)
            }))
        };
        match outcome {
            Ok(preds) => {
                let le_ns = capture.get("explain.le");
                let ge_ns = capture.get("explain.ge");
                let se_ns = capture.get("explain.se");
                // Disjoint stages: predict is the batch forward net of
                // the three explanation views, so the stage fields sum
                // to (at most) the observed span total.
                let predict_ns = capture
                    .get("model.predict_batch")
                    .saturating_sub(le_ns.saturating_add(ge_ns).saturating_add(se_ns));
                let batch_size = live.len() as u64;
                for (job, pred) in live.into_iter().zip(preds) {
                    let resp = Arc::new(PredictResponse::from_prediction(
                        &pred,
                        &shared.labels,
                        shared.top_k,
                    ));
                    lock_cache(shared).insert(job.key, Arc::clone(&resp));
                    let stages = JobStages {
                        queue_wait_ns: ns_since(job.enqueued_at, drained_at),
                        batch_assembly_ns,
                        predict_ns,
                        le_ns,
                        ge_ns,
                        se_ns,
                        batch_size,
                    };
                    // A closed receiver means the handler timed out.
                    let _ = job.resp_tx.send(Ok((resp, Some(stages))));
                }
            }
            Err(_) => {
                explainti_obs::counter!("serve.worker.panics", 1);
                for mut job in live {
                    if job.attempts + 1 >= MAX_ATTEMPTS {
                        explainti_obs::counter!("serve.jobs.retry_exhausted", 1);
                        let _ = job.resp_tx.send(Err(ApiError::internal(
                            "prediction worker panicked and the retry budget is exhausted",
                        )));
                        continue;
                    }
                    std::thread::sleep(Duration::from_millis(RETRY_BACKOFF_MS << job.attempts));
                    job.attempts += 1;
                    explainti_obs::counter!("serve.jobs.retried", 1);
                    let tx = job.resp_tx.clone();
                    if shared.queue.push(job).is_err() {
                        // Queue full or closed mid-retry: fail loudly
                        // rather than letting the handler hit 504.
                        explainti_obs::counter!("serve.jobs.retry_dropped", 1);
                        let _ = tx.send(Err(ApiError::internal(
                            "prediction retry could not be re-enqueued",
                        )));
                    }
                }
            }
        }
    }
}

// ---- Request handling -------------------------------------------------

/// Looks the column up in the cache or enqueues it, returning a receiver
/// for the (possibly already-delivered) response.
fn submit_column(
    shared: &Shared,
    req: &PredictRequest,
    deadline: Instant,
    rtrace: &mut explainti_obs::RequestTrace,
) -> Result<mpsc::Receiver<JobReply>, ApiError> {
    if req.header.is_empty() && req.cells.is_empty() {
        return Err(ApiError::bad_request("column has neither header nor cells"));
    }
    rtrace.note_column();
    let key = cache_key(&req.title, &req.header, &req.cells);
    let (tx, rx) = mpsc::channel();
    if let Some(hit) = lock_cache(shared).get(&key) {
        explainti_obs::counter!("serve.cache.hit", 1);
        rtrace.note_cache_hit();
        let _ = tx.send(Ok((Arc::clone(hit), None)));
        return Ok(rx);
    }
    explainti_obs::counter!("serve.cache.miss", 1);
    // Chaos site: backpressure without actually filling the queue.
    if explainti_faults::triggered("serve.queue.full") {
        return Err(ApiError::new(
            ErrorCode::QueueFull,
            format!("request queue at capacity ({})", shared.queue.capacity()),
        ));
    }
    let cells: Vec<&str> = req.cells.iter().map(String::as_str).collect();
    let encode_start = Instant::now();
    let encoded = shared.model.encode_ad_hoc_column(&req.title, &req.header, &cells);
    rtrace.add_stage("encode", ns_since(encode_start, Instant::now()));
    let job = Job { encoded, key, resp_tx: tx, deadline, enqueued_at: Instant::now(), attempts: 0 };
    match shared.queue.push(job) {
        Ok(()) => {
            explainti_obs::set_gauge("serve.queue.depth", shared.queue.len() as f64);
            Ok(rx)
        }
        Err(PushError::Full) => Err(ApiError::new(
            ErrorCode::QueueFull,
            format!("request queue at capacity ({})", shared.queue.capacity()),
        )),
        Err(PushError::Closed) => {
            Err(ApiError::new(ErrorCode::ShuttingDown, "server is shutting down"))
        }
    }
}

fn await_response(
    rx: &mpsc::Receiver<JobReply>,
    deadline: Instant,
) -> Result<(Arc<PredictResponse>, Option<JobStages>), ApiError> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    rx.recv_timeout(remaining)
        .map_err(|_| ApiError::new(ErrorCode::DeadlineExceeded, "prediction missed its deadline"))?
}

/// Folds one job's worker-side stage timings into the request's wide
/// event. Multi-column requests keep the *longest* single chain rather
/// than summing across columns: chains of different columns overlap in
/// real time, and the wide-event invariant is that stage durations are
/// sequential pieces of the request's own lifetime (sum ≤ total).
fn fold_worker_stages(best: &mut Option<JobStages>, stages: Option<JobStages>) {
    if let Some(st) = stages {
        let better = best.as_ref().is_none_or(|b| st.chain_ns() > b.chain_ns());
        if better {
            *best = Some(st);
        }
    }
}

/// Writes the chosen worker chain into the wide event's stage fields.
fn apply_worker_stages(rtrace: &mut explainti_obs::RequestTrace, best: Option<JobStages>) {
    if let Some(st) = best {
        rtrace.add_stage("queue_wait", st.queue_wait_ns);
        rtrace.add_stage("batch_assembly", st.batch_assembly_ns);
        rtrace.add_stage("predict", st.predict_ns);
        rtrace.add_stage("explain_le", st.le_ns);
        rtrace.add_stage("explain_ge", st.ge_ns);
        rtrace.add_stage("explain_se", st.se_ns);
        rtrace.note_batch(st.batch_size);
    }
}

fn handle_interpret(
    shared: &Shared,
    body: &[u8],
    rtrace: &mut explainti_obs::RequestTrace,
) -> Result<String, ApiError> {
    let _span = explainti_obs::span!("serve.request.interpret");
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err(ApiError::new(ErrorCode::ShuttingDown, "server is shutting down"));
    }
    let parse_start = Instant::now();
    let parsed: Result<Value, ApiError> = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("body is not valid UTF-8"))
        .and_then(|text| {
            serde_json::from_str(text).map_err(|e| ApiError::bad_request(format!("bad JSON: {e}")))
        });
    rtrace.add_stage("parse", ns_since(parse_start, Instant::now()));
    let value = parsed?;
    let deadline = Instant::now() + shared.deadline;

    // A body with a "columns" key is a whole table; otherwise a single
    // column. (The vendored serde has no untagged enums, so the dispatch
    // is a one-key sniff on the parsed tree.)
    if value.get("columns").is_some() {
        let req = InterpretTableRequest::from_value(&value)
            .map_err(|e| ApiError::bad_request(format!("bad table request: {e}")))?;
        if req.columns.is_empty() {
            return Err(ApiError::bad_request("table has no columns"));
        }
        if req.columns.len() > MAX_TABLE_COLUMNS {
            return Err(ApiError::bad_request(format!(
                "table has {} columns; the per-request limit is {MAX_TABLE_COLUMNS} — \
                 split the table across requests",
                req.columns.len()
            )));
        }
        // Enqueue every column before waiting on any, so one connection's
        // table still forms a micro-batch for the workers.
        let mut pending = Vec::with_capacity(req.columns.len());
        for idx in 0..req.columns.len() {
            let col = req.column_request(idx);
            pending.push((col.header.clone(), submit_column(shared, &col, deadline, rtrace)?));
        }
        let mut columns = Vec::with_capacity(pending.len());
        let mut best = None;
        for (header, rx) in pending {
            let (resp, stages) = await_response(&rx, deadline)?;
            fold_worker_stages(&mut best, stages);
            columns.push(ColumnPrediction { header, prediction: (*resp).clone() });
        }
        apply_worker_stages(rtrace, best);
        let out =
            InterpretTableResponse { schema_version: SCHEMA_VERSION, title: req.title, columns };
        let ser_start = Instant::now();
        let body = serde_json::to_string(&out).unwrap_or_default();
        rtrace.add_stage("serialize", ns_since(ser_start, Instant::now()));
        Ok(body)
    } else {
        let req = PredictRequest::from_value(&value)
            .map_err(|e| ApiError::bad_request(format!("bad predict request: {e}")))?;
        let rx = submit_column(shared, &req, deadline, rtrace)?;
        let (resp, stages) = await_response(&rx, deadline)?;
        apply_worker_stages(rtrace, stages);
        let ser_start = Instant::now();
        let body = serde_json::to_string(&*resp).unwrap_or_default();
        rtrace.add_stage("serialize", ns_since(ser_start, Instant::now()));
        Ok(body)
    }
}

/// A successful response body plus the content type it ships with.
enum Reply {
    Json(String),
    /// Prometheus text exposition.
    Text(String),
}

/// Publishes the rolling SLO view as `serve.slo.*` gauges — called at
/// metrics-scrape time so both the JSON snapshot and the Prometheus
/// rendering carry fresh values.
fn publish_slo_gauges(shared: &Shared) {
    let snap = shared.slo.snapshot();
    explainti_obs::set_gauge("serve.slo.window_s", snap.window_s as f64);
    explainti_obs::set_gauge("serve.slo.requests", snap.count as f64);
    explainti_obs::set_gauge("serve.slo.error_rate", snap.error_rate);
    explainti_obs::set_gauge("serve.slo.p50_ms", snap.p50_ns as f64 / 1e6);
    explainti_obs::set_gauge("serve.slo.p99_ms", snap.p99_ns as f64 / 1e6);
    explainti_obs::set_gauge("serve.slo.p999_ms", snap.p999_ns as f64 / 1e6);
}

fn handle_metrics(shared: &Shared, query: &str) -> Result<Reply, ApiError> {
    let _span = explainti_obs::span!("serve.request.metrics");
    publish_slo_gauges(shared);
    if query.split('&').any(|kv| kv == "format=prometheus") {
        return Ok(Reply::Text(explainti_obs::prometheus()));
    }
    let mut summary = explainti_obs::summary();
    if let Value::Object(map) = &mut summary {
        map.insert("schema_version".to_string(), json!(SCHEMA_VERSION));
        map.insert("degraded".to_string(), json!(shared.model.is_degraded()));
        // Failpoint trip counts (empty object when no chaos drill
        // has run), so operators and the chaos-smoke CI job can
        // scrape what actually fired.
        let mut hits = std::collections::BTreeMap::new();
        for (site, n) in explainti_faults::hit_counts() {
            hits.insert(site, json!(n));
        }
        map.insert("failpoints".to_string(), Value::Object(hits));
    }
    Ok(Reply::Json(serde_json::to_string(&summary).unwrap_or_default()))
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let trace_id = explainti_obs::next_trace_id();
    let tid = trace_id.to_string();
    let mut rtrace = explainti_obs::RequestTrace::new(trace_id);
    // A stalled client must not block shutdown drain forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let read_start = Instant::now();
    let request = match http::read_request(&stream) {
        Ok(r) => r,
        Err(err) => {
            rtrace.add_stage("parse", ns_since(read_start, Instant::now()));
            rtrace.set_status(err.status());
            let _ = http::write_error_traced(&mut stream, &err, &tid);
            rtrace.finish();
            return;
        }
    };
    rtrace.add_stage("parse", ns_since(read_start, Instant::now()));
    explainti_obs::counter!("serve.requests", 1);
    let mut is_interpret = false;
    let result: Result<Reply, ApiError> = match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/interpret") => {
            rtrace.set_endpoint("interpret");
            is_interpret = true;
            handle_interpret(shared, &request.body, &mut rtrace).map(Reply::Json)
        }
        ("GET", "/v1/healthz") => {
            let _span = explainti_obs::span!("serve.request.healthz");
            rtrace.set_endpoint("healthz");
            let degraded = shared.model.is_degraded();
            Ok(Reply::Json(
                serde_json::to_string(&json!({"degraded": degraded, "status": "ok"}))
                    .unwrap_or_default(),
            ))
        }
        ("GET", "/v1/metrics") => {
            rtrace.set_endpoint("metrics");
            handle_metrics(shared, &request.query)
        }
        ("GET", "/v1/config") => {
            let _span = explainti_obs::span!("serve.request.config");
            rtrace.set_endpoint("config");
            Ok(Reply::Json(serde_json::to_string(&shared.config).unwrap_or_default()))
        }
        ("POST", "/v1/shutdown") => {
            rtrace.set_endpoint("shutdown");
            shared.shutdown.store(true, Ordering::SeqCst);
            Ok(Reply::Json(
                serde_json::to_string(&json!({"status": "shutting down"})).unwrap_or_default(),
            ))
        }
        (
            "POST" | "GET",
            "/v1/interpret" | "/v1/healthz" | "/v1/metrics" | "/v1/config" | "/v1/shutdown",
        ) => Err(ApiError::new(ErrorCode::MethodNotAllowed, "wrong method for this endpoint")),
        (_, path) => Err(ApiError::new(ErrorCode::NotFound, format!("no such endpoint: {path}"))),
    };
    let status = match &result {
        Ok(_) => 200,
        Err(err) => err.status(),
    };
    rtrace.set_status(status);
    match result {
        Ok(Reply::Json(body)) => {
            let _ = http::write_json_traced(&mut stream, 200, &body, &tid);
        }
        Ok(Reply::Text(body)) => {
            let _ = http::write_text_traced(&mut stream, 200, &body, &tid);
        }
        Err(err) => {
            let _ = http::write_error_traced(&mut stream, &err, &tid);
        }
    }
    if is_interpret {
        // The SLO window tracks the paper-relevant endpoint only; 5xx
        // count as errors, client errors (4xx) do not.
        shared.slo.record(rtrace.elapsed_ns(), status >= 500);
    }
    rtrace.finish();
}

// ---- Server lifecycle -------------------------------------------------

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] (or POST `/v1/shutdown`) then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown: stop accepting, drain in-flight
    /// connections and queued jobs, stop the workers.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// The shutdown flag, for wiring to an external signal (the CLI
    /// registers this so Ctrl-C triggers the same graceful drain).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Blocks until the accept loop, every connection handler, and every
    /// worker have exited. Idempotent.
    pub fn join(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds the listener and spawns the accept loop plus worker pool.
///
/// `labels` are the human-readable names responses resolve label indices
/// against (typically the corpus's `type_labels`).
pub fn start(
    model: Arc<ExplainTi>,
    labels: Vec<String>,
    cfg: ServeConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    // Mirror every failpoint trip into the obs counters so chaos drills
    // show up in `/v1/metrics` alongside ordinary serving telemetry.
    explainti_faults::set_observer(|site| {
        explainti_obs::add_counter(&format!("faults.hit.{site}"), 1);
    });

    // `--threads` resizes the process-wide kernel pool; 0 leaves
    // whatever the process already configured (CLI / env / default).
    if cfg.threads > 0 {
        explainti_pool::configure(cfg.threads);
    }
    let threads = explainti_pool::global().threads();

    let enc_cfg = &model.cfg.encoder;
    let config = ConfigResponse {
        schema_version: SCHEMA_VERSION,
        workers: cfg.workers,
        threads,
        queue_cap: cfg.queue_cap,
        max_batch: cfg.max_batch.max(1),
        cache_cap: cfg.cache_cap,
        deadline_ms: cfg.deadline_ms.max(1),
        top_k: cfg.top_k.max(1),
        model: ModelInfo {
            d_model: enc_cfg.d_model,
            layers: enc_cfg.n_layers,
            max_seq: enc_cfg.max_seq,
            vocab_size: model.tokenizer.vocab_size(),
            num_labels: labels.len(),
            num_weights: model.num_weights(),
        },
    };

    let shutdown = Arc::new(AtomicBool::new(false));
    let shared = Arc::new(Shared {
        model,
        labels,
        queue: BatchQueue::new(cfg.queue_cap),
        cache: Mutex::new(LruCache::new(cfg.cache_cap)),
        shutdown: Arc::clone(&shutdown),
        active_conns: AtomicUsize::new(0),
        top_k: cfg.top_k.max(1),
        max_batch: cfg.max_batch.max(1),
        deadline: Duration::from_millis(cfg.deadline_ms.max(1)),
        slo: explainti_obs::SloWindow::new(cfg.slo_window_s.max(1)),
        config,
    });

    let workers: Vec<JoinHandle<()>> = (0..cfg.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
        })
        .collect::<io::Result<_>>()?;

    let accept_shared = Arc::clone(&shared);
    let accept_thread =
        std::thread::Builder::new().name("serve-accept".to_string()).spawn(move || {
            accept_loop(&listener, &accept_shared);
            // Stopped accepting; wait out in-flight connections, then let
            // the workers drain what is already queued and exit.
            while accept_shared.active_conns.load(Ordering::SeqCst) > 0 {
                std::thread::sleep(Duration::from_millis(5));
            }
            accept_shared.queue.close();
            for w in workers {
                let _ = w.join();
            }
        })?;

    Ok(ServerHandle { addr, shutdown, accept_thread: Some(accept_thread) })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut conn_id = 0u64;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                conn_id += 1;
                shared.active_conns.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("serve-conn-{conn_id}"))
                    .spawn(move || {
                        handle_connection(&conn_shared, stream);
                        conn_shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}
