//! A fixed-capacity LRU cache for prediction responses.
//!
//! Keys are 64-bit hashes of `(title, header, cells)`; values are the
//! fully rendered response DTOs, so a repeat prediction short-circuits
//! the entire model forward *including* its explanations. O(1) lookup,
//! insert, and eviction via an index-based doubly linked recency list
//! (no unsafe, no pointer juggling).

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Least-recently-used cache with a hard capacity.
pub struct LruCache<K: Eq + Hash + Clone, V> {
    map: HashMap<K, usize>,
    entries: Vec<Entry<K, V>>,
    free: Vec<usize>,
    /// Most recently used entry.
    head: usize,
    /// Least recently used entry (the eviction candidate).
    tail: usize,
    cap: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `cap` entries (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            map: HashMap::with_capacity(cap),
            entries: Vec::with_capacity(cap),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            cap,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity the cache was built with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev != NIL {
            self.entries[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        if idx != self.head {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(&self.entries[idx].value)
    }

    /// Inserts (or replaces) `key`, evicting the least recently used
    /// entry when at capacity. Returns the evicted `(key, value)`, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.entries[idx].value = value;
            if idx != self.head {
                self.unlink(idx);
                self.push_front(idx);
            }
            return None;
        }
        let evicted = if self.map.len() >= self.cap {
            let victim = self.tail;
            self.unlink(victim);
            let old_key = self.entries[victim].key.clone();
            self.map.remove(&old_key);
            self.free.push(victim);
            Some((victim, old_key))
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(slot) => {
                self.entries[slot].key = key.clone();
                slot
            }
            None => {
                self.entries.push(Entry { key: key.clone(), value, prev: NIL, next: NIL });
                self.map.insert(key, self.entries.len() - 1);
                self.push_front(self.entries.len() - 1);
                return None;
            }
        };
        let old = std::mem::replace(&mut self.entries[idx].value, value);
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted.map(|(_, k)| (k, old))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn hit_returns_inserted_value() {
        let mut c = LruCache::new(4);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), Some(&2));
        assert_eq!(c.get(&"c"), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        // Touch "a" so "b" becomes LRU.
        assert_eq!(c.get(&"a"), Some(&1));
        let evicted = c.insert("c", 3);
        assert_eq!(evicted, Some(("b", 2)));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // refreshes "a"; "b" is now LRU
        c.insert("c", 3);
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_one_keeps_only_latest() {
        let mut c = LruCache::new(1);
        c.insert(1u64, "x");
        c.insert(2u64, "y");
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), Some(&"y"));
    }

    #[test]
    fn evicted_slots_are_reused() {
        let mut c = LruCache::new(3);
        for i in 0..100u64 {
            c.insert(i, i * 2);
        }
        assert_eq!(c.len(), 3);
        // Backing storage stays bounded by capacity, not insert count.
        assert!(c.entries.len() <= 3);
        assert_eq!(c.get(&99), Some(&198));
        assert_eq!(c.get(&0), None);
    }

    #[test]
    fn long_mixed_workload_stays_consistent() {
        let mut c = LruCache::new(8);
        let mut model: Vec<(u64, u64)> = Vec::new(); // recency list, MRU first
        for step in 0..500u64 {
            let key = step % 13;
            if step % 3 == 0 {
                if let Some(pos) = model.iter().position(|(k, _)| *k == key) {
                    let got = *c.get(&key).unwrap();
                    assert_eq!(got, model[pos].1);
                    let e = model.remove(pos);
                    model.insert(0, e);
                } else {
                    assert_eq!(c.get(&key), None);
                }
            } else {
                c.insert(key, step);
                if let Some(pos) = model.iter().position(|(k, _)| *k == key) {
                    model.remove(pos);
                }
                model.insert(0, (key, step));
                model.truncate(8);
            }
        }
        for (k, v) in &model {
            assert_eq!(c.get(k), Some(v));
        }
    }
}
