//! Minimal HTTP/1.1 framing over `std::net` — just enough for a JSON
//! inference API: request line + headers + `Content-Length` body in,
//! one `Connection: close` response out. No keep-alive, no chunked
//! encoding, no TLS; every connection carries exactly one exchange.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

use explainti_api::{ApiError, ErrorCode};

/// Upper bound on a request body; larger payloads get 413.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Upper bound on a single header line (incl. the request line).
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the number of header lines.
const MAX_HEADERS: usize = 100;

/// A parsed inbound request.
#[derive(Debug)]
pub struct Request {
    /// HTTP method, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target, e.g. `/v1/interpret` (query strings kept as-is).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

fn read_line(reader: &mut BufReader<&TcpStream>) -> Result<String, ApiError> {
    let mut line = Vec::new();
    let mut buf = [0u8; 1];
    loop {
        match reader.read_exact(&mut buf) {
            Ok(()) => {}
            Err(_) => return Err(ApiError::bad_request("connection closed mid-request")),
        }
        let [byte] = buf;
        if byte == b'\n' {
            break;
        }
        line.push(byte);
        if line.len() > MAX_LINE_BYTES {
            return Err(ApiError::new(ErrorCode::PayloadTooLarge, "header line too long"));
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| ApiError::bad_request("header is not valid UTF-8"))
}

/// Reads and parses one HTTP/1.1 request from the stream.
pub fn read_request(stream: &TcpStream) -> Result<Request, ApiError> {
    let mut reader = BufReader::new(stream);
    let request_line = read_line(&mut reader)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ApiError::bad_request("empty request line"))?
        .to_ascii_uppercase();
    let path =
        parts.next().ok_or_else(|| ApiError::bad_request("request line has no path"))?.to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(ApiError::bad_request("expected an HTTP/1.x request")),
    }

    let mut content_length = 0usize;
    for _ in 0..MAX_HEADERS {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            let mut body = vec![0u8; content_length];
            if content_length > 0 {
                reader
                    .read_exact(&mut body)
                    .map_err(|_| ApiError::bad_request("body shorter than Content-Length"))?;
            }
            return Ok(Request { method, path, body });
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ApiError::bad_request("invalid Content-Length"))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(ApiError::new(
                        ErrorCode::PayloadTooLarge,
                        format!("body exceeds {MAX_BODY_BYTES} bytes"),
                    ));
                }
            }
        }
    }
    Err(ApiError::bad_request("too many headers"))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes a complete JSON response and flushes. The connection is
/// single-exchange, so the response always carries `Connection: close`.
pub fn write_json(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Serialises an [`ApiError`] as the response body at its mapped status.
pub fn write_error(stream: &mut TcpStream, err: &ApiError) -> std::io::Result<()> {
    let body = serde_json::to_string(err).unwrap_or_else(|_| "{}".to_string());
    write_json(stream, err.status(), &body)
}
