//! Minimal HTTP/1.1 framing over `std::net` — just enough for a JSON
//! inference API: request line + headers + `Content-Length` body in,
//! one `Connection: close` response out. No keep-alive, no chunked
//! encoding, no TLS; every connection carries exactly one exchange.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

use explainti_api::{ApiError, ErrorCode};

/// Upper bound on a request body; larger payloads get 413.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Upper bound on a single header line (incl. the request line).
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the number of header lines.
const MAX_HEADERS: usize = 100;

/// A parsed inbound request.
#[derive(Debug)]
pub struct Request {
    /// HTTP method, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// Request path with any query string removed, e.g. `/v1/interpret`.
    pub path: String,
    /// Raw query string after `?` (empty when absent), undecoded.
    pub query: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

fn read_line(reader: &mut BufReader<&TcpStream>) -> Result<String, ApiError> {
    let mut line = Vec::new();
    let mut buf = [0u8; 1];
    loop {
        match reader.read_exact(&mut buf) {
            Ok(()) => {}
            Err(_) => return Err(ApiError::bad_request("connection closed mid-request")),
        }
        let [byte] = buf;
        if byte == b'\n' {
            break;
        }
        line.push(byte);
        if line.len() > MAX_LINE_BYTES {
            return Err(ApiError::new(ErrorCode::PayloadTooLarge, "header line too long"));
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| ApiError::bad_request("header is not valid UTF-8"))
}

/// Reads and parses one HTTP/1.1 request from the stream.
pub fn read_request(stream: &TcpStream) -> Result<Request, ApiError> {
    let mut reader = BufReader::new(stream);
    let request_line = read_line(&mut reader)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ApiError::bad_request("empty request line"))?
        .to_ascii_uppercase();
    let target =
        parts.next().ok_or_else(|| ApiError::bad_request("request line has no path"))?.to_string();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(ApiError::bad_request("expected an HTTP/1.x request")),
    }

    let mut content_length = 0usize;
    for _ in 0..MAX_HEADERS {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            let mut body = vec![0u8; content_length];
            if content_length > 0 {
                reader
                    .read_exact(&mut body)
                    .map_err(|_| ApiError::bad_request("body shorter than Content-Length"))?;
            }
            return Ok(Request { method, path, query: query.clone(), body });
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ApiError::bad_request("invalid Content-Length"))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(ApiError::new(
                        ErrorCode::PayloadTooLarge,
                        format!("body exceeds {MAX_BODY_BYTES} bytes"),
                    ));
                }
            }
        }
    }
    Err(ApiError::bad_request("too many headers"))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes a complete response and flushes. The connection is
/// single-exchange, so the response always carries `Connection: close`;
/// when `trace_id` is set the response also carries `X-Trace-Id`, so
/// clients can join failures against the JSONL trace sink.
fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    trace_id: Option<&str>,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
    );
    if let Some(id) = trace_id {
        head.push_str("X-Trace-Id: ");
        head.push_str(id);
        head.push_str("\r\n");
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes a JSON response (no trace header — prefer the `_traced`
/// variants on the request path).
pub fn write_json(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write_response(stream, status, "application/json", body, None)
}

/// Writes a JSON response carrying `X-Trace-Id`.
pub fn write_json_traced(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    trace_id: &str,
) -> std::io::Result<()> {
    write_response(stream, status, "application/json", body, Some(trace_id))
}

/// Writes a plain-text response carrying `X-Trace-Id` (the Prometheus
/// exposition format is `text/plain; version=0.0.4`).
pub fn write_text_traced(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    trace_id: &str,
) -> std::io::Result<()> {
    write_response(stream, status, "text/plain; version=0.0.4", body, Some(trace_id))
}

/// The [`ApiError`] body with a `trace_id` key spliced in.
///
/// The wire schema is frozen (EA005), so the id rides in the serialised
/// JSON at the HTTP layer — round-tripped through `Value` so the body
/// stays byte-compatible with the bare `ApiError` shape plus one key —
/// rather than as a new DTO field.
fn error_body(err: &ApiError, trace_id: &str) -> String {
    let plain = serde_json::to_string(err).unwrap_or_else(|_| "{}".to_string());
    match serde_json::from_str::<serde_json::Value>(&plain) {
        Ok(serde_json::Value::Object(mut map)) => {
            map.insert("trace_id".to_string(), serde_json::Value::String(trace_id.to_string()));
            serde_json::to_string(&serde_json::Value::Object(map)).unwrap_or(plain)
        }
        _ => plain,
    }
}

/// Serialises an [`ApiError`] as the response body at its mapped status.
pub fn write_error(stream: &mut TcpStream, err: &ApiError) -> std::io::Result<()> {
    let body = serde_json::to_string(err).unwrap_or_else(|_| "{}".to_string());
    write_json(stream, err.status(), &body)
}

/// Like [`write_error`], but the body carries a `trace_id` key and the
/// response an `X-Trace-Id` header.
pub fn write_error_traced(
    stream: &mut TcpStream,
    err: &ApiError,
    trace_id: &str,
) -> std::io::Result<()> {
    let body = error_body(err, trace_id);
    write_response(stream, err.status(), "application/json", &body, Some(trace_id))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn error_body_splices_trace_id_and_keeps_shape() {
        let err = ApiError::bad_request("nope");
        let body = error_body(&err, "00000000deadbeef");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["trace_id"].as_str().unwrap(), "00000000deadbeef");
        assert_eq!(v["message"].as_str().unwrap(), "nope");
        // The original error keys survive the splice byte-for-byte.
        let plain = serde_json::to_string(&err).unwrap();
        let plain_v: serde_json::Value = serde_json::from_str(&plain).unwrap();
        assert_eq!(v["code"], plain_v["code"]);
    }
}
